//! `POST /v1/design`: the streaming hardware design-sweep endpoint.
//!
//! A design request resolves to a [`SweepConfig`] whose digest identifies
//! the sweep.  The first subscriber spawns one background `serve-design`
//! thread that works the sweep (through the server's store root, so CLI
//! workers on the same root cooperate); every subscribed connection
//! receives partial Pareto-front frames as chunked NDJSON lines while
//! results land, then the final [`bitwave_sweep::FrontReport`] as the last
//! line.  The final report is persisted in the `design` store op, so a
//! repeated request replays it byte-identically without re-running the
//! sweep.
//!
//! The hub decouples the sweep thread from the event loop: the thread
//! pushes [`DesignEvent`]s and wakes the loop's poller; the loop drains
//! them on its own thread and fans frames out to subscriber write buffers
//! using the ordinary connection write machinery (write deadlines and the
//! stalled-writer counter apply to slow stream readers unchanged).

use crate::error::ServeError;
use crate::server::ServiceState;
use bitwave::digest::Digest;
use bitwave_store::{StoreConfig, StringCodec, TieredStore};
use bitwave_sweep::{run_with_progress, SweepConfig};
use serde::{Deserialize, Value};
use std::collections::{HashSet, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// Store op namespace holding final design reports.
pub const DESIGN_OP: &str = "design";

/// The JSON body of `POST /v1/design`; every field is optional.
#[derive(Debug, Deserialize)]
struct DesignRequest {
    /// Preset name (`tiny` / `small` / `full`); default `tiny`.
    space: Option<String>,
    /// Full [`SweepConfig`] override — replaces the preset entirely.
    config: Option<SweepConfig>,
    /// Synthetic-weight RNG seed override.
    seed: Option<u64>,
    /// Per-layer sampling-cap override.
    sample_cap: Option<usize>,
    /// Workload portfolio override (registry model names).
    portfolio: Option<Vec<String>>,
    /// Claim TTL override in milliseconds (operational; not part of the
    /// sweep identity).
    claim_ttl_ms: Option<u64>,
}

/// Parses a design request body into the sweep configuration it names.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for malformed JSON, an unknown preset, or an
/// unknown portfolio model name.
pub fn parse_design(body: &[u8]) -> Result<SweepConfig, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("request body is not UTF-8".to_string()))?;
    let value: Value = serde_json::from_str(text)
        .map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err(ServeError::BadRequest(
            "request body must be a JSON object".to_string(),
        ));
    }
    let request: DesignRequest = serde_json::from_value(&value)
        .map_err(|e| ServeError::BadRequest(format!("invalid request: {e}")))?;
    let mut config = match (&request.config, request.space.as_deref()) {
        (Some(config), _) => config.clone(),
        (None, space) => {
            let name = space.unwrap_or("tiny");
            SweepConfig::preset(name).ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "unknown sweep space `{name}` (expected `tiny`, `small` or `full`)"
                ))
            })?
        }
    };
    if let Some(seed) = request.seed {
        config.seed = seed;
    }
    if let Some(sample_cap) = request.sample_cap {
        config.sample_cap = sample_cap;
    }
    if let Some(portfolio) = &request.portfolio {
        config.portfolio = portfolio.clone();
    }
    if let Some(ttl) = request.claim_ttl_ms {
        config.claim_ttl_ms = ttl.max(1);
    }
    if config.total_points() == 0 {
        return Err(ServeError::BadRequest(
            "the sweep space is empty".to_string(),
        ));
    }
    for name in &config.portfolio {
        bitwave_dnn::models::by_name(name).map_err(|e| ServeError::BadRequest(e.to_string()))?;
    }
    Ok(config)
}

/// One event from a design sweep thread to the event loop.
#[derive(Debug)]
pub(crate) enum DesignEvent {
    /// A partial-front frame (one NDJSON line, newline not included).
    Frame {
        /// Sweep digest hex the frame belongs to.
        sweep: String,
        /// Serialized [`bitwave_sweep::PartialFront`].
        line: String,
    },
    /// The sweep finished; `line` is the final report (or an
    /// `{"error": …}` object when the sweep failed).
    Final {
        /// Sweep digest hex.
        sweep: String,
        /// Serialized [`bitwave_sweep::FrontReport`] or error object.
        line: String,
    },
}

/// Shared design-sweep state: the persisted final reports, the set of
/// sweeps with a running thread, and the frame queue to the event loop.
#[derive(Debug)]
pub(crate) struct DesignHub {
    store: TieredStore<StringCodec>,
    active: Mutex<HashSet<String>>,
    events: Mutex<VecDeque<DesignEvent>>,
    root: Option<PathBuf>,
}

impl DesignHub {
    /// Opens the hub; with a rooted `store_config` final reports persist
    /// and sweeps share the root's `sweep`/`sweep-claims` ledger.
    ///
    /// # Errors
    ///
    /// Propagates store directory creation/scan failures.
    pub(crate) fn new(store_config: &StoreConfig, root: Option<&str>) -> io::Result<Self> {
        Ok(Self {
            store: TieredStore::new(DESIGN_OP, store_config)?,
            active: Mutex::new(HashSet::new()),
            events: Mutex::new(VecDeque::new()),
            root: root.map(PathBuf::from),
        })
    }

    fn lock_active(&self) -> MutexGuard<'_, HashSet<String>> {
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_events(&self) -> MutexGuard<'_, VecDeque<DesignEvent>> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The store key of one sweep's final report.
    fn key(sweep: &str) -> Digest {
        Digest::of_bytes(format!("design:{sweep}").as_bytes())
    }

    /// A persisted final report line, when the sweep already completed —
    /// byte-identical replay, no recomputation.
    pub(crate) fn replay(&self, sweep: &str) -> Option<Arc<String>> {
        self.store.try_get(Self::key(sweep)).map(|(line, _)| line)
    }

    /// Drains the pending event queue (event-loop side).
    pub(crate) fn drain_events(&self) -> Vec<DesignEvent> {
        self.lock_events().drain(..).collect()
    }

    fn push_event(&self, state: &ServiceState, event: DesignEvent) {
        self.lock_events().push_back(event);
        state.waker.wake();
    }

    /// Ensures a sweep thread is running for `config`; no-op when one
    /// already is.  The thread streams frames through the hub and persists
    /// the final report.
    pub(crate) fn ensure_running(state: &Arc<ServiceState>, config: SweepConfig, sweep: String) {
        {
            let mut active = state.design.lock_active();
            if !active.insert(sweep.clone()) {
                return;
            }
        }
        let thread_state = Arc::clone(state);
        let thread_sweep = sweep.clone();
        let spawned = std::thread::Builder::new()
            .name("serve-design".to_string())
            .spawn(move || Self::run_sweep(&thread_state, &config, &thread_sweep));
        if let Err(e) = spawned {
            // Nothing will ever finish this sweep; releasing the active
            // slot and failing the stream keeps subscribers from wedging.
            state.design.lock_active().remove(&sweep);
            state.design.push_event(
                state,
                DesignEvent::Final {
                    sweep,
                    line: error_line(&format!("spawning sweep thread: {e}")),
                },
            );
        }
    }

    fn run_sweep(state: &Arc<ServiceState>, config: &SweepConfig, sweep: &str) {
        let root = state.design.root.clone();
        let progress_state = Arc::clone(state);
        let result = run_with_progress(config, root.as_deref(), |frame| {
            if let Ok(line) = serde_json::to_string(frame) {
                progress_state.design.push_event(
                    &progress_state,
                    DesignEvent::Frame {
                        sweep: sweep.to_string(),
                        line,
                    },
                );
            }
        });
        let line = match result {
            Ok((report, _)) => match serde_json::to_string(&report) {
                Ok(line) => {
                    // Persist before announcing: a request racing the
                    // final frame either replays from the store or
                    // attaches to a warm re-run; it never hangs.
                    let stored = state.design.store.get_or_compute(
                        Self::key(sweep),
                        || Ok::<_, String>(line),
                        |e| e,
                    );
                    match stored {
                        Ok((line, _)) => line.as_ref().clone(),
                        Err(message) => error_line(&message),
                    }
                }
                Err(e) => error_line(&format!("rendering final report: {e}")),
            },
            Err(e) => error_line(&format!("sweep failed: {e}")),
        };
        state.design.lock_active().remove(sweep);
        state.design.push_event(
            state,
            DesignEvent::Final {
                sweep: sweep.to_string(),
                line,
            },
        );
    }
}

/// An `{"error": …}` NDJSON line with proper escaping.
fn error_line(message: &str) -> String {
    serde_json::to_string(&Value::Object(vec![(
        "error".to_string(),
        Value::String(message.to_string()),
    )]))
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_applies_preset_and_overrides() {
        let config = parse_design(br#"{"space":"tiny","seed":7,"sample_cap":500}"#).unwrap();
        assert_eq!(config.seed, 7);
        assert_eq!(config.sample_cap, 500);
        assert_eq!(config.total_points(), SweepConfig::tiny().total_points());
        let default = parse_design(b"{}").unwrap();
        assert_eq!(default.total_points(), SweepConfig::tiny().total_points());
    }

    #[test]
    fn parse_rejects_bad_bodies() {
        assert!(parse_design(b"not json").is_err());
        assert!(parse_design(b"[1,2]").is_err());
        assert!(parse_design(br#"{"space":"galactic"}"#).is_err());
        assert!(parse_design(br#"{"portfolio":["not-a-model"]}"#).is_err());
    }

    #[test]
    fn full_config_bodies_override_presets() {
        let mut config = SweepConfig::tiny();
        config.seed = 99;
        let body = format!(
            r#"{{"config":{},"sample_cap":123}}"#,
            serde_json::to_string(&config).unwrap()
        );
        let parsed = parse_design(body.as_bytes()).unwrap();
        assert_eq!(parsed.seed, 99);
        assert_eq!(parsed.sample_cap, 123, "overrides still apply on top");
    }

    #[test]
    fn error_lines_escape_quotes() {
        let line = error_line("bad \"quote\"");
        assert!(line.contains("\\\"quote\\\""), "{line}");
    }
}
