//! Cross-request batching: jobs, the compute queue, and the dispatcher
//! bookkeeping that generalises the cache's single-flight from
//! *identical-digest* to *identical-weights*.
//!
//! The event loop owns a [`Dispatcher`].  Each admitted compute request
//! either becomes a [`Job`] pushed onto the [`JobQueue`] (worker threads pop
//! and run them through the report cache), attaches as a **rider** to an
//! in-flight digest, or **gathers** behind the batch currently executing for
//! its `(model, seed, sample_cap)` weight set — when that batch completes,
//! every gathered digest dispatches as one follow-up job sharing the
//! already-generated `Arc<NetworkWeights>`.  Completions fan back out to
//! every waiter: the trigger gets the store outcome (`miss`/`disk`/…),
//! riders get `coalesced`, and all of them carry the dispatch's total
//! request count in the `X-Bitwave-Batch` header.
//!
//! All dispatcher state is single-threaded (loop-owned, no locks); only
//! [`JobQueue`] and [`Completions`] cross threads.

use crate::api::{NormalizedRequest, NormalizedSearch};
use crate::cache::{CacheOp, CacheOutcome};
use bitwave::digest::Digest;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Requests over one generated weight set batch together: the canonical
/// model name plus the seed and sample cap that parameterise generation —
/// exactly the [`crate::store::ModelStore`] key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct BatchKey {
    model: String,
    seed: u64,
    sample_cap: usize,
}

/// The computation behind one digest.
#[derive(Debug)]
pub(crate) enum JobKind {
    /// A `POST /v1/evaluate` miss.
    Evaluate(Box<NormalizedRequest>),
    /// A `POST /v1/search` miss.
    Search(Box<NormalizedSearch>),
}

impl JobKind {
    /// The cache op this computation lands in.
    pub(crate) fn op(&self) -> CacheOp {
        match self {
            JobKind::Evaluate(_) => CacheOp::Evaluate,
            JobKind::Search(_) => CacheOp::Search,
        }
    }

    /// The weight-set identity this computation batches under.
    pub(crate) fn batch_key(&self) -> BatchKey {
        let (model, knobs) = match self {
            JobKind::Evaluate(r) => (&r.key.model, &r.key.knobs),
            JobKind::Search(s) => (&s.key.model, &s.key.knobs),
        };
        BatchKey {
            model: model.clone(),
            seed: knobs.seed,
            sample_cap: knobs.sample_cap,
        }
    }
}

/// One digest's computation inside a job.
#[derive(Debug)]
pub(crate) struct JobEntry {
    /// The cache address of the result.
    pub digest: Digest,
    /// What to compute.
    pub kind: JobKind,
}

/// A unit of worker work: one or more distinct digests sharing a weight
/// set, executed back to back on one worker so the `Arc<NetworkWeights>`
/// stays hot.
#[derive(Debug)]
pub(crate) struct Job {
    /// Dispatch id, matching completions back to dispatcher state.
    pub id: u64,
    /// The digests to compute.
    pub entries: Vec<JobEntry>,
}

/// One computed digest of a finished job.
pub(crate) struct EntryDone {
    /// The cache address.
    pub digest: Digest,
    /// The cache body and store outcome, or the computation's error.
    pub result: Result<(Arc<String>, CacheOutcome), String>,
}

/// A finished job, published by a worker.
pub(crate) struct JobDone {
    /// The dispatch id of the originating [`Job`].
    pub id: u64,
    /// One result per job entry.
    pub results: Vec<EntryDone>,
}

/// MPMC queue of pending jobs.  Unbounded: admission control caps the
/// number of in-flight dispatches before anything is pushed here.
#[derive(Default)]
pub(crate) struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue").finish_non_exhaustive()
    }
}

impl JobQueue {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues a job and wakes one worker.
    pub(crate) fn push(&self, job: Job) {
        self.lock().push_back(job);
        self.available.notify_one();
    }

    /// Blocks for the next job; `None` once shut down and drained.
    pub(crate) fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut jobs = self.lock();
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            jobs = self
                .available
                .wait(jobs)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Wakes every blocked worker (shutdown).
    pub(crate) fn notify_all(&self) {
        self.available.notify_all();
    }
}

/// Completion mailbox: workers push, the event loop drains after a wake.
#[derive(Default)]
pub(crate) struct Completions {
    done: Mutex<Vec<JobDone>>,
}

impl std::fmt::Debug for Completions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completions").finish_non_exhaustive()
    }
}

impl Completions {
    /// Publishes a finished job (callers wake the loop separately).
    pub(crate) fn push(&self, done: JobDone) {
        self.done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(done);
    }

    /// Takes everything published so far.
    pub(crate) fn drain(&self) -> Vec<JobDone> {
        std::mem::take(
            &mut *self
                .done
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

/// How [`Dispatcher::submit`] placed a request.
#[derive(Debug)]
pub(crate) enum Placement {
    /// A new job must be pushed onto the queue.
    Dispatch(Job),
    /// The digest joined the gathering pool of an executing batch; it
    /// dispatches automatically when that batch completes.
    Gathered,
    /// The digest was already in flight; the waiter rides along.
    Rider,
    /// Admission control refused: `max_inflight` digests are in flight.
    Shed,
}

/// One waiter's share of a completed dispatch.
pub(crate) struct Served<W> {
    /// The caller's waiter handle (connection token + response metadata).
    pub waiter: W,
    /// Which op namespace the digest belongs to (rider accounting).
    pub op: CacheOp,
    /// `X-Bitwave-Batch`: total requests this dispatch served.
    pub batch_size: usize,
    /// True for waiters that attached after the dispatch was created; they
    /// report `coalesced` and bump the store's coalesced counter.
    pub rider: bool,
    /// The cache body + outcome, or the computation error.
    pub result: Result<(Arc<String>, CacheOutcome), String>,
}

/// Everything a completion unwinds: responses to write and, when a batch
/// had gathered followers, the follow-up job to push.
pub(crate) struct FanOut<W> {
    /// One entry per waiting request, triggers and riders alike.
    pub served: Vec<Served<W>>,
    /// The gathered follow-up dispatch for the same batch key, if any.
    pub follow_up: Option<Job>,
}

/// Where a digest currently lives.
enum Route {
    /// Inside dispatched job `id`.
    Job(u64),
    /// In the gathering pool for `key`.
    Gathering(BatchKey),
}

/// Waiters for one digest of a job: the trigger first, riders after.
struct DigestWaiters<W> {
    digest_raw: u128,
    op: CacheOp,
    waiters: Vec<W>,
}

struct JobState<W> {
    batch: Option<BatchKey>,
    entries: Vec<DigestWaiters<W>>,
}

/// Loop-owned batching/admission bookkeeping, generic over the waiter type
/// so it unit-tests without sockets.
pub(crate) struct Dispatcher<W> {
    batching: bool,
    max_inflight: usize,
    next_job: u64,
    /// Distinct digests admitted and not yet fanned out (dispatched or
    /// gathering).  Riders are free: they never consume a slot.
    inflight: usize,
    jobs: HashMap<u64, JobState<W>>,
    /// Digest → current location; batched mode only (unbatched mode treats
    /// every request as its own dispatch, reproducing the old
    /// slot-per-request cost model).
    routes: HashMap<u128, Route>,
    executing: HashMap<BatchKey, u64>,
    gathering: HashMap<BatchKey, Vec<(JobEntry, Vec<W>)>>,
}

impl<W> Dispatcher<W> {
    pub(crate) fn new(batching: bool, max_inflight: usize) -> Self {
        Self {
            batching,
            max_inflight: max_inflight.max(1),
            next_job: 0,
            inflight: 0,
            jobs: HashMap::new(),
            routes: HashMap::new(),
            executing: HashMap::new(),
            gathering: HashMap::new(),
        }
    }

    /// Distinct digests currently admitted (the `inflight_depth` gauge).
    pub(crate) fn inflight(&self) -> usize {
        self.inflight
    }

    fn new_job(&mut self, batch: Option<BatchKey>, entry: JobEntry, waiter: W) -> Job {
        let id = self.next_job;
        self.next_job += 1;
        let digest_raw = entry.digest.raw();
        let op = entry.kind.op();
        self.jobs.insert(
            id,
            JobState {
                batch: batch.clone(),
                entries: vec![DigestWaiters {
                    digest_raw,
                    op,
                    waiters: vec![waiter],
                }],
            },
        );
        if let Some(key) = batch {
            self.executing.insert(key, id);
            self.routes.insert(digest_raw, Route::Job(id));
        }
        Job {
            id,
            entries: vec![entry],
        }
    }

    /// Places one cache-missing request.  `digest` must not be resolvable
    /// from the cache (the caller probes first).
    pub(crate) fn submit(&mut self, digest: Digest, kind: JobKind, waiter: W) -> Placement {
        let raw = digest.raw();
        if self.batching {
            // Rider: the digest is already in flight somewhere.
            if let Some(route) = self.routes.get(&raw) {
                match route {
                    Route::Job(id) => {
                        if let Some(job) = self.jobs.get_mut(id) {
                            if let Some(dw) = job.entries.iter_mut().find(|dw| dw.digest_raw == raw)
                            {
                                dw.waiters.push(waiter);
                                return Placement::Rider;
                            }
                        }
                    }
                    Route::Gathering(key) => {
                        let key = key.clone();
                        if let Some(pool) = self.gathering.get_mut(&key) {
                            if let Some((_, waiters)) =
                                pool.iter_mut().find(|(e, _)| e.digest.raw() == raw)
                            {
                                waiters.push(waiter);
                                return Placement::Rider;
                            }
                        }
                    }
                }
                // A stale route is a bookkeeping bug; fall through to a
                // fresh dispatch rather than dropping the request.
            }
            if self.inflight >= self.max_inflight {
                return Placement::Shed;
            }
            self.inflight += 1;
            let key = kind.batch_key();
            if self.executing.contains_key(&key) {
                // The weight set is busy: gather and dispatch as one job
                // when the executing batch completes.
                self.routes.insert(raw, Route::Gathering(key.clone()));
                self.gathering
                    .entry(key)
                    .or_default()
                    .push((JobEntry { digest, kind }, vec![waiter]));
                return Placement::Gathered;
            }
            let job = self.new_job(Some(key), JobEntry { digest, kind }, waiter);
            Placement::Dispatch(job)
        } else {
            // Unbatched: every request is its own dispatch and its own
            // inflight slot — identical in-flight requests pay full price
            // (the store's single-flight still dedups the compute, but a
            // worker blocks on it).
            if self.inflight >= self.max_inflight {
                return Placement::Shed;
            }
            self.inflight += 1;
            let job = self.new_job(None, JobEntry { digest, kind }, waiter);
            Placement::Dispatch(job)
        }
    }

    /// Unwinds one completed job: responses for every waiter plus the
    /// follow-up dispatch when followers gathered behind its batch key.
    pub(crate) fn complete(&mut self, done: JobDone) -> FanOut<W> {
        let Some(job) = self.jobs.remove(&done.id) else {
            // Unknown id (already torn down); nothing waits on it.
            return FanOut {
                served: Vec::new(),
                follow_up: None,
            };
        };
        self.inflight = self.inflight.saturating_sub(job.entries.len());
        let batch_size: usize = job.entries.iter().map(|dw| dw.waiters.len()).sum();
        let mut results: HashMap<u128, &EntryDone> = HashMap::new();
        for entry in &done.results {
            results.insert(entry.digest.raw(), entry);
        }
        let mut served = Vec::new();
        for dw in job.entries {
            self.routes.remove(&dw.digest_raw);
            let result = results.get(&dw.digest_raw);
            for (i, waiter) in dw.waiters.into_iter().enumerate() {
                let result = match result {
                    Some(entry) => entry.result.clone(),
                    None => Err("dispatch produced no result for digest".to_string()),
                };
                served.push(Served {
                    waiter,
                    op: dw.op,
                    batch_size,
                    rider: i > 0,
                    result,
                });
            }
        }

        // Promote the gathered followers of this batch key into one job.
        let mut follow_up = None;
        if let Some(key) = job.batch {
            self.executing.remove(&key);
            if let Some(pool) = self.gathering.remove(&key) {
                if !pool.is_empty() {
                    let id = self.next_job;
                    self.next_job += 1;
                    let mut entries = Vec::with_capacity(pool.len());
                    let mut states = Vec::with_capacity(pool.len());
                    for (entry, waiters) in pool {
                        let raw = entry.digest.raw();
                        self.routes.insert(raw, Route::Job(id));
                        states.push(DigestWaiters {
                            digest_raw: raw,
                            op: entry.kind.op(),
                            waiters,
                        });
                        entries.push(entry);
                    }
                    self.jobs.insert(
                        id,
                        JobState {
                            batch: Some(key.clone()),
                            entries: states,
                        },
                    );
                    self.executing.insert(key, id);
                    follow_up = Some(Job { id, entries });
                }
            }
        }
        FanOut { served, follow_up }
    }

    /// Drops every waiter (connection teardown at shutdown); in-flight jobs
    /// finish in workers but nobody consumes their results.
    pub(crate) fn clear_waiters(&mut self) {
        for job in self.jobs.values_mut() {
            for dw in &mut job.entries {
                dw.waiters.clear();
            }
        }
        for pool in self.gathering.values_mut() {
            for (_, waiters) in pool.iter_mut() {
                waiters.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::EvaluateRequest;

    fn kind(accelerator: &str, seed: u64) -> (Digest, JobKind) {
        let body = format!(
            r#"{{"model":"resnet18","accelerator":"{accelerator}","seed":{seed},"sample_cap":500}}"#
        );
        let normalized = EvaluateRequest::from_json(body.as_bytes())
            .unwrap()
            .normalize()
            .unwrap();
        let digest = normalized.key.digest().unwrap();
        (digest, JobKind::Evaluate(Box::new(normalized)))
    }

    fn done(id: u64, digests: &[Digest]) -> JobDone {
        JobDone {
            id,
            results: digests
                .iter()
                .map(|&digest| EntryDone {
                    digest,
                    result: Ok((Arc::new("body".to_string()), CacheOutcome::Miss)),
                })
                .collect(),
        }
    }

    #[test]
    fn identical_digests_ride_one_dispatch_and_fan_out() {
        let mut d: Dispatcher<&'static str> = Dispatcher::new(true, 8);
        let (digest, k1) = kind("bitwave", 1);
        let (_, k2) = kind("bitwave", 1);
        let Placement::Dispatch(job) = d.submit(digest, k1, "trigger") else {
            panic!("first submit dispatches");
        };
        assert_eq!(job.entries.len(), 1);
        assert!(matches!(d.submit(digest, k2, "rider"), Placement::Rider));
        assert_eq!(d.inflight(), 1, "riders are free");
        let fan = d.complete(done(job.id, &[digest]));
        assert!(fan.follow_up.is_none());
        assert_eq!(fan.served.len(), 2);
        assert_eq!(fan.served[0].waiter, "trigger");
        assert!(!fan.served[0].rider);
        assert!(fan.served[1].rider);
        assert!(fan.served.iter().all(|s| s.batch_size == 2));
        assert_eq!(d.inflight(), 0);
    }

    #[test]
    fn same_weight_set_gathers_behind_the_executing_batch() {
        let mut d: Dispatcher<u32> = Dispatcher::new(true, 8);
        let (d1, k1) = kind("bitwave", 1);
        let (d2, k2) = kind("stripes", 1); // same (model, seed, cap), new digest
        let (d3, k3) = kind("bitlet", 1);
        let Placement::Dispatch(job) = d.submit(d1, k1, 10) else {
            panic!("dispatch");
        };
        assert!(matches!(d.submit(d2, k2, 20), Placement::Gathered));
        assert!(matches!(d.submit(d3, k3, 30), Placement::Gathered));
        assert_eq!(d.inflight(), 3);
        let fan = d.complete(done(job.id, &[d1]));
        assert_eq!(fan.served.len(), 1);
        let follow = fan.follow_up.expect("gathered follow-up job");
        assert_eq!(follow.entries.len(), 2, "both followers share one job");
        assert_eq!(d.inflight(), 2);
        let fan = d.complete(done(follow.id, &[d2, d3]));
        assert_eq!(fan.served.len(), 2);
        assert!(fan.served.iter().all(|s| s.batch_size == 2));
        assert!(fan.follow_up.is_none());
        assert_eq!(d.inflight(), 0);
    }

    #[test]
    fn different_seeds_dispatch_concurrently() {
        let mut d: Dispatcher<u32> = Dispatcher::new(true, 8);
        let (d1, k1) = kind("bitwave", 1);
        let (d2, k2) = kind("bitwave", 2); // different weight set
        assert!(matches!(d.submit(d1, k1, 1), Placement::Dispatch(_)));
        assert!(matches!(d.submit(d2, k2, 2), Placement::Dispatch(_)));
        assert_eq!(d.inflight(), 2);
    }

    #[test]
    fn max_inflight_sheds_new_digests_but_not_riders() {
        let mut d: Dispatcher<u32> = Dispatcher::new(true, 2);
        let (d1, k1) = kind("bitwave", 1);
        let (d2, k2) = kind("bitwave", 2);
        let (d3, k3) = kind("bitwave", 3);
        let (_, k1b) = kind("bitwave", 1);
        assert!(matches!(d.submit(d1, k1, 1), Placement::Dispatch(_)));
        assert!(matches!(d.submit(d2, k2, 2), Placement::Dispatch(_)));
        assert!(matches!(d.submit(d3, k3, 3), Placement::Shed));
        assert!(
            matches!(d.submit(d1, k1b, 4), Placement::Rider),
            "riders must be admitted even at the inflight cap"
        );
    }

    #[test]
    fn unbatched_mode_charges_every_request_a_slot() {
        let mut d: Dispatcher<u32> = Dispatcher::new(false, 2);
        let (d1, k1) = kind("bitwave", 1);
        let (_, k1b) = kind("bitwave", 1);
        let (_, k1c) = kind("bitwave", 1);
        let Placement::Dispatch(first) = d.submit(d1, k1, 1) else {
            panic!("dispatch");
        };
        let Placement::Dispatch(second) = d.submit(d1, k1b, 2) else {
            panic!("identical request must pay its own slot unbatched");
        };
        assert!(matches!(d.submit(d1, k1c, 3), Placement::Shed));
        let fan = d.complete(done(first.id, &[d1]));
        assert_eq!(fan.served.len(), 1);
        assert_eq!(fan.served[0].batch_size, 1);
        let fan = d.complete(done(second.id, &[d1]));
        assert_eq!(fan.served[0].waiter, 2);
        assert_eq!(d.inflight(), 0);
    }

    #[test]
    fn search_and_evaluate_share_a_weight_batch() {
        let mut d: Dispatcher<u32> = Dispatcher::new(true, 8);
        let (d1, k1) = kind("bitwave", 1);
        let body = r#"{"model":"resnet18","seed":1,"sample_cap":500}"#;
        let search = EvaluateRequest::from_json(body.as_bytes())
            .unwrap()
            .normalize_search()
            .unwrap();
        let sd = search.key.digest().unwrap();
        let sk = JobKind::Search(Box::new(search));
        assert!(matches!(d.submit(d1, k1, 1), Placement::Dispatch(_)));
        assert!(
            matches!(d.submit(sd, sk, 2), Placement::Gathered),
            "a search over the same (model, seed, cap) gathers behind the evaluate"
        );
    }
}
