//! Content-addressed report cache: a thin wrapper over two
//! [`bitwave_store::TieredStore`] op namespaces (`evaluate`, `search`),
//! storing **serialized** response bodies under request digests.
//!
//! The store substrate supplies everything the old hand-rolled cache
//! implemented itself: sharded LRU with byte accounting, single-flight
//! computation coalescing, and — when a store root is configured — a
//! checksummed disk tier, so cached responses survive restarts.  A hit from
//! either tier replays bytes identical to the cold run that populated it;
//! the `X-Bitwave-Cache` header distinguishes `hit` (memory), `disk`
//! (promoted from the disk tier), `miss` and `coalesced`.

use bitwave::digest::Digest;
use bitwave_store::{StoreConfig, StoreStats, StringCodec, TieredStore};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Re-export: how a cache lookup was satisfied (`hit` / `disk` / `miss` /
/// `coalesced`, the `X-Bitwave-Cache` values).
pub use bitwave_store::StoreOutcome as CacheOutcome;

/// The two cached operations; each gets its own op namespace in the store
/// (and on disk: `<root>/evaluate/<digest>`, `<root>/search/<digest>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// `POST /v1/evaluate` responses.
    Evaluate,
    /// `POST /v1/search` responses.
    Search,
}

impl CacheOp {
    /// The op namespace string (directory name and metrics label).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOp::Evaluate => "evaluate",
            CacheOp::Search => "search",
        }
    }
}

/// The content-addressed, bounded, single-flight, optionally persistent
/// report cache.
#[derive(Debug)]
pub struct ReportCache {
    evaluate: TieredStore<StringCodec>,
    search: TieredStore<StringCodec>,
}

impl ReportCache {
    /// Creates a memory-only cache bounding each op to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            evaluate: TieredStore::memory_only(CacheOp::Evaluate.as_str(), capacity),
            search: TieredStore::memory_only(CacheOp::Search.as_str(), capacity),
        }
    }

    /// Creates a cache from a full [`StoreConfig`]; with a root configured,
    /// both ops persist under it and replay across restarts.
    ///
    /// # Errors
    ///
    /// Propagates disk-tier directory creation/scan failures.
    pub fn with_config(config: &StoreConfig) -> io::Result<Self> {
        Ok(Self {
            evaluate: TieredStore::new(CacheOp::Evaluate.as_str(), config)?,
            search: TieredStore::new(CacheOp::Search.as_str(), config)?,
        })
    }

    /// Attaches (or re-roots) the disk tier of both ops.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures.
    pub fn persist(&self, root: &Path) -> io::Result<()> {
        self.evaluate.persist(root)?;
        self.search.persist(root)
    }

    /// The tiered store behind one op (metrics and gauges).
    pub fn store(&self, op: CacheOp) -> &TieredStore<StringCodec> {
        match op {
            CacheOp::Evaluate => &self.evaluate,
            CacheOp::Search => &self.search,
        }
    }

    /// One op's counters.
    pub fn stats(&self, op: CacheOp) -> &StoreStats {
        self.store(op).stats()
    }

    /// Ready memory-tier entries across both ops.
    pub fn len(&self) -> usize {
        self.evaluate.mem_entries() + self.search.mem_entries()
    }

    /// True when no ready entry is cached in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops both ops' memory tiers (disk tiers untouched) — the next
    /// lookups behave exactly like a restarted process.
    pub fn clear_memory(&self) {
        self.evaluate.clear_memory();
        self.search.clear_memory();
    }

    /// Replays a cached body by digest without counting a hit or miss — the
    /// `GET /v1/reports/{digest}` path.  Consults the memory tier, then the
    /// disk tier, of the evaluate op first and the search op second (the
    /// digest's op discriminator keeps the namespaces disjoint, so at most
    /// one can match).  The returned outcome says which tier answered
    /// (`Hit` = memory, `Disk` = promoted from disk).  A pending digest
    /// blocks until its computation finishes (and returns `None` if it
    /// failed).
    pub fn replay(&self, digest: Digest) -> Option<(Arc<String>, CacheOutcome)> {
        self.evaluate
            .get(digest)
            .or_else(|| self.search.get(digest))
    }

    /// Non-blocking counted lookup — the event-loop fast path.  Answers from
    /// the memory tier (counting a hit) or the disk tier (counting a disk
    /// hit and promoting); returns `None` on a miss **or** while the digest
    /// is pending, without ever blocking on an in-flight computation.
    pub fn probe(&self, op: CacheOp, digest: Digest) -> Option<(Arc<String>, CacheOutcome)> {
        self.store(op).probe(digest)
    }

    /// Non-blocking, uncounted [`ReportCache::replay`]: consults both ops'
    /// tiers but reports a pending digest as absent instead of waiting for
    /// its computation — `GET /v1/reports/{digest}` inside the event loop.
    pub fn try_replay(&self, digest: Digest) -> Option<(Arc<String>, CacheOutcome)> {
        self.evaluate
            .try_get(digest)
            .or_else(|| self.search.try_get(digest))
    }

    /// Looks `digest` up in `op`'s store; on a full miss, runs `compute`
    /// (outside the cache locks) and stores its result in memory and — when
    /// persistent — on disk.  Concurrent calls for the same digest are
    /// coalesced onto one computation.
    ///
    /// # Errors
    ///
    /// Propagates the computation's error message; waiters receive a clone
    /// of it and nothing is cached.
    pub fn get_or_compute<F>(
        &self,
        op: CacheOp,
        digest: Digest,
        compute: F,
    ) -> Result<(Arc<String>, CacheOutcome), String>
    where
        F: FnOnce() -> Result<String, String>,
    {
        self.store(op).get_or_compute(digest, compute, |e| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn digest(tag: &str) -> Digest {
        Digest::of_bytes(tag.as_bytes())
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("bitwave-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn miss_then_hit_replays_identical_bytes() {
        let cache = ReportCache::new(4);
        let (a, outcome) = cache
            .get_or_compute(CacheOp::Evaluate, digest("d1"), || Ok("body-1".to_string()))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (b, outcome) = cache
            .get_or_compute(CacheOp::Evaluate, digest("d1"), || {
                panic!("must not recompute")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(a, b);
        assert_eq!(cache.stats(CacheOp::Evaluate).hits(), 1);
        assert_eq!(cache.stats(CacheOp::Evaluate).misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.replay(digest("d1")).map(|(body, _)| body.to_string()),
            Some("body-1".to_string())
        );
        assert!(cache.replay(digest("absent")).is_none());
    }

    #[test]
    fn ops_are_disjoint_namespaces_but_share_replay() {
        let cache = ReportCache::new(4);
        cache
            .get_or_compute(CacheOp::Evaluate, digest("e"), || Ok("EV".to_string()))
            .unwrap();
        cache
            .get_or_compute(CacheOp::Search, digest("s"), || Ok("SE".to_string()))
            .unwrap();
        // Same digest in the other op is a miss (ops never alias in
        // practice: the request keys carry an op discriminator).
        let (_, outcome) = cache
            .get_or_compute(CacheOp::Search, digest("e"), || Ok("other".to_string()))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        // Replay finds both ops' bodies.
        assert_eq!(
            cache.replay(digest("s")).map(|(body, _)| body.to_string()),
            Some("SE".to_string())
        );
        assert_eq!(
            cache.replay(digest("e")).map(|(body, _)| body.to_string()),
            Some("EV".to_string())
        );
    }

    #[test]
    fn failed_computation_is_not_cached() {
        let cache = ReportCache::new(2);
        let err = cache
            .get_or_compute(CacheOp::Evaluate, digest("bad"), || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(cache.len(), 0);
        let (_, outcome) = cache
            .get_or_compute(CacheOp::Evaluate, digest("bad"), || {
                Ok("recovered".to_string())
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(cache.stats(CacheOp::Evaluate).misses(), 2);
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let cache = Arc::new(ReportCache::new(4));
        let computations = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computations = Arc::clone(&computations);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_compute(CacheOp::Evaluate, digest("shared"), || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok("shared-body".to_string())
                    })
                    .unwrap()
            }));
        }
        let results: Vec<(Arc<String>, CacheOutcome)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computations.load(Ordering::SeqCst), 1, "single-flight");
        assert!(results.iter().all(|(body, _)| &***body == "shared-body"));
        let stats = cache.stats(CacheOp::Evaluate);
        assert_eq!(stats.misses() + stats.coalesced() + stats.hits(), 8);
    }

    #[test]
    fn persistent_cache_replays_across_instances_byte_identically() {
        let root = temp_root("restart");
        let config = StoreConfig::default().with_root(&root).with_mem_entries(8);
        let cold_body = {
            let cache = ReportCache::with_config(&config).unwrap();
            let (body, outcome) = cache
                .get_or_compute(CacheOp::Evaluate, digest("r"), || {
                    Ok("{\"report\":42}".to_string())
                })
                .unwrap();
            assert_eq!(outcome, CacheOutcome::Miss);
            body.to_string()
        };
        // A fresh cache over the same root = a restarted process.
        let cache = ReportCache::with_config(&config).unwrap();
        let (warm, outcome) = cache
            .get_or_compute(CacheOp::Evaluate, digest("r"), || {
                panic!("must replay from disk")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Disk);
        assert_eq!(*warm, cold_body, "disk hits replay byte-identical JSON");
        // Replay (GET /v1/reports/{digest}) also reaches the disk tier.
        cache.clear_memory();
        let (body, outcome) = cache.replay(digest("r")).expect("disk replay");
        assert_eq!(*body, cold_body);
        assert_eq!(outcome, CacheOutcome::Disk, "replay must report its tier");
        let _ = std::fs::remove_dir_all(&root);
    }
}
