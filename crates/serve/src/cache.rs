//! Content-addressed report cache: LRU over digest → serialized-report
//! entries, with single-flight computation.
//!
//! Entries are keyed by the request digest (see [`crate::api`]) and store the
//! **serialized** response body, so a cache hit replays bytes identical to
//! the cold run that populated it.  Concurrent requests for the same digest
//! are deduplicated: the first request computes while the rest block on the
//! pending entry and reuse its result ("single-flight"), so a thundering
//! herd of identical requests performs exactly one evaluation.
//!
//! Eviction is least-recently-used over *ready* entries only — an in-flight
//! computation is never evicted from under its waiters.  Hit/miss/
//! coalesced/eviction counters feed `GET /metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a [`ReportCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The digest was already cached; stored bytes were replayed.
    Hit,
    /// The digest was absent; this call ran the computation.
    Miss,
    /// Another in-flight call was computing the digest; this call waited and
    /// shared its result.
    Coalesced,
}

impl CacheOutcome {
    /// Header value for `X-Bitwave-Cache`.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

/// Monotonic cache counters (exposed by `GET /metrics`).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Cache hits (ready entry replayed).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (computation ran).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Requests that waited on another request's in-flight computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU policy.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// One in-flight computation; waiters block on the condvar until `done`.
struct Pending {
    done: Mutex<Option<Result<Arc<str>, String>>>,
    cv: Condvar,
}

enum Slot {
    Ready {
        body: Arc<str>,
        /// Access stamp keying this entry in [`Inner::by_stamp`].
        stamp: u64,
    },
    Pending(Arc<Pending>),
}

struct Inner {
    map: HashMap<String, Slot>,
    /// Ready digests keyed by a monotonic access stamp: the first entry is
    /// the least recently used.  Touch and evict are O(log n) — this sits
    /// under the cache mutex on the hit path, so no linear scans.
    by_stamp: std::collections::BTreeMap<u64, String>,
    next_stamp: u64,
}

impl Inner {
    /// Stamps a ready digest as most-recently-used.
    fn touch(&mut self, digest: &str) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(Slot::Ready { stamp: old, .. }) = self.map.get_mut(digest) {
            self.by_stamp.remove(old);
            *old = stamp;
            self.by_stamp.insert(stamp, digest.to_string());
        }
    }
}

/// The content-addressed, bounded, single-flight report cache.
pub struct ReportCache {
    inner: Mutex<Inner>,
    capacity: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for ReportCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReportCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl ReportCache {
    /// Creates a cache bounded to `capacity` ready entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                by_stamp: std::collections::BTreeMap::new(),
                next_stamp: 0,
            }),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// The monotonic counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of ready (replayable) entries.
    pub fn len(&self) -> usize {
        self.lock().by_stamp.len()
    }

    /// True when no ready entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Replays a ready entry without counting a hit or miss — the
    /// `GET /v1/reports/{digest}` path.  A pending digest blocks until its
    /// computation finishes (and returns `None` if it failed).
    pub fn replay(&self, digest: &str) -> Option<Arc<str>> {
        let pending = {
            let mut inner = self.lock();
            match inner.map.get(digest) {
                Some(Slot::Ready { body, .. }) => {
                    let body = Arc::clone(body);
                    inner.touch(digest);
                    return Some(body);
                }
                Some(Slot::Pending(p)) => Arc::clone(p),
                None => return None,
            }
        };
        Self::wait(&pending).ok()
    }

    /// Looks `digest` up; on a miss, runs `compute` (outside the cache lock)
    /// and stores its result.  Concurrent calls for the same digest are
    /// coalesced onto the first caller's computation.
    ///
    /// # Errors
    ///
    /// Propagates the computation's error message; waiters receive a clone
    /// of it and nothing is cached.
    pub fn get_or_compute<F>(
        &self,
        digest: &str,
        compute: F,
    ) -> Result<(Arc<str>, CacheOutcome), String>
    where
        F: FnOnce() -> Result<String, String>,
    {
        let pending = {
            let mut inner = self.lock();
            match inner.map.get(digest) {
                Some(Slot::Ready { body, .. }) => {
                    let body = Arc::clone(body);
                    inner.touch(digest);
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((body, CacheOutcome::Hit));
                }
                Some(Slot::Pending(p)) => Arc::clone(p),
                None => {
                    let pending = Arc::new(Pending {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    inner
                        .map
                        .insert(digest.to_string(), Slot::Pending(Arc::clone(&pending)));
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    drop(inner);
                    return self.run_compute(digest, pending, compute);
                }
            }
        };
        self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
        Self::wait(&pending).map(|body| (body, CacheOutcome::Coalesced))
    }

    fn run_compute<F>(
        &self,
        digest: &str,
        pending: Arc<Pending>,
        compute: F,
    ) -> Result<(Arc<str>, CacheOutcome), String>
    where
        F: FnOnce() -> Result<String, String>,
    {
        // If `compute` panics, the unwind must not leave the pending slot in
        // the map (every later request for the digest would block forever on
        // a condvar nobody will signal).  The guard runs on unwind only —
        // the normal path disarms it.
        struct PendingGuard<'a> {
            cache: &'a ReportCache,
            digest: &'a str,
            pending: &'a Pending,
            armed: bool,
        }
        impl Drop for PendingGuard<'_> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                let mut inner = self.cache.lock();
                inner.map.remove(self.digest);
                drop(inner);
                let mut done = self
                    .pending
                    .done
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if done.is_none() {
                    *done = Some(Err("evaluation panicked".to_string()));
                }
                self.pending.cv.notify_all();
            }
        }
        let mut guard = PendingGuard {
            cache: self,
            digest,
            pending: &pending,
            armed: true,
        };
        let result: Result<Arc<str>, String> = compute().map(Arc::from);
        guard.armed = false;
        drop(guard);
        {
            let mut inner = self.lock();
            match &result {
                Ok(body) => {
                    let stamp = inner.next_stamp;
                    inner.next_stamp += 1;
                    inner.map.insert(
                        digest.to_string(),
                        Slot::Ready {
                            body: Arc::clone(body),
                            stamp,
                        },
                    );
                    inner.by_stamp.insert(stamp, digest.to_string());
                    while inner.by_stamp.len() > self.capacity {
                        let Some((_, victim)) = inner.by_stamp.pop_first() else {
                            break;
                        };
                        inner.map.remove(&victim);
                        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    inner.map.remove(digest);
                }
            }
        }
        let mut done = pending
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done = Some(result.clone());
        pending.cv.notify_all();
        drop(done);
        result.map(|body| (body, CacheOutcome::Miss))
    }

    fn wait(pending: &Pending) -> Result<Arc<str>, String> {
        let mut done = pending
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = pending
                .cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn miss_then_hit_replays_identical_bytes() {
        let cache = ReportCache::new(4);
        let (a, outcome) = cache
            .get_or_compute("d1", || Ok("body-1".to_string()))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (b, outcome) = cache
            .get_or_compute("d1", || panic!("must not recompute"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(a, b);
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.replay("d1").as_deref(), Some("body-1"));
        assert_eq!(cache.replay("absent"), None);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = ReportCache::new(2);
        cache.get_or_compute("a", || Ok("A".into())).unwrap();
        cache.get_or_compute("b", || Ok("B".into())).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        cache.get_or_compute("a", || unreachable!()).unwrap();
        cache.get_or_compute("c", || Ok("C".into())).unwrap();
        assert_eq!(cache.stats().evictions(), 1);
        assert!(cache.replay("b").is_none(), "b must have been evicted");
        assert!(cache.replay("a").is_some());
        assert!(cache.replay("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_computation_is_not_cached() {
        let cache = ReportCache::new(2);
        let err = cache
            .get_or_compute("bad", || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(cache.len(), 0);
        // A retry recomputes (and may now succeed).
        let (_, outcome) = cache
            .get_or_compute("bad", || Ok("recovered".into()))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(cache.stats().misses(), 2);
    }

    #[test]
    fn panicking_computation_unblocks_waiters_and_allows_retry() {
        let cache = Arc::new(ReportCache::new(4));
        let panicker = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute("doomed", || {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    panic!("evaluation bug");
                });
            })
        };
        // Give the panicker time to install its pending slot, then wait on it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let err = cache
            .get_or_compute("doomed", || Ok("unused".to_string()))
            .unwrap_err();
        assert!(err.contains("panicked"), "waiter must be unblocked: {err}");
        assert!(panicker.join().is_err(), "computation did panic");
        // The slot is cleaned up: a retry recomputes and succeeds.
        let (body, outcome) = cache
            .get_or_compute("doomed", || Ok("recovered".to_string()))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(&*body, "recovered");
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let cache = Arc::new(ReportCache::new(4));
        let computations = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computations = Arc::clone(&computations);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_compute("shared", || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so other threads coalesce.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok("shared-body".to_string())
                    })
                    .unwrap()
            }));
        }
        let results: Vec<(Arc<str>, CacheOutcome)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computations.load(Ordering::SeqCst), 1, "single-flight");
        assert!(results.iter().all(|(body, _)| &**body == "shared-body"));
        let misses = results
            .iter()
            .filter(|(_, o)| *o == CacheOutcome::Miss)
            .count();
        assert_eq!(misses, 1);
        // Everyone else either coalesced onto the in-flight computation or
        // hit the already-stored entry, depending on scheduling.
        assert_eq!(
            cache.stats().misses() + cache.stats().coalesced() + cache.stats().hits(),
            8
        );
    }
}
