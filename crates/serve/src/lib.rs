//! # bitwave-serve
//!
//! A concurrent HTTP/1.1 evaluation service over the BitWave pipeline, with
//! content-addressed report caching — the repository's "reachable" tier: the
//! zero-copy compress → bit-flip → map → simulate chain of
//! [`bitwave::pipeline`], exposed as a JSON API that batches, deduplicates
//! and replays the repeated analytical sweeps accelerator-comparison studies
//! run.
//!
//! Built entirely on [`std::net`] — the build environment is offline, so
//! like the `vendor/` shims the service carries its own minimal HTTP framing
//! ([`http`]) and client ([`client`]) instead of a framework.
//!
//! ## Architecture
//!
//! ```text
//!   TcpListener ──▶ serve-loop thread (epoll/poll readiness, non-blocking)
//!     conn cap → 503   │  per-conn read/parse/write buffers + deadlines
//!                      │  (idle 5 s · partial request 10 s → 408 · write 5 s)
//!                      ├─ cheap endpoints + cache hits answered inline
//!                      ├─ rate limit (token bucket per peer IP) → 429
//!                      ├─ max-inflight cap → 503 + Retry-After
//!                      ▼
//!            Dispatcher (cross-request batching)
//!     identical digest → rider (free)   same (model,seed,cap) → gathered
//!                      │ job queue
//!        ┌─────────────┼─────────────┐
//!   worker 0      worker 1 …    worker N-1      (pipeline compute only)
//!        │             │             │
//!        ▼             ▼             ▼
//!   ReportCache (single-flight LRU) ─ miss ─▶ ModelStore (Arc weights)
//!        │                                        │ zero tensor deep copies
//!        │                                        ▼
//!        │                         Pipeline::run_model_weights_parallel
//!        └─▶ completion ─▶ loop fans out to every waiter:
//!            {digest, key, report} + X-Bitwave-Cache + X-Bitwave-Batch
//! ```
//!
//! ## Endpoints
//!
//! | endpoint | contents |
//! |----------|----------|
//! | `POST /v1/evaluate` | run (or replay) one model × accelerator evaluation; body: `{"model", "accelerator?", "bitflip?", "seed?", "sample_cap?", "group_size?", "mapping?"}` |
//! | `POST /v1/search` | run (or replay) the per-layer dataflow design-space search (`bitwave-dse`): winning mappings, Pareto fronts, heuristic-vs-searched EDP; same body minus `mapping` |
//! | `POST /v1/design` | launch (or attach to) a `bitwave-sweep` hardware design sweep; streams partial Pareto fronts as chunked NDJSON lines, final [`bitwave_sweep::FrontReport`] last; completed sweeps replay byte-identically from the store |
//! | `GET /v1/reports/{digest}` | replay a cached report by content digest, no recomputation |
//! | `GET /v1/models` | the model registry (`bitwave_dnn::models::by_name` names) |
//! | `GET /v1/accelerators` | the accelerator registry (`AcceleratorSpec::by_name` names) |
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus-style text counters, incl. the tensor deep-copy count |
//!
//! ## Caching semantics
//!
//! A request is normalised (registry names canonicalised, defaults applied)
//! into an [`api::EvaluationKey`], whose stable FNV-1a/128 digest
//! ([`bitwave::digest`]) addresses the serialized response **bytes** in a
//! tiered `bitwave-store` (bounded sharded-LRU memory tier; optional
//! checksummed disk tier under [`ServeConfig::store_root`]).  A hit replays
//! exactly the bytes the cold run produced; concurrent identical requests
//! are coalesced onto one computation (single-flight), so a thundering herd
//! of the same request performs one evaluation and zero extra tensor
//! copies.  The `X-Bitwave-Cache` response header reports `hit` (memory),
//! `disk` (replayed from the disk tier, e.g. after a restart), `miss` or
//! `coalesced`.  With a store root configured the process-wide DSE memo
//! cache persists under the same root, so `POST /v1/search` warm-starts
//! across restarts even on a response-cache miss.
//!
//! ## Quickstart
//!
//! ```
//! use bitwave_serve::client::Client;
//! use bitwave_serve::server::{start, ServeConfig};
//!
//! let handle = start(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let mut client = Client::new(handle.local_addr());
//! let health = client.get("/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! let body = r#"{"model":"resnet18","sample_cap":2000}"#;
//! let cold = client.post_json("/v1/evaluate", body).unwrap();
//! let warm = client.post_json("/v1/evaluate", body).unwrap();
//! assert_eq!(cold.header("x-bitwave-cache"), Some("miss"));
//! assert_eq!(warm.header("x-bitwave-cache"), Some("hit"));
//! assert_eq!(cold.body, warm.body, "cache hits replay byte-identical JSON");
//! handle.shutdown();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admission;
pub mod api;
mod batch;
pub mod cache;
pub mod client;
pub mod design;
pub mod error;
mod event_loop;
pub mod http;
pub mod metrics;
pub mod poller;
pub mod server;
pub mod store;

pub use api::{EvaluateRequest, EvaluateResponse, EvaluationKey, SearchKey, SearchResponse};
pub use cache::{CacheOp, CacheOutcome, ReportCache};
pub use error::ServeError;
pub use server::{start, ServeConfig, ServerHandle};
