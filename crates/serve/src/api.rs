//! Request/response types and the evaluation entry point.
//!
//! `POST /v1/evaluate` accepts a JSON body selecting a model and accelerator
//! by their registry names plus optional [`bitwave::digest::ContextKnobs`]
//! overrides.  The request is **normalised** into an [`EvaluationKey`] —
//! canonical names, defaults applied — before hashing, so logically
//! identical requests (`"ResNet18"` vs `"resnet18"`, omitted vs explicit
//! defaults) share one digest and therefore one cache entry.

use crate::error::ServeError;
use bitwave::context::ExperimentContext;
use bitwave::dataflow::mapping::MappingPolicy;
use bitwave::dataflow::DramSpec;
use bitwave::digest::{ContextKnobs, Digest, DIGEST_SCHEMA_VERSION};
use bitwave::dse::NetworkSearch;
use bitwave::pipeline::{ModelReport, Pipeline};
use bitwave::BitwaveError;
use bitwave_accel::spec::AcceleratorSpec;
use bitwave_dnn::models::NetworkSpec;
use bitwave_dnn::weights::NetworkWeights;
use serde::{Deserialize, Serialize, Value};

/// Largest accepted per-layer sampling cap: bounds the cost of one request
/// (85 M-weight BERT at full size is a denial-of-service vector, not a
/// workload).
pub const MAX_SAMPLE_CAP: usize = 1_000_000;

/// Largest accepted BCS group size (the hardware supports 8/16/32; analysis
/// sweeps may go finer or coarser within reason).
pub const MAX_GROUP_SIZE: usize = 64;

/// Largest accepted DRAM bandwidth throttle in bits per cycle (anything
/// beyond this is indistinguishable from unconstrained for every modelled
/// workload).
pub const MAX_DRAM_BANDWIDTH_BITS: usize = 1 << 20;

/// Largest accepted DRAM burst size in bytes.
pub const MAX_DRAM_BURST_BYTES: usize = 4096;

/// The JSON body of `POST /v1/evaluate`; every field except `model` is
/// optional and falls back to the documented default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluateRequest {
    /// Model registry name (see `GET /v1/models`).
    pub model: String,
    /// Accelerator registry name (default `bitwave`, the fully optimised
    /// configuration).
    pub accelerator: Option<String>,
    /// Apply the paper's default one-shot Bit-Flip strategy (default
    /// `false`, i.e. lossless).
    pub bitflip: Option<bool>,
    /// RNG seed for the synthetic weights (default 42).
    pub seed: Option<u64>,
    /// Per-layer weight sampling cap (default 60 000, max
    /// [`MAX_SAMPLE_CAP`]).
    pub sample_cap: Option<usize>,
    /// BCS group size in weights (default 16, max [`MAX_GROUP_SIZE`]).
    pub group_size: Option<usize>,
    /// Mapping policy: `"heuristic"` (default) or `"searched"` (per-layer
    /// DSE; winners come from the memoized search).
    pub mapping: Option<String>,
    /// DRAM bandwidth throttle in bits per cycle.  Omitted (the default)
    /// means the unconstrained legacy DRAM model; set, it switches every
    /// layer to the roofline `max(cycle_compute, cycle_dram)` and the
    /// response reports per-layer boundedness.
    pub dram_bandwidth_bits: Option<usize>,
    /// DRAM burst size in bytes for burst-quantised traffic (default 64).
    /// Only meaningful together with `dram_bandwidth_bits`.
    pub dram_burst_bytes: Option<usize>,
}

impl EvaluateRequest {
    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for invalid JSON or a missing
    /// `model` field.
    pub fn from_json(body: &[u8]) -> Result<Self, ServeError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ServeError::BadRequest("request body is not UTF-8".to_string()))?;
        let value: Value = serde_json::from_str(text)
            .map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))?;
        if value.as_object().is_none() {
            return Err(ServeError::BadRequest(
                "request body must be a JSON object".to_string(),
            ));
        }
        let request: EvaluateRequest = serde_json::from_value(&value)
            .map_err(|e| ServeError::BadRequest(format!("invalid request: {e}")))?;
        if request.model.trim().is_empty() {
            return Err(ServeError::BadRequest(
                "field `model` is required".to_string(),
            ));
        }
        Ok(request)
    }

    /// Normalises the request: resolves registry names to their canonical
    /// spellings, applies defaults, and validates the knobs.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for out-of-range knobs and unknown
    /// model/accelerator names (with the known names in the message).
    pub fn normalize(&self) -> Result<NormalizedRequest, ServeError> {
        let spec = bitwave_dnn::models::by_name(&self.model)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let accel_name = self.accelerator.as_deref().unwrap_or("bitwave");
        let mut accelerator = AcceleratorSpec::by_name(accel_name)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let defaults = ExperimentContext::default();
        let mapping = match self.mapping.as_deref() {
            None => defaults.mapping_policy,
            Some(name) => MappingPolicy::parse(name).ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "unknown mapping policy `{name}` (expected `heuristic` or `searched`)"
                ))
            })?,
        };
        let dram = match (self.dram_bandwidth_bits, self.dram_burst_bytes) {
            (None, None) => DramSpec::unconstrained(),
            (None, Some(_)) => {
                return Err(ServeError::BadRequest(
                    "dram_burst_bytes requires dram_bandwidth_bits".to_string(),
                ))
            }
            (Some(bandwidth), burst) => {
                if bandwidth == 0 || bandwidth > MAX_DRAM_BANDWIDTH_BITS {
                    return Err(ServeError::BadRequest(format!(
                        "dram_bandwidth_bits must be in 1..={MAX_DRAM_BANDWIDTH_BITS}, \
                         got {bandwidth}"
                    )));
                }
                let mut spec = DramSpec::constrained(bandwidth);
                if let Some(burst) = burst {
                    if burst == 0 || burst > MAX_DRAM_BURST_BYTES {
                        return Err(ServeError::BadRequest(format!(
                            "dram_burst_bytes must be in 1..={MAX_DRAM_BURST_BYTES}, got {burst}"
                        )));
                    }
                    spec = spec.with_burst(burst);
                }
                spec
            }
        };
        // The throttle travels both in the digest (the accelerator *name*
        // does not change, so the knob must) and in the spec that actually
        // runs the evaluation.
        accelerator.dram = dram;
        let knobs = ContextKnobs {
            seed: self.seed.unwrap_or(defaults.seed),
            sample_cap: self.sample_cap.unwrap_or(defaults.sample_cap),
            group_size: self.group_size.unwrap_or(defaults.group_size.len()),
            mapping,
            dram,
        };
        if knobs.sample_cap == 0 || knobs.sample_cap > MAX_SAMPLE_CAP {
            return Err(ServeError::BadRequest(format!(
                "sample_cap must be in 1..={MAX_SAMPLE_CAP}, got {}",
                knobs.sample_cap
            )));
        }
        if knobs.group_size < 2 || knobs.group_size > MAX_GROUP_SIZE {
            return Err(ServeError::BadRequest(format!(
                "group_size must be in 2..={MAX_GROUP_SIZE}, got {}",
                knobs.group_size
            )));
        }
        Ok(NormalizedRequest {
            key: EvaluationKey {
                schema: DIGEST_SCHEMA_VERSION,
                model: spec.name.clone(),
                accelerator: accelerator.label.clone(),
                bitflip: self.bitflip.unwrap_or(false),
                knobs,
            },
            spec,
            accelerator,
        })
    }

    /// Normalises the request for `POST /v1/search`.  The endpoint *is* the
    /// search, so the `mapping` knob is rejected and the key's policy is
    /// pinned to `searched` — logically identical search requests share one
    /// digest with no way to alias an evaluation digest (the key carries an
    /// `op` discriminator).
    ///
    /// # Errors
    ///
    /// Everything [`EvaluateRequest::normalize`] rejects, plus an explicit
    /// `mapping` field.
    pub fn normalize_search(&self) -> Result<NormalizedSearch, ServeError> {
        if self.mapping.is_some() {
            return Err(ServeError::BadRequest(
                "`mapping` is not a /v1/search knob; the endpoint always searches".to_string(),
            ));
        }
        let normalized = self.normalize()?;
        let mut knobs = normalized.key.knobs;
        knobs.mapping = MappingPolicy::Searched;
        Ok(NormalizedSearch {
            key: SearchKey {
                schema: DIGEST_SCHEMA_VERSION,
                op: "search".to_string(),
                model: normalized.key.model,
                accelerator: normalized.key.accelerator,
                bitflip: normalized.key.bitflip,
                knobs,
            },
            spec: normalized.spec,
            accelerator: normalized.accelerator,
        })
    }
}

/// The canonical, digestible identity of one evaluation: every field that
/// influences the resulting [`ModelReport`], after name resolution and
/// defaulting.  Its [`Digest`] is the cache address of the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationKey {
    /// [`DIGEST_SCHEMA_VERSION`] stamp.
    pub schema: u32,
    /// Canonical model name (e.g. `ResNet18`).
    pub model: String,
    /// Canonical accelerator label (e.g. `BitWave+DF+SM+BF`).
    pub accelerator: String,
    /// Whether the default Bit-Flip strategy is applied.
    pub bitflip: bool,
    /// Context knobs (seed, sampling cap, group size).
    pub knobs: ContextKnobs,
}

impl EvaluationKey {
    /// The stable content digest addressing this evaluation's report.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure as [`ServeError::Internal`].
    pub fn digest(&self) -> Result<Digest, ServeError> {
        Digest::of_value(self).map_err(|e| ServeError::Internal(e.to_string()))
    }
}

/// A fully resolved evaluation request, ready to run.
#[derive(Debug, Clone)]
pub struct NormalizedRequest {
    /// The digestible identity (also echoed in the response envelope).
    pub key: EvaluationKey,
    /// The resolved network specification.
    pub spec: NetworkSpec,
    /// The resolved accelerator configuration.
    pub accelerator: AcceleratorSpec,
}

impl NormalizedRequest {
    /// Runs the evaluation on shared `weights` (planned by handle — zero
    /// tensor deep copies) across all cores.
    ///
    /// # Errors
    ///
    /// Propagates pipeline planning/stage errors.
    pub fn evaluate(&self, weights: &NetworkWeights) -> Result<ModelReport, BitwaveError> {
        let mut pipeline =
            Pipeline::new(self.key.knobs.to_context()).with_accelerator(self.accelerator.clone());
        if self.key.bitflip {
            pipeline = pipeline.with_default_bitflip(&self.spec);
        }
        pipeline.run_model_weights_parallel(&self.spec, weights)
    }

    /// Serializes the response envelope (`digest` + `report`) exactly as the
    /// cache stores and replays it.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure as [`ServeError::Internal`].
    pub fn envelope(&self, digest: &Digest, report: &ModelReport) -> Result<String, ServeError> {
        let report_digest = report
            .content_digest()
            .map_err(|e| ServeError::Internal(e.to_string()))?;
        let envelope = EvaluateResponse {
            digest: digest.to_hex(),
            report_digest: report_digest.to_hex(),
            key: self.key.clone(),
            report: report.clone(),
        };
        serde_json::to_string(&envelope).map_err(|e| ServeError::Internal(e.to_string()))
    }
}

/// The canonical, digestible identity of one dataflow search: the
/// [`EvaluationKey`] fields plus an `op` discriminator so a search digest can
/// never alias an evaluation digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchKey {
    /// [`DIGEST_SCHEMA_VERSION`] stamp.
    pub schema: u32,
    /// Operation discriminator; always `"search"`.
    pub op: String,
    /// Canonical model name.
    pub model: String,
    /// Canonical accelerator label.
    pub accelerator: String,
    /// Whether the default Bit-Flip strategy is applied before profiling.
    pub bitflip: bool,
    /// Context knobs; `mapping` is pinned to `searched`.
    pub knobs: ContextKnobs,
}

impl SearchKey {
    /// The stable content digest addressing this search's response.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure as [`ServeError::Internal`].
    pub fn digest(&self) -> Result<Digest, ServeError> {
        Digest::of_value(self).map_err(|e| ServeError::Internal(e.to_string()))
    }
}

/// A fully resolved search request, ready to run.
#[derive(Debug, Clone)]
pub struct NormalizedSearch {
    /// The digestible identity (also echoed in the response envelope).
    pub key: SearchKey,
    /// The resolved network specification.
    pub spec: NetworkSpec,
    /// The resolved accelerator configuration.
    pub accelerator: AcceleratorSpec,
}

impl NormalizedSearch {
    /// Runs the per-layer design-space search on shared `weights`.  Layer
    /// searches land in the process-wide `bitwave-dse` memo cache, so
    /// repeated searches of identical layers — across requests and models —
    /// are hash-map walks even when the response cache missed.
    ///
    /// # Errors
    ///
    /// Propagates pipeline planning/stage and search errors.
    pub fn run(&self, weights: &NetworkWeights) -> Result<NetworkSearch, BitwaveError> {
        let mut pipeline =
            Pipeline::new(self.key.knobs.to_context()).with_accelerator(self.accelerator.clone());
        if self.key.bitflip {
            pipeline = pipeline.with_default_bitflip(&self.spec);
        }
        pipeline.search_model_weights(&self.spec, weights)
    }

    /// Serializes the response envelope exactly as the cache stores and
    /// replays it.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure as [`ServeError::Internal`].
    pub fn envelope(&self, digest: &Digest, search: &NetworkSearch) -> Result<String, ServeError> {
        let envelope = SearchResponse {
            digest: digest.to_hex(),
            key: self.key.clone(),
            search: search.clone(),
        };
        serde_json::to_string(&envelope).map_err(|e| ServeError::Internal(e.to_string()))
    }
}

/// The body of a `POST /v1/search` response: per-layer winning mappings,
/// Pareto fronts and the heuristic-vs-searched comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SearchResponse {
    /// Request digest addressing this search in the cache.
    pub digest: String,
    /// The normalised search key the digest covers.
    pub key: SearchKey,
    /// The full network search outcome.
    pub search: NetworkSearch,
}

/// The body of a `POST /v1/evaluate` / `GET /v1/reports/{digest}` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluateResponse {
    /// Request digest addressing this report in the cache
    /// (`GET /v1/reports/{digest}`).
    pub digest: String,
    /// Digest of the report's own canonical JSON
    /// ([`ModelReport::content_digest`]) — lets clients verify a replay is
    /// byte-faithful without refetching.
    pub report_digest: String,
    /// The normalised evaluation key the digest covers.
    pub key: EvaluationKey,
    /// The full model report.
    pub report: ModelReport,
}

/// One row of `GET /v1/models`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelListing {
    /// Registry name to use in `POST /v1/evaluate`.
    pub name: String,
    /// Display name as used in the paper's figures.
    pub display_name: String,
    /// Number of weight layers.
    pub layers: usize,
    /// GFLOPs per inference.
    pub gflops: f64,
    /// Parameter count in millions.
    pub params_millions: f64,
}

/// The rows of `GET /v1/models`, straight from the registry.
pub fn list_models() -> Vec<ModelListing> {
    bitwave_dnn::models::MODEL_NAMES
        .iter()
        .filter_map(|name| {
            bitwave_dnn::models::by_name(name)
                .ok()
                .map(|spec| (spec, name))
        })
        .map(|(spec, name)| {
            let summary = spec.summary();
            ModelListing {
                name: name.to_string(),
                display_name: summary.name,
                layers: summary.layers,
                gflops: summary.gflops,
                params_millions: summary.params_millions,
            }
        })
        .collect()
}

/// One row of `GET /v1/accelerators`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorListing {
    /// Registry name to use in `POST /v1/evaluate`.
    pub name: String,
    /// Display label (e.g. `BitWave+DF+SM+BF`).
    pub label: String,
}

/// The rows of `GET /v1/accelerators`, straight from the registry.
pub fn list_accelerators() -> Vec<AcceleratorListing> {
    AcceleratorSpec::REGISTRY_NAMES
        .iter()
        .filter_map(|name| AcceleratorSpec::by_name(name).ok().map(|spec| (name, spec)))
        .map(|(name, spec)| AcceleratorListing {
            name: (*name).to_string(),
            label: spec.label,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(json: &str) -> EvaluateRequest {
        EvaluateRequest::from_json(json.as_bytes()).unwrap()
    }

    #[test]
    fn defaults_are_applied_and_digested_canonically() {
        let explicit = request(
            r#"{"model":"ResNet18","accelerator":"BitWave","bitflip":false,
                "seed":42,"sample_cap":60000,"group_size":16}"#,
        )
        .normalize()
        .unwrap();
        let implicit = request(r#"{"model":"resnet18"}"#).normalize().unwrap();
        assert_eq!(explicit.key, implicit.key);
        assert_eq!(
            explicit.key.digest().unwrap(),
            implicit.key.digest().unwrap()
        );
        assert_eq!(implicit.key.model, "ResNet18");
        assert_eq!(implicit.key.accelerator, "BitWave+DF+SM+BF");
        assert!(!implicit.key.bitflip);
    }

    #[test]
    fn distinct_knobs_produce_distinct_digests() {
        let base = request(r#"{"model":"resnet18","sample_cap":4000}"#)
            .normalize()
            .unwrap();
        for other in [
            r#"{"model":"resnet18","sample_cap":4001}"#,
            r#"{"model":"resnet18","sample_cap":4000,"seed":7}"#,
            r#"{"model":"resnet18","sample_cap":4000,"bitflip":true}"#,
            r#"{"model":"resnet18","sample_cap":4000,"accelerator":"scnn"}"#,
            r#"{"model":"mobilenet-v2","sample_cap":4000}"#,
        ] {
            let normalized = request(other).normalize().unwrap();
            assert_ne!(
                base.key.digest().unwrap(),
                normalized.key.digest().unwrap(),
                "{other} must not alias the base request"
            );
        }
    }

    #[test]
    fn malformed_bodies_are_rejected_with_400() {
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (b"[1,2]", "JSON object"),
            (b"{}", "model"),
            (b"{\"model\":\"\"}", "model"),
            (b"{\"model\":\"alexnet\"}", "unknown model"),
            (
                b"{\"model\":\"resnet18\",\"accelerator\":\"tpu\"}",
                "unknown accelerator",
            ),
            (b"{\"model\":\"resnet18\",\"sample_cap\":0}", "sample_cap"),
            (b"{\"model\":\"resnet18\",\"group_size\":1}", "group_size"),
            (b"{\"model\":\"resnet18\",\"group_size\":65}", "group_size"),
        ] {
            let err = EvaluateRequest::from_json(body)
                .and_then(|r| r.normalize().map(|_| ()))
                .unwrap_err();
            let ServeError::BadRequest(msg) = &err else {
                panic!("expected BadRequest for {body:?}, got {err:?}");
            };
            assert!(msg.contains(needle), "`{msg}` should mention `{needle}`");
        }
    }

    #[test]
    fn mapping_knob_is_parsed_and_digest_relevant() {
        let heuristic = request(r#"{"model":"resnet18","sample_cap":4000}"#)
            .normalize()
            .unwrap();
        assert_eq!(heuristic.key.knobs.mapping, MappingPolicy::Heuristic);
        let explicit = request(r#"{"model":"resnet18","sample_cap":4000,"mapping":"Heuristic"}"#)
            .normalize()
            .unwrap();
        assert_eq!(
            heuristic.key.digest().unwrap(),
            explicit.key.digest().unwrap(),
            "explicit default must alias the implicit default"
        );
        let searched = request(r#"{"model":"resnet18","sample_cap":4000,"mapping":"searched"}"#)
            .normalize()
            .unwrap();
        assert_eq!(searched.key.knobs.mapping, MappingPolicy::Searched);
        assert_ne!(
            heuristic.key.digest().unwrap(),
            searched.key.digest().unwrap()
        );
        let err = request(r#"{"model":"resnet18","mapping":"random"}"#)
            .normalize()
            .unwrap_err();
        let ServeError::BadRequest(msg) = err else {
            panic!("expected BadRequest");
        };
        assert!(msg.contains("mapping policy"));
    }

    #[test]
    fn dram_throttle_knob_is_validated_and_digest_relevant() {
        let base = request(r#"{"model":"resnet18","sample_cap":4000}"#)
            .normalize()
            .unwrap();
        assert!(!base.accelerator.dram.is_constrained());
        let throttled =
            request(r#"{"model":"resnet18","sample_cap":4000,"dram_bandwidth_bits":32}"#)
                .normalize()
                .unwrap();
        assert!(throttled.accelerator.dram.is_constrained());
        assert_ne!(
            base.key.digest().unwrap(),
            throttled.key.digest().unwrap(),
            "a throttled request must address its own cache entry"
        );
        // The default burst spelled explicitly aliases the implicit default.
        let explicit_burst = request(
            r#"{"model":"resnet18","sample_cap":4000,
                "dram_bandwidth_bits":32,"dram_burst_bytes":64}"#,
        )
        .normalize()
        .unwrap();
        assert_eq!(
            throttled.key.digest().unwrap(),
            explicit_burst.key.digest().unwrap()
        );
        // A different burst does not.
        let wide_burst = request(
            r#"{"model":"resnet18","sample_cap":4000,
                "dram_bandwidth_bits":32,"dram_burst_bytes":128}"#,
        )
        .normalize()
        .unwrap();
        assert_ne!(
            throttled.key.digest().unwrap(),
            wide_burst.key.digest().unwrap()
        );
        for (body, needle) in [
            (
                r#"{"model":"resnet18","dram_burst_bytes":64}"#,
                "requires dram_bandwidth_bits",
            ),
            (
                r#"{"model":"resnet18","dram_bandwidth_bits":0}"#,
                "dram_bandwidth_bits",
            ),
            (
                r#"{"model":"resnet18","dram_bandwidth_bits":2097152}"#,
                "dram_bandwidth_bits",
            ),
            (
                r#"{"model":"resnet18","dram_bandwidth_bits":32,"dram_burst_bytes":0}"#,
                "dram_burst_bytes",
            ),
            (
                r#"{"model":"resnet18","dram_bandwidth_bits":32,"dram_burst_bytes":8192}"#,
                "dram_burst_bytes",
            ),
        ] {
            let err = request(body).normalize().unwrap_err();
            let ServeError::BadRequest(msg) = &err else {
                panic!("expected BadRequest for {body}, got {err:?}");
            };
            assert!(msg.contains(needle), "`{msg}` should mention `{needle}`");
        }
    }

    #[test]
    fn throttled_evaluation_reports_memory_bound_layers() {
        let normalized =
            request(r#"{"model":"resnet18","sample_cap":1500,"dram_bandwidth_bits":1}"#)
                .normalize()
                .unwrap();
        let weights = normalized.key.knobs.to_context().weights(&normalized.spec);
        let report = normalized.evaluate(&weights).unwrap();
        assert!(
            report.memory_bound_layers > 0,
            "a 1 bit/cycle DRAM tier must leave layers memory-bound"
        );
        let layer = &report.layers[0].simulation;
        let boundedness = layer.boundedness.expect("throttled layers carry a verdict");
        assert!(boundedness.memory_bound);
        let envelope = normalized
            .envelope(&normalized.key.digest().unwrap(), &report)
            .unwrap();
        assert!(envelope.contains("\"memory_bound_layers\""));
        assert!(envelope.contains("\"boundedness\""));
        assert!(envelope.contains("\"dram_stall_fraction\""));
        let parsed: EvaluateResponse = serde_json::from_str(&envelope).unwrap();
        assert_eq!(parsed.report, report, "boundedness must roundtrip");
    }

    #[test]
    fn search_requests_normalize_with_their_own_namespace() {
        let body = r#"{"model":"ResNet18","sample_cap":4000}"#;
        let search = request(body).normalize_search().unwrap();
        assert_eq!(search.key.op, "search");
        assert_eq!(search.key.model, "ResNet18");
        assert_eq!(search.key.knobs.mapping, MappingPolicy::Searched);
        let evaluate = request(body).normalize().unwrap();
        assert_ne!(
            search.key.digest().unwrap(),
            evaluate.key.digest().unwrap(),
            "search digests must never alias evaluation digests"
        );
        // Logically identical search requests share one digest.
        let aliased = request(r#"{"model":"resnet18","sample_cap":4000,"bitflip":false}"#)
            .normalize_search()
            .unwrap();
        assert_eq!(search.key.digest().unwrap(), aliased.key.digest().unwrap());
        // The mapping knob is meaningless on the search endpoint.
        let err = request(r#"{"model":"resnet18","mapping":"searched"}"#)
            .normalize_search()
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
    }

    #[test]
    fn search_runs_and_envelope_replays_deterministically() {
        let normalized = request(r#"{"model":"resnet18","sample_cap":1500}"#)
            .normalize_search()
            .unwrap();
        let weights = normalized.key.knobs.to_context().weights(&normalized.spec);
        let search = normalized.run(&weights).unwrap();
        assert_eq!(search.layers.len(), normalized.spec.layers.len());
        assert!(search.edp_gain() >= 1.0);
        let digest = normalized.key.digest().unwrap();
        let a = normalized.envelope(&digest, &search).unwrap();
        let b = normalized.envelope(&digest, &search).unwrap();
        assert_eq!(a, b, "envelope serialization must be deterministic");
        let value: Value = serde_json::from_str(&a).unwrap();
        assert_eq!(
            value.get("digest").and_then(Value::as_str),
            Some(digest.to_hex().as_str())
        );
        assert!(value.get("search").is_some());
    }

    #[test]
    fn listings_cover_the_registries() {
        let models = list_models();
        assert_eq!(models.len(), bitwave_dnn::models::MODEL_NAMES.len());
        assert!(models
            .iter()
            .any(|m| m.name == "resnet18" && m.layers == 21));
        let accels = list_accelerators();
        assert_eq!(accels.len(), AcceleratorSpec::REGISTRY_NAMES.len());
        assert!(accels
            .iter()
            .any(|a| a.name == "bitwave" && a.label == "BitWave+DF+SM+BF"));
    }

    #[test]
    fn evaluation_runs_and_envelope_embeds_the_digest() {
        let normalized = request(r#"{"model":"resnet18","sample_cap":2000}"#)
            .normalize()
            .unwrap();
        let weights = normalized.key.knobs.to_context().weights(&normalized.spec);
        let report = normalized.evaluate(&weights).unwrap();
        assert_eq!(report.layers.len(), normalized.spec.layers.len());
        let digest = normalized.key.digest().unwrap();
        let envelope = normalized.envelope(&digest, &report).unwrap();
        let parsed: EvaluateResponse = serde_json::from_str(&envelope).unwrap();
        assert_eq!(parsed.digest, digest.to_hex());
        assert_eq!(
            parsed.report_digest,
            report.content_digest().unwrap().to_hex(),
            "the envelope must self-describe the report bytes"
        );
        assert_ne!(parsed.digest, parsed.report_digest);
        assert_eq!(parsed.key, normalized.key);
        assert_eq!(parsed.report, report);
    }
}
