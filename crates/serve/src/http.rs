//! Minimal HTTP/1.1 message framing over [`std::net::TcpStream`].
//!
//! The build environment is offline, so the service speaks HTTP through a
//! small vendored-shim-style implementation instead of a framework: request
//! parsing (request line, headers, `Content-Length` body), response writing,
//! and persistent connections (HTTP/1.1 keep-alive, honoured unless either
//! side sends `Connection: close`).  Only what the service and its clients
//! need is implemented — no chunked transfer encoding, no trailers, no
//! `Expect: 100-continue`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Query string after `?`, if any (not URL-decoded).
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// First value of a header, by lowercase name — shared by the server parser
/// and [`crate::client`] so framing rules cannot drift between them.
pub fn find_header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Splits one header line (already stripped of CR/LF) into its lowercased
/// name and trimmed value — shared by the server parser and
/// [`crate::client`].
pub fn parse_header(trimmed: &str) -> Option<(String, String)> {
    let (name, value) = trimmed.split_once(':')?;
    Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        find_header(&self.headers, name)
    }

    /// True when the client asked to close the connection after this
    /// request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Errors produced while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// An I/O error on the socket.
    Io(io::Error),
    /// The request was malformed; the message is safe to echo to the peer.
    BadRequest(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    PayloadTooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::PayloadTooLarge => write!(f, "request body too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one head line, charging its bytes against `budget`.  The read is
/// bounded *while it happens* (`Read::take`), so a malicious endless line
/// with no newline cannot buffer unbounded memory — it errors as soon as the
/// budget is exhausted.  Returns an empty string on EOF.
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    budget: &mut usize,
) -> Result<String, HttpError> {
    let mut line = String::new();
    let mut limited = Read::take(Read::by_ref(reader), (*budget as u64) + 1);
    let n = limited.read_line(&mut line)?;
    if n > *budget {
        return Err(HttpError::BadRequest("request head too large".to_string()));
    }
    *budget -= n;
    Ok(line)
}

/// Reads one request from a buffered stream.
///
/// # Errors
///
/// [`HttpError::ConnectionClosed`] on clean EOF before the request line,
/// [`HttpError::BadRequest`]/[`HttpError::PayloadTooLarge`] on malformed
/// input, [`HttpError::Io`] on socket failure.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let line = read_head_line(reader, &mut head_budget)?;
    if line.is_empty() {
        return Err(HttpError::ConnectionClosed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version `{version}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let header_line = read_head_line(reader, &mut head_budget)?;
        if header_line.is_empty() {
            return Err(HttpError::BadRequest(
                "connection closed mid-headers".to_string(),
            ));
        }
        let trimmed = header_line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some(header) = parse_header(trimmed) else {
            return Err(HttpError::BadRequest(format!(
                "malformed header `{trimmed}`"
            )));
        };
        headers.push(header);
    }

    // Only Content-Length framing is supported; a chunked body we cannot
    // frame would desync the keep-alive stream into phantom requests, so it
    // must be rejected (the 400 path closes the connection).
    if find_header(&headers, "transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "transfer-encoding is not supported; send a content-length body".to_string(),
        ));
    }
    let content_length = find_header(&headers, "content-length")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": …}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&serde::Value::Object(vec![(
            "error".to_string(),
            serde::Value::String(message.to_string()),
        )]))
        .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Self::json(status, body)
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the status codes the service emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response; `close` controls the `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut TcpStream, close: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // One write for head + body: a split write interacts with Nagle's
        // algorithm + delayed ACK to add ~40 ms per response.
        let mut message = head.into_bytes();
        message.extend_from_slice(&self.body);
        stream.write_all(&message)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw.as_bytes()).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        read_request(&mut BufReader::new(server_side))
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = roundtrip(
            "POST /v1/evaluate?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/evaluate");
        assert_eq!(req.query.as_deref(), Some("verbose=1"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{}");
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_close_is_detected() {
        let req = roundtrip("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        assert_eq!(req.query, None);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            roundtrip("NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            roundtrip("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            roundtrip("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(roundtrip(""), Err(HttpError::ConnectionClosed)));
        // Chunked framing is unsupported and must be rejected outright —
        // reading it as an empty body would desync the keep-alive stream.
        assert!(matches!(
            roundtrip("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\n{}\r\n0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_an_endless_head_line_without_buffering_it() {
        // A request line with no newline must fail as soon as it exceeds the
        // head budget — not buffer until the peer stops sending.
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(roundtrip(&raw), Err(HttpError::BadRequest(_))));
        // Same for a single endless header line.
        let raw = format!(
            "GET / HTTP/1.1\r\nx-junk: {}\r\n\r\n",
            "b".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(roundtrip(&raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(roundtrip(&raw), Err(HttpError::PayloadTooLarge)));
    }

    #[test]
    fn response_formats_status_line_and_headers() {
        let r = Response::json(200, "{}").with_header("x-test", "1");
        assert_eq!(r.reason(), "OK");
        assert_eq!(Response::error(404, "nope").reason(), "Not Found");
        assert_eq!(r.headers.len(), 1);
        let err = Response::error(400, "bad \"quote\"");
        let body = String::from_utf8(err.body).unwrap();
        assert!(
            body.contains("\\\"quote\\\""),
            "quotes must be escaped: {body}"
        );
    }
}
