//! Minimal HTTP/1.x message framing.
//!
//! The build environment is offline, so the service speaks HTTP through a
//! small vendored-shim-style implementation instead of a framework: request
//! parsing (request line, headers, `Content-Length` body), response writing,
//! and persistent connections.  Only what the service and its clients need
//! is implemented — chunked transfer encoding exists on the **response**
//! side only (the streaming `/v1/design` endpoint, via
//! [`Response::serialize_chunked_head`] + [`chunk_frame`]); chunked
//! *requests* are still rejected, and there are no trailers and no
//! `Expect: 100-continue`.
//!
//! Two parsers share one set of framing rules:
//!
//! * [`parse_request`] — the **incremental** parser the event loop feeds
//!   from a per-connection read buffer.  It is stateless: each call rescans
//!   the buffer and either returns a complete request plus the byte count
//!   it consumed, or [`ParseStatus::Partial`] meaning "read more".
//! * [`read_request`] — the **blocking** parser retained for the keep-alive
//!   [`crate::client`] and as the equivalence oracle for the incremental
//!   parser's proptest.
//!
//! Close semantics follow RFC 7230 §6.3: HTTP/1.1 defaults to keep-alive
//! unless a `Connection` header lists `close`; HTTP/1.0 defaults to close
//! unless one lists `keep-alive` — and `close` always wins, even in a
//! combined `keep-alive, close` token list.  Conflicting duplicate
//! `Content-Length` headers are rejected outright (the classic
//! request-smuggling desync shape); identical duplicates are tolerated.

use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// The HTTP/1.x protocol version of a request — it decides the keep-alive
/// default (1.1: keep open; 1.0: close).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0`: connections close after the response unless the client
    /// sent `Connection: keep-alive`.
    Http10,
    /// `HTTP/1.1` (and any other `HTTP/1.x`): connections persist unless
    /// either side sends `Connection: close`.
    Http11,
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Query string after `?`, if any (not URL-decoded).
    pub query: Option<String>,
    /// Protocol version from the request line.
    pub version: Version,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// First value of a header, by lowercase name — shared by the server parser
/// and [`crate::client`] so framing rules cannot drift between them.
pub fn find_header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Splits one header line (already stripped of CR/LF) into its lowercased
/// name and trimmed value — shared by the server parser and
/// [`crate::client`].
pub fn parse_header(trimmed: &str) -> Option<(String, String)> {
    let (name, value) = trimmed.split_once(':')?;
    Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// The body length declared by `Content-Length`, across *all* such headers.
/// Mismatched duplicates are a request-smuggling/desync shape and are
/// rejected; identical duplicates (including comma-joined repeats of one
/// value) are tolerated per RFC 7230 §3.3.2.
///
/// # Errors
///
/// [`HttpError::BadRequest`] on an unparsable value or conflicting
/// duplicates.
pub fn content_length_of(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let mut declared: Option<usize> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        for token in value.split(',') {
            let token = token.trim();
            let n = token
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length `{token}`")))?;
            match declared {
                Some(prev) if prev != n => {
                    return Err(HttpError::BadRequest(format!(
                        "conflicting content-length headers ({prev} vs {n})"
                    )));
                }
                _ => declared = Some(n),
            }
        }
    }
    Ok(declared.unwrap_or(0))
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        find_header(&self.headers, name)
    }

    /// True when the connection must close after this request.  `Connection`
    /// headers are parsed as comma-separated token lists and `close` wins
    /// over `keep-alive`; absent a decisive token, HTTP/1.1 keeps the
    /// connection open and HTTP/1.0 closes it.
    pub fn wants_close(&self) -> bool {
        let mut keep_alive = false;
        for (name, value) in &self.headers {
            if name != "connection" {
                continue;
            }
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    return true;
                }
                if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
        match self.version {
            Version::Http11 => false,
            Version::Http10 => !keep_alive,
        }
    }
}

/// Errors produced while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// An I/O error on the socket.
    Io(io::Error),
    /// The request was malformed; the message is safe to echo to the peer.
    BadRequest(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    PayloadTooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::PayloadTooLarge => write!(f, "request body too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Parses `METHOD target HTTP/1.x` into its parts.
fn parse_request_line(line: &str) -> Result<(String, String, Version), HttpError> {
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version `{version}`"
        )));
    }
    let version = if version == "HTTP/1.0" {
        Version::Http10
    } else {
        Version::Http11
    };
    Ok((method, target, version))
}

/// Assembles the final [`Request`] once framing is settled — shared by both
/// parsers so target splitting cannot drift.
fn build_request(
    method: String,
    target: String,
    version: Version,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    Request {
        method,
        path,
        query,
        version,
        headers,
        body,
    }
}

/// Validates headers that affect body framing and returns the declared
/// body length.
fn framed_body_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    // Only Content-Length framing is supported; a chunked body we cannot
    // frame would desync the keep-alive stream into phantom requests, so it
    // must be rejected (the 400 path closes the connection).
    if find_header(headers, "transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "transfer-encoding is not supported; send a content-length body".to_string(),
        ));
    }
    let content_length = content_length_of(headers)?;
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge);
    }
    Ok(content_length)
}

/// Reads one head line, charging its bytes against `budget`.  The read is
/// bounded *while it happens* (`Read::take`), so a malicious endless line
/// with no newline cannot buffer unbounded memory — it errors as soon as the
/// budget is exhausted.  Returns an empty string on EOF.
fn read_head_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = String::new();
    let mut limited = Read::take(Read::by_ref(reader), (*budget as u64) + 1);
    let n = limited.read_line(&mut line)?;
    if n > *budget {
        return Err(HttpError::BadRequest("request head too large".to_string()));
    }
    *budget -= n;
    Ok(line)
}

/// Reads one request from a buffered stream, blocking until it is complete.
///
/// # Errors
///
/// [`HttpError::ConnectionClosed`] on clean EOF before the request line,
/// [`HttpError::BadRequest`]/[`HttpError::PayloadTooLarge`] on malformed
/// input, [`HttpError::Io`] on socket failure.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let line = read_head_line(reader, &mut head_budget)?;
    if line.is_empty() {
        return Err(HttpError::ConnectionClosed);
    }
    let (method, target, version) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    loop {
        let header_line = read_head_line(reader, &mut head_budget)?;
        if header_line.is_empty() {
            return Err(HttpError::BadRequest(
                "connection closed mid-headers".to_string(),
            ));
        }
        let trimmed = header_line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some(header) = parse_header(trimmed) else {
            return Err(HttpError::BadRequest(format!(
                "malformed header `{trimmed}`"
            )));
        };
        headers.push(header);
    }

    let content_length = framed_body_length(&headers)?;
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(build_request(method, target, version, headers, body))
}

/// What [`parse_request`] found in the buffer.
#[derive(Debug)]
pub enum ParseStatus {
    /// A complete request; the first `consumed` buffer bytes belong to it
    /// (drain them before re-parsing — pipelined requests may follow).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied (head + body).
        consumed: usize,
    },
    /// The buffer holds only a prefix of a request; read more bytes.
    Partial,
}

/// Incremental, stateless request parser over a connection's read buffer.
/// Rescans `buf` from the start on every call: returns
/// [`ParseStatus::Partial`] until a full head (terminated by a blank line)
/// and its declared body have arrived, then the parsed request plus the
/// byte count to drain.  Framing rules are identical to [`read_request`]
/// (pinned by a proptest).
///
/// # Errors
///
/// [`HttpError::BadRequest`] on malformed input or a head exceeding
/// [`MAX_HEAD_BYTES`]; [`HttpError::PayloadTooLarge`] on an oversized
/// declared body.
pub fn parse_request(buf: &[u8]) -> Result<ParseStatus, HttpError> {
    // Locate the end of the head: the first empty line.  Lines end at `\n`
    // with an optional `\r` before it, matching the blocking parser's
    // `read_line` + trim behaviour.
    let mut lines: Vec<&[u8]> = Vec::new();
    let mut cursor = 0;
    let mut head_end = None;
    while let Some(nl) = buf[cursor..].iter().position(|&b| b == b'\n') {
        let mut line = &buf[cursor..cursor + nl];
        if let [head @ .., b'\r'] = line {
            line = head;
        }
        cursor += nl + 1;
        if line.is_empty() {
            head_end = Some(cursor);
            break;
        }
        lines.push(line);
        if cursor > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("request head too large".to_string()));
        }
    }
    let Some(head_end) = head_end else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("request head too large".to_string()));
        }
        return Ok(ParseStatus::Partial);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::BadRequest("request head too large".to_string()));
    }

    let mut lines = lines.into_iter().map(|line| {
        std::str::from_utf8(line)
            .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".to_string()))
    });
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".to_string()))??;
    let (method, target, version) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        let line = line?;
        let Some(header) = parse_header(line) else {
            return Err(HttpError::BadRequest(format!("malformed header `{line}`")));
        };
        headers.push(header);
    }

    let content_length = framed_body_length(&headers)?;
    if buf.len() - head_end < content_length {
        return Ok(ParseStatus::Partial);
    }
    let body = buf[head_end..head_end + content_length].to_vec();
    Ok(ParseStatus::Complete {
        request: build_request(method, target, version, headers, body),
        consumed: head_end + content_length,
    })
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": …}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&serde::Value::Object(vec![(
            "error".to_string(),
            serde::Value::String(message.to_string()),
        )]))
        .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Self::json(status, body)
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the status codes the service emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// The full wire form (status line, headers, body) as one byte vector —
    /// what the event loop appends to a connection's write buffer.  `close`
    /// controls the `Connection` header.
    pub fn serialize(&self, close: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // One buffer for head + body: a split write interacts with Nagle's
        // algorithm + delayed ACK to add ~40 ms per response.
        let mut message = head.into_bytes();
        message.extend_from_slice(&self.body);
        message
    }

    /// Writes the response; `close` controls the `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut TcpStream, close: bool) -> io::Result<()> {
        stream.write_all(&self.serialize(close))?;
        stream.flush()
    }

    /// The wire form of a `Transfer-Encoding: chunked` response **head**
    /// (status line + headers, no body) — what a streaming endpoint writes
    /// before its first [`chunk_frame`].  `self.body` is ignored; the
    /// stream must be finished with [`LAST_CHUNK`].
    pub fn serialize_chunked_head(&self, close: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        head.into_bytes()
    }
}

/// The terminating frame of a chunked response body.
pub const LAST_CHUNK: &[u8] = b"0\r\n\r\n";

/// One chunked-encoding frame: hex length line, payload, CRLF.  Empty
/// payloads are skipped (an empty chunk would terminate the stream).
pub fn chunk_frame(payload: &[u8]) -> Vec<u8> {
    if payload.is_empty() {
        return Vec::new();
    }
    let mut frame = format!("{:x}\r\n", payload.len()).into_bytes();
    frame.extend_from_slice(payload);
    frame.extend_from_slice(b"\r\n");
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn roundtrip(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    fn parse_complete(raw: &str) -> Result<(Request, usize), HttpError> {
        match parse_request(raw.as_bytes())? {
            ParseStatus::Complete { request, consumed } => Ok((request, consumed)),
            ParseStatus::Partial => panic!("expected a complete request: {raw:?}"),
        }
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw = "POST /v1/evaluate?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}";
        let req = roundtrip(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/evaluate");
        assert_eq!(req.query.as_deref(), Some("verbose=1"));
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{}");
        assert!(!req.wants_close());
        let (incr, consumed) = parse_complete(raw).unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(incr.body, b"{}");
    }

    #[test]
    fn connection_close_is_detected() {
        let req = roundtrip("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        assert_eq!(req.query, None);
    }

    #[test]
    fn connection_token_lists_let_close_win() {
        // `keep-alive, close` must read as close — the old substring
        // comparison misread the whole list as keep-alive.
        let req = roundtrip("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(req.wants_close(), "close wins in a token list");
        let req = roundtrip("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn http_1_0_defaults_to_close_unless_keep_alive() {
        // An HTTP/1.0 client without `Connection: keep-alive` expects the
        // response to be terminated by EOF; keeping the socket open hangs
        // it until the idle timeout.
        let req = roundtrip("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.version, Version::Http10);
        assert!(req.wants_close(), "HTTP/1.0 defaults to close");
        let req = roundtrip("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.wants_close(), "explicit keep-alive persists 1.0");
        let req =
            roundtrip("GET /healthz HTTP/1.0\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(req.wants_close(), "close still wins on 1.0");
    }

    #[test]
    fn conflicting_content_length_headers_are_rejected() {
        // Two mismatched Content-Length headers are the classic
        // request-smuggling desync; the old parser silently took the first.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}123";
        assert!(matches!(roundtrip(raw), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse_request(raw.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
        // A comma-joined conflicting pair is equally rejected.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 2, 5\r\n\r\n{}123";
        assert!(matches!(roundtrip(raw), Err(HttpError::BadRequest(_))));
        // Identical duplicates are tolerated (RFC 7230 §3.3.2).
        let raw = "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}";
        assert_eq!(roundtrip(raw).unwrap().body, b"{}");
        let (req, _) = parse_complete(raw).unwrap();
        assert_eq!(req.body, b"{}");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            roundtrip("NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            roundtrip("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            roundtrip("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(roundtrip(""), Err(HttpError::ConnectionClosed)));
        // Chunked framing is unsupported and must be rejected outright —
        // reading it as an empty body would desync the keep-alive stream.
        assert!(matches!(
            roundtrip("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\n{}\r\n0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_an_endless_head_line_without_buffering_it() {
        // A request line with no newline must fail as soon as it exceeds the
        // head budget — not buffer until the peer stops sending.
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(roundtrip(&raw), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse_request(raw.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
        // Same for a single endless header line.
        let raw = format!(
            "GET / HTTP/1.1\r\nx-junk: {}\r\n\r\n",
            "b".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(roundtrip(&raw), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse_request(raw.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
        // And an unterminated head must error once past the budget even
        // with no newline at all in the buffer.
        let endless = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(
            parse_request(&endless),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(roundtrip(&raw), Err(HttpError::PayloadTooLarge)));
        assert!(matches!(
            parse_request(raw.as_bytes()),
            Err(HttpError::PayloadTooLarge)
        ));
    }

    #[test]
    fn incremental_parser_reports_partial_until_complete() {
        let raw = b"POST /v1/evaluate HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..raw.len() {
            assert!(
                matches!(parse_request(&raw[..cut]), Ok(ParseStatus::Partial)),
                "prefix of {cut} bytes must be partial"
            );
        }
        let (req, consumed) = parse_complete(std::str::from_utf8(raw).unwrap()).unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn incremental_parser_consumes_only_the_first_pipelined_request() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ParseStatus::Complete { request, consumed } = parse_request(raw).unwrap() else {
            panic!("first request is complete");
        };
        assert_eq!(request.path, "/a");
        let ParseStatus::Complete {
            request,
            consumed: rest,
        } = parse_request(&raw[consumed..]).unwrap()
        else {
            panic!("second request is complete");
        };
        assert_eq!(request.path, "/b");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn response_formats_status_line_and_headers() {
        let r = Response::json(200, "{}").with_header("x-test", "1");
        assert_eq!(r.reason(), "OK");
        assert_eq!(Response::error(404, "nope").reason(), "Not Found");
        assert_eq!(r.headers.len(), 1);
        let err = Response::error(400, "bad \"quote\"");
        let body = String::from_utf8(err.body).unwrap();
        assert!(
            body.contains("\\\"quote\\\""),
            "quotes must be escaped: {body}"
        );
    }

    #[test]
    fn reason_covers_admission_control_statuses() {
        assert_eq!(
            Response::error(429, "slow down").reason(),
            "Too Many Requests"
        );
        assert_eq!(Response::error(408, "too slow").reason(), "Request Timeout");
        assert_eq!(Response::error(503, "full").reason(), "Service Unavailable");
    }

    #[test]
    fn serialize_matches_write_to_framing() {
        let r = Response::json(200, "{\"ok\":true}").with_header("x-bitwave-batch", "3");
        let wire = String::from_utf8(r.serialize(false)).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("connection: keep-alive\r\n"));
        assert!(wire.contains("x-bitwave-batch: 3\r\n"));
        assert!(wire.ends_with("\r\n\r\n{\"ok\":true}"));
        let closed = String::from_utf8(r.serialize(true)).unwrap();
        assert!(closed.contains("connection: close\r\n"));
    }

    #[test]
    fn chunked_head_replaces_content_length_framing() {
        let r = Response::json(200, "ignored").with_header("x-bitwave-sweep", "abc");
        let head = String::from_utf8(r.serialize_chunked_head(true)).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("transfer-encoding: chunked\r\n"));
        assert!(head.contains("connection: close\r\n"));
        assert!(head.contains("x-bitwave-sweep: abc\r\n"));
        assert!(!head.contains("content-length"), "chunked framing only");
        assert!(head.ends_with("\r\n\r\n"), "head carries no body bytes");
    }

    #[test]
    fn chunk_frames_carry_hex_lengths_and_crlf_delimiters() {
        assert_eq!(chunk_frame(b"hello\n"), b"6\r\nhello\n\r\n");
        let long = vec![b'x'; 0x1a];
        let frame = chunk_frame(&long);
        assert!(frame.starts_with(b"1a\r\n"));
        assert!(frame.ends_with(b"\r\n"));
        assert_eq!(frame.len(), 4 + 0x1a + 2);
        assert!(chunk_frame(b"").is_empty(), "empty chunk would end stream");
        assert_eq!(LAST_CHUNK, b"0\r\n\r\n");
    }
}
