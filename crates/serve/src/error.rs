//! Service error type, mapped onto HTTP statuses.

use std::fmt;

/// Errors the service maps onto HTTP responses.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Client error → 400.
    BadRequest(
        /// Message echoed to the client.
        String,
    ),
    /// Unknown resource → 404.
    NotFound(
        /// Message echoed to the client.
        String,
    ),
    /// Evaluation or serialization failure → 500.
    Internal(
        /// Message echoed to the client.
        String,
    ),
    /// Job queue full → 503.
    Overloaded,
    /// Per-client rate limit exceeded → 429.
    RateLimited,
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::Internal(_) => 500,
            ServeError::Overloaded => 503,
            ServeError::RateLimited => 429,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "{msg}"),
            ServeError::NotFound(msg) => write!(f, "{msg}"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
            ServeError::Overloaded => {
                write!(f, "job queue full; retry with backoff")
            }
            ServeError::RateLimited => {
                write!(f, "per-client rate limit exceeded; slow down")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<bitwave::BitwaveError> for ServeError {
    fn from(e: bitwave::BitwaveError) -> Self {
        match e {
            bitwave::BitwaveError::UnknownModel(_)
            | bitwave::BitwaveError::UnknownAccelerator(_) => ServeError::BadRequest(e.to_string()),
            other => ServeError::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_and_messages() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::NotFound("x".into()).status(), 404);
        assert_eq!(ServeError::Internal("x".into()).status(), 500);
        assert_eq!(ServeError::Overloaded.status(), 503);
        assert!(ServeError::Overloaded.to_string().contains("queue"));
        assert_eq!(ServeError::RateLimited.status(), 429);
        assert!(ServeError::RateLimited.to_string().contains("rate limit"));
        let e: ServeError = bitwave::BitwaveError::EmptyModel {
            network: "X".to_string(),
        }
        .into();
        assert_eq!(e.status(), 500);
        let e: ServeError =
            bitwave::BitwaveError::from(bitwave_dnn::models::by_name("nope").unwrap_err()).into();
        assert_eq!(e.status(), 400);
    }
}
