//! A minimal blocking HTTP/1.1 client for the service's own tests, the CI
//! smoke script and the `bench_serve` load harness.
//!
//! Reuses one keep-alive connection per [`Client`]; if the server closed the
//! idle connection, the next request transparently reconnects once.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        crate::http::find_header(&self.headers, name)
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the body is not valid UTF-8.
    pub fn text(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// A blocking keep-alive client bound to one server address.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    connection: Option<BufReader<TcpStream>>,
}

impl Client {
    /// Creates a client for `addr` (connects lazily).
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            connection: None,
        }
    }

    /// Sends a GET request.
    ///
    /// # Errors
    ///
    /// Propagates connection and framing errors.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Sends a POST request with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates connection and framing errors.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        match self.try_request(method, path, body) {
            Ok(response) => Ok(response),
            Err(_) => {
                // The server may have closed the idle keep-alive connection;
                // reconnect once before giving up.
                self.connection = None;
                self.try_request(method, path, body)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        if self.connection.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            self.connection = Some(BufReader::new(stream));
        }
        let reader = self.connection.as_mut().expect("connection just ensured");
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: bitwave-serve\r\n");
        if body.is_some() {
            head.push_str("content-type: application/json\r\n");
        }
        head.push_str(&format!(
            "content-length: {}\r\n\r\n",
            body.map_or(0, <[u8]>::len)
        ));
        // One write for head + body (avoids Nagle + delayed-ACK stalls).
        let mut message = head.into_bytes();
        if let Some(body) = body {
            message.extend_from_slice(body);
        }
        let stream = reader.get_mut();
        stream.write_all(&message)?;
        stream.flush()?;

        let response = Self::read_response(reader)?;
        let closing = response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if closing {
            self.connection = None;
        }
        Ok(response)
    }

    fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<ClientResponse> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", line.trim()),
                )
            })?;
        let mut headers = Vec::new();
        loop {
            let mut header_line = String::new();
            if reader.read_line(&mut header_line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let trimmed = header_line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some(header) = crate::http::parse_header(trimmed) {
                headers.push(header);
            }
        }
        let content_length = crate::http::find_header(&headers, "content-length")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
