//! The poll-driven connection event loop.
//!
//! One thread owns every client socket.  Connections are non-blocking and
//! registered with a [`Poller`] (epoll on Linux, `poll(2)` elsewhere); the
//! loop advances each through a readiness state machine — read bytes, parse
//! incrementally ([`crate::http::parse_request`]), answer cheap endpoints
//! and cache hits inline, hand compute misses to the worker pool through the
//! [`Dispatcher`], flush response bytes — and enforces every deadline
//! centrally, so a slow, quiet or never-reading client costs one buffered
//! connection instead of a blocked thread:
//!
//! * **idle** keep-alive connections close after [`KEEP_ALIVE_IDLE`];
//! * a **partial request** (bytes arrived, head/body incomplete) gets
//!   [`READ_TIMEOUT`] to finish, then `408 Request Timeout`;
//! * a peer that stops **reading** its response is dropped once no byte
//!   leaves for [`WRITE_TIMEOUT`].
//!
//! Admission control runs here too: the connection cap answers a
//! best-effort, non-blocking `503` at accept (the loop never stalls on a
//! rejected client's socket), the per-client token bucket answers `429` with
//! `Retry-After`, and the dispatcher's `max_inflight` cap sheds compute
//! requests with `503` before they queue.

use crate::admission::RateLimiter;
use crate::batch::{Dispatcher, JobKind, Placement};
use crate::cache::{CacheOp, CacheOutcome};
use crate::design::{DesignEvent, DesignHub};
use crate::error::ServeError;
use crate::http::{
    chunk_frame, parse_request, HttpError, ParseStatus, Request, Response, LAST_CHUNK,
};
use crate::metrics::ServiceMetrics;
use crate::poller::{Event, Interest, Poller, WakeReader};
use crate::server::{error_response, route, ServiceState};
use crate::EvaluateRequest;
use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default for [`crate::ServeConfig::keep_alive_idle`]: keep-alive
/// connections with no traffic close after this long.
pub const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);
/// Default for [`crate::ServeConfig::read_timeout`]: a
/// started-but-incomplete request must finish within this, else `408`.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Default for [`crate::ServeConfig::write_timeout`]: a connection whose
/// peer accepts no response byte for this long is dropped.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// The three connection deadlines, resolved from [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy)]
struct Deadlines {
    idle: Duration,
    read: Duration,
    write: Duration,
}

/// Soft cap on buffered unparsed request bytes per connection; reading
/// pauses (level-triggered readiness resumes it) once reached.
const READ_BUF_CAP: usize = 2 * 1024 * 1024;
const READ_CHUNK: usize = 8 * 1024;

const WAKER_TOKEN: usize = 0;
const LISTENER_TOKEN: usize = 1;
const FIRST_CONN_TOKEN: usize = 2;

/// What a dispatched request needs to fan its response back out.
#[derive(Debug)]
pub(crate) struct ConnWaiter {
    token: usize,
    hex: String,
    close: bool,
}

/// One client connection's state.
struct Conn {
    token: usize,
    stream: TcpStream,
    peer: IpAddr,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// A request from this connection is dispatched; parsing pauses until
    /// its response is queued (pipelined responses stay ordered).
    processing: bool,
    /// Close once `write_buf` drains; no further reads or parses.
    pending_close: bool,
    /// Peer half-closed; buffered complete requests are still served.
    eof: bool,
    /// When the currently-buffered partial request started arriving.
    request_start: Option<Instant>,
    last_progress: Instant,
    interest: Interest,
}

impl Conn {
    fn write_pending(&self) -> bool {
        self.written < self.write_buf.len()
    }

    fn deadline(&self, deadlines: &Deadlines) -> Option<Instant> {
        if self.write_pending() {
            Some(self.last_progress + deadlines.write)
        } else if self.processing {
            None
        } else if let Some(start) = self.request_start {
            Some(start + deadlines.read)
        } else {
            Some(self.last_progress + deadlines.idle)
        }
    }
}

/// The loop itself; constructed by [`crate::server::start`] and run on the
/// `serve-loop` thread until shutdown.
pub(crate) struct EventLoop {
    state: Arc<ServiceState>,
    poller: Poller,
    wake_reader: WakeReader,
    listener: TcpListener,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    dispatcher: Dispatcher<ConnWaiter>,
    limiter: Option<RateLimiter>,
    max_conns: usize,
    deadlines: Deadlines,
    /// Design-stream subscribers: sweep digest hex → connection tokens
    /// receiving that sweep's chunked NDJSON frames.
    design_subs: HashMap<String, Vec<usize>>,
}

impl EventLoop {
    pub(crate) fn new(
        state: Arc<ServiceState>,
        listener: TcpListener,
        wake_reader: WakeReader,
    ) -> io::Result<Self> {
        let mut poller = Poller::new()?;
        poller.register(wake_reader.raw_fd(), WAKER_TOKEN, Interest::READ)?;
        listener.set_nonblocking(true)?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        let dispatcher = Dispatcher::new(state.config.batching, state.config.max_inflight);
        let limiter = state.config.rate_limit.map(RateLimiter::new);
        let max_conns = state.config.queue_capacity.max(1);
        let deadlines = Deadlines {
            idle: state.config.keep_alive_idle,
            read: state.config.read_timeout,
            write: state.config.write_timeout,
        };
        Ok(Self {
            state,
            poller,
            wake_reader,
            listener,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            dispatcher,
            limiter,
            max_conns,
            deadlines,
            design_subs: HashMap::new(),
        })
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            let _ = self.poller.wait(&mut events, timeout);
            if self.state.shutdown.load(Ordering::Acquire) {
                break;
            }
            let batch: Vec<Event> = std::mem::take(&mut events);
            for event in batch {
                match event.token {
                    WAKER_TOKEN => {
                        self.wake_reader.drain();
                        self.drain_completions();
                        self.drain_design_events();
                    }
                    LISTENER_TOKEN => self.accept_ready(),
                    token => {
                        if event.hangup && !event.readable {
                            self.close_conn(token);
                            continue;
                        }
                        if event.readable {
                            self.conn_readable(token);
                        }
                        if event.writable {
                            self.conn_writable(token);
                        }
                    }
                }
            }
            self.sweep_deadlines();
        }
        // Immediate teardown: connections reset, waiters dropped (workers
        // finish their current job into an unread mailbox).
        for (_, conn) in self.conns.drain() {
            self.poller.deregister(conn.stream.as_raw_fd());
        }
        self.dispatcher.clear_waiters();
        self.state
            .metrics
            .connections_open
            .store(0, Ordering::Relaxed);
    }

    /// Nearest per-connection deadline, as a wait timeout.
    fn next_timeout(&self) -> Option<Duration> {
        let nearest = self
            .conns
            .values()
            .filter_map(|conn| conn.deadline(&self.deadlines))
            .min()?;
        Some(nearest.saturating_duration_since(Instant::now()))
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, addr)) => {
                    if self.conns.len() >= self.max_conns {
                        self.reject_overflow(stream);
                        continue;
                    }
                    self.add_conn(stream, addr.ip());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Best-effort `503` for a connection over the cap: one non-blocking
    /// write, then drop — the loop never stalls on a rejected client (the
    /// old acceptor blocked here when the peer's receive window was full).
    fn reject_overflow(&self, stream: TcpStream) {
        ServiceMetrics::bump(&self.state.metrics.queue_rejections);
        let _ = stream.set_nonblocking(true);
        let bytes = error_response(&ServeError::Overloaded)
            .with_header("retry-after", "1")
            .serialize(true);
        let mut stream = stream;
        let _ = io::Write::write(&mut stream, &bytes);
    }

    fn add_conn(&mut self, stream: TcpStream, peer: IpAddr) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.conns.insert(
            token,
            Conn {
                token,
                stream,
                peer,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                written: 0,
                processing: false,
                pending_close: false,
                eof: false,
                request_start: None,
                last_progress: Instant::now(),
                interest: Interest::READ,
            },
        );
        self.state
            .metrics
            .connections_open
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            self.drop_conn(conn);
        }
    }

    fn drop_conn(&mut self, conn: Conn) {
        self.poller.deregister(conn.stream.as_raw_fd());
        self.state
            .metrics
            .connections_open
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    /// Puts `conn` back in the map with fresh poller interest, or tears it
    /// down when `keep` is false.
    fn settle(&mut self, mut conn: Conn, keep: bool) {
        if keep {
            self.update_interest(&mut conn);
            self.conns.insert(conn.token, conn);
        } else {
            self.drop_conn(conn);
        }
    }

    fn conn_readable(&mut self, token: usize) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let keep = self.do_read(&mut conn) && self.advance(&mut conn) && self.flush(&mut conn);
        self.settle(conn, keep);
    }

    fn conn_writable(&mut self, token: usize) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let keep = self.flush(&mut conn);
        self.settle(conn, keep);
    }

    /// Reads until `WouldBlock`, EOF or the buffer cap; false = fatal error.
    fn do_read(&mut self, conn: &mut Conn) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if conn.read_buf.len() >= READ_BUF_CAP {
                // Level-triggered readiness re-delivers once parsing drains.
                return true;
            }
            match io::Read::read(&mut conn.stream, &mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    return true;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Parses and handles buffered requests until the buffer runs dry, a
    /// request dispatches (`processing`), or the connection starts closing.
    fn advance(&mut self, conn: &mut Conn) -> bool {
        while !conn.processing && !conn.pending_close {
            match parse_request(&conn.read_buf) {
                Ok(ParseStatus::Complete { request, consumed }) => {
                    conn.read_buf.drain(..consumed);
                    conn.request_start = None;
                    self.handle_request(conn, &request);
                }
                Ok(ParseStatus::Partial) => {
                    if conn.eof {
                        // Peer half-closed mid-request (or cleanly with an
                        // empty buffer): nothing more can complete.
                        conn.pending_close = true;
                    } else if !conn.read_buf.is_empty() && conn.request_start.is_none() {
                        conn.request_start = Some(Instant::now());
                    }
                    break;
                }
                Err(e) => {
                    ServiceMetrics::bump(&self.state.metrics.http_requests);
                    let response = match e {
                        HttpError::PayloadTooLarge => {
                            Response::error(413, "request body too large")
                        }
                        HttpError::BadRequest(msg) => Response::error(400, &msg),
                        _ => Response::error(400, "malformed request"),
                    };
                    conn.read_buf.clear();
                    self.queue_response(conn, response, true);
                    break;
                }
            }
        }
        true
    }

    fn handle_request(&mut self, conn: &mut Conn, request: &Request) {
        ServiceMetrics::bump(&self.state.metrics.http_requests);
        let close = request.wants_close() || self.state.shutdown.load(Ordering::Acquire);
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/evaluate") => {
                self.handle_compute(conn, request, close, CacheOp::Evaluate)
            }
            ("POST", "/v1/search") => self.handle_compute(conn, request, close, CacheOp::Search),
            ("POST", "/v1/design") => self.handle_design(conn, request),
            ("GET", path) if path.starts_with("/v1/reports/") => {
                let response = self.replay_nonblocking(path);
                self.queue_response(conn, response, close);
            }
            _ => {
                let response = route(request, &self.state);
                self.queue_response(conn, response, close);
            }
        }
    }

    /// `GET /v1/reports/{digest}` without blocking the loop: a digest whose
    /// computation is still in flight reads as not-yet-cached.
    fn replay_nonblocking(&self, path: &str) -> Response {
        let raw = path.trim_start_matches("/v1/reports/");
        let Some(parsed) = bitwave::digest::Digest::parse(raw) else {
            return error_response(&ServeError::BadRequest(format!(
                "`{raw}` is not a 32-hex-char digest"
            )));
        };
        let hex = parsed.to_hex();
        match self.state.cache.try_replay(parsed) {
            Some((body, outcome)) => {
                ServiceMetrics::bump(&self.state.metrics.report_replays);
                Response::json(200, body.as_bytes().to_vec())
                    .with_header("x-bitwave-cache", outcome.as_str())
                    .with_header("x-bitwave-digest", hex)
            }
            None => error_response(&ServeError::NotFound(format!(
                "no cached report for digest `{hex}`"
            ))),
        }
    }

    /// The compute path: normalise → rate-limit → cache probe → dispatch.
    fn handle_compute(&mut self, conn: &mut Conn, request: &Request, close: bool, op: CacheOp) {
        let normalized = EvaluateRequest::from_json(&request.body).and_then(|r| match op {
            CacheOp::Evaluate => r.normalize().and_then(|n| {
                let digest = n.key.digest()?;
                Ok((digest, JobKind::Evaluate(Box::new(n))))
            }),
            CacheOp::Search => r.normalize_search().and_then(|n| {
                let digest = n.key.digest()?;
                Ok((digest, JobKind::Search(Box::new(n))))
            }),
        });
        let (digest, kind) = match normalized {
            Ok(pair) => pair,
            Err(e) => {
                self.queue_response(conn, error_response(&e), close);
                return;
            }
        };
        if let Some(limiter) = &mut self.limiter {
            let now = Instant::now();
            if !limiter.allow(conn.peer, now) {
                let retry = limiter.retry_after_secs(conn.peer, now);
                ServiceMetrics::bump(&self.state.metrics.rate_limited);
                let response = error_response(&ServeError::RateLimited)
                    .with_header("retry-after", retry.to_string());
                self.queue_response(conn, response, close);
                return;
            }
        }
        let hex = digest.to_hex();
        if let Some((body, outcome)) = self.state.cache.probe(op, digest) {
            let response = Response::json(200, body.as_bytes().to_vec())
                .with_header("x-bitwave-cache", outcome.as_str())
                .with_header("x-bitwave-digest", hex);
            self.queue_response(conn, response, close);
            return;
        }
        let waiter = ConnWaiter {
            token: conn.token,
            hex,
            close,
        };
        match self.dispatcher.submit(digest, kind, waiter) {
            Placement::Dispatch(job) => {
                ServiceMetrics::bump(&self.state.metrics.batch_dispatches);
                self.state.jobs.push(job);
                conn.processing = true;
            }
            Placement::Gathered | Placement::Rider => conn.processing = true,
            Placement::Shed => {
                ServiceMetrics::bump(&self.state.metrics.sheds);
                let response =
                    error_response(&ServeError::Overloaded).with_header("retry-after", "1");
                self.queue_response(conn, response, close);
            }
        }
        self.state
            .metrics
            .inflight_depth
            .store(self.dispatcher.inflight() as u64, Ordering::Relaxed);
    }

    /// `POST /v1/design`: a completed sweep replays from the store as one
    /// final NDJSON line; otherwise the connection subscribes to the (new
    /// or already-running) sweep's stream of partial-front frames.  Either
    /// way the response is chunked, `connection: close`, and tagged with
    /// the sweep digest.
    fn handle_design(&mut self, conn: &mut Conn, request: &Request) {
        let config = match crate::design::parse_design(&request.body) {
            Ok(config) => config,
            Err(e) => {
                self.queue_response(conn, error_response(&e), true);
                return;
            }
        };
        let sweep = config.digest().to_hex();
        let mut head = Response::json(200, Vec::new()).with_header("x-bitwave-sweep", &*sweep);
        head.content_type = "application/x-ndjson";
        if let Some(line) = self.state.design.replay(&sweep) {
            conn.write_buf
                .extend_from_slice(&head.serialize_chunked_head(true));
            conn.write_buf
                .extend_from_slice(&chunk_frame(format!("{line}\n").as_bytes()));
            conn.write_buf.extend_from_slice(LAST_CHUNK);
            conn.pending_close = true;
            return;
        }
        DesignHub::ensure_running(&self.state, config, sweep.clone());
        conn.write_buf
            .extend_from_slice(&head.serialize_chunked_head(true));
        // `processing` pauses request parsing and suspends the idle/read
        // deadlines for the lifetime of the stream; the write deadline
        // still drops a subscriber that stops draining frames.
        conn.processing = true;
        self.design_subs.entry(sweep).or_default().push(conn.token);
    }

    /// Fans queued design-sweep events out to their subscriber streams.
    fn drain_design_events(&mut self) {
        for event in self.state.design.drain_events() {
            match event {
                DesignEvent::Frame { sweep, line } => {
                    let Some(tokens) = self.design_subs.get(&sweep).cloned() else {
                        continue; // no subscribers (all died); sweep persists anyway
                    };
                    let frame = chunk_frame(format!("{line}\n").as_bytes());
                    let alive: Vec<usize> = tokens
                        .into_iter()
                        .filter(|&token| self.push_stream_bytes(token, &frame, false))
                        .collect();
                    if alive.is_empty() {
                        self.design_subs.remove(&sweep);
                    } else {
                        self.design_subs.insert(sweep, alive);
                    }
                }
                DesignEvent::Final { sweep, line } => {
                    let Some(tokens) = self.design_subs.remove(&sweep) else {
                        continue;
                    };
                    let mut bytes = chunk_frame(format!("{line}\n").as_bytes());
                    bytes.extend_from_slice(LAST_CHUNK);
                    for token in tokens {
                        self.push_stream_bytes(token, &bytes, true);
                    }
                }
            }
        }
    }

    /// Appends stream bytes to one subscriber and flushes; `finalize` ends
    /// the stream (the connection closes once the buffer drains).  Returns
    /// whether the connection is still alive and subscribed.
    fn push_stream_bytes(&mut self, token: usize, bytes: &[u8], finalize: bool) -> bool {
        let Some(mut conn) = self.conns.remove(&token) else {
            return false;
        };
        conn.write_buf.extend_from_slice(bytes);
        if finalize {
            conn.processing = false;
            conn.pending_close = true;
        }
        let keep = self.flush(&mut conn);
        self.settle(conn, keep);
        keep && !finalize
    }

    fn queue_response(&self, conn: &mut Conn, response: Response, close: bool) {
        if response.status >= 300 {
            ServiceMetrics::bump(&self.state.metrics.http_errors);
        }
        conn.write_buf.extend_from_slice(&response.serialize(close));
        if close {
            conn.pending_close = true;
        }
    }

    /// Fans completed jobs back out to their waiting connections and pushes
    /// gathered follow-up dispatches.
    fn drain_completions(&mut self) {
        for done in self.state.completions.drain() {
            let fan = self.dispatcher.complete(done);
            if let Some(job) = fan.follow_up {
                ServiceMetrics::bump(&self.state.metrics.batch_dispatches);
                self.state.jobs.push(job);
            }
            self.state
                .metrics
                .batch_requests
                .fetch_add(fan.served.len() as u64, Ordering::Relaxed);
            for served in fan.served {
                if served.rider {
                    // Riders shared the dispatch without touching the store;
                    // count them so per-op hits+misses+coalesced keeps
                    // matching request totals.
                    ServiceMetrics::bump(&self.state.metrics.batch_coalesced);
                    self.state.cache.stats(served.op).note_coalesced();
                }
                let ConnWaiter { token, hex, close } = served.waiter;
                let response = match served.result {
                    Ok((body, outcome)) => {
                        let outcome = if served.rider {
                            CacheOutcome::Coalesced
                        } else {
                            outcome
                        };
                        Response::json(200, body.as_bytes().to_vec())
                            .with_header("x-bitwave-cache", outcome.as_str())
                            .with_header("x-bitwave-digest", hex)
                            .with_header("x-bitwave-batch", served.batch_size.to_string())
                    }
                    Err(message) => error_response(&ServeError::Internal(message)),
                };
                let Some(mut conn) = self.conns.remove(&token) else {
                    continue; // connection died while computing
                };
                conn.processing = false;
                self.queue_response(&mut conn, response, close);
                let keep = self.advance(&mut conn) && self.flush(&mut conn);
                self.settle(conn, keep);
            }
            self.state
                .metrics
                .inflight_depth
                .store(self.dispatcher.inflight() as u64, Ordering::Relaxed);
        }
    }

    /// Writes as much of the response buffer as the socket takes; false =
    /// drop the connection (fatal error, or drained with a close pending).
    fn flush(&mut self, conn: &mut Conn) -> bool {
        while conn.write_pending() {
            match io::Write::write(&mut conn.stream, &conn.write_buf[conn.written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.written += n;
                    conn.last_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        conn.write_buf.clear();
        conn.written = 0;
        !conn.pending_close
    }

    fn update_interest(&mut self, conn: &mut Conn) {
        let desired = Interest {
            read: !conn.processing && !conn.pending_close && conn.read_buf.len() < READ_BUF_CAP,
            write: conn.write_pending(),
        };
        if desired != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Enforces idle, read and write deadlines across all connections.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let mut drop_tokens = Vec::new();
        let mut timeout_tokens = Vec::new();
        for (&token, conn) in &self.conns {
            if conn.write_pending() {
                if now >= conn.last_progress + self.deadlines.write {
                    ServiceMetrics::bump(&self.state.metrics.stalled_writer_dropped);
                    drop_tokens.push(token);
                }
            } else if conn.processing {
                // The response is coming; no deadline of its own.
            } else if let Some(start) = conn.request_start {
                if now >= start + self.deadlines.read {
                    timeout_tokens.push(token);
                }
            } else if conn.pending_close {
                // Response drained with close pending: a normal completion,
                // not an idle expiry.
                drop_tokens.push(token);
            } else if now >= conn.last_progress + self.deadlines.idle {
                ServiceMetrics::bump(&self.state.metrics.idle_closed);
                drop_tokens.push(token);
            }
        }
        for token in drop_tokens {
            self.close_conn(token);
        }
        for token in timeout_tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            ServiceMetrics::bump(&self.state.metrics.request_timeout_408);
            conn.read_buf.clear();
            conn.request_start = None;
            self.queue_response(
                &mut conn,
                Response::error(408, "request incomplete; closing"),
                true,
            );
            let keep = self.flush(&mut conn);
            self.settle(conn, keep);
        }
    }
}
