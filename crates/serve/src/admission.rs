//! Per-client admission control: a token bucket keyed by peer address.
//!
//! Each client address holds up to `rate` tokens (a one-second burst) that
//! refill continuously at `rate` tokens per second.  A request spends one
//! token; an empty bucket means the client is over its limit and the event
//! loop answers `429 Too Many Requests` with a `Retry-After` hint instead
//! of admitting the request.  Buckets are pruned once they refill, so the
//! map stays proportional to the set of *currently throttled-or-active*
//! clients, not every address ever seen.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;

/// How many buckets may accumulate before a prune pass runs.
const PRUNE_THRESHOLD: usize = 1024;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

/// Token-bucket rate limiter keyed by client IP.
#[derive(Debug)]
pub(crate) struct RateLimiter {
    /// Tokens per second, also the burst capacity.
    rate: f64,
    buckets: HashMap<IpAddr, Bucket>,
}

impl RateLimiter {
    /// `rate` requests per second per client; a zero rate admits nothing.
    pub(crate) fn new(rate: u32) -> Self {
        Self {
            rate: f64::from(rate),
            buckets: HashMap::new(),
        }
    }

    /// Spends one token for `ip` at time `now`; `false` means throttled.
    pub(crate) fn allow(&mut self, ip: IpAddr, now: Instant) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if self.buckets.len() >= PRUNE_THRESHOLD {
            self.prune(now);
        }
        let bucket = self.buckets.entry(ip).or_insert(Bucket {
            tokens: self.rate,
            refreshed: now,
        });
        let elapsed = now
            .saturating_duration_since(bucket.refreshed)
            .as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.rate);
        bucket.refreshed = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Seconds until `ip` has a token again, rounded up for `Retry-After`.
    pub(crate) fn retry_after_secs(&self, ip: IpAddr, now: Instant) -> u64 {
        if self.rate <= 0.0 {
            return 1;
        }
        let Some(bucket) = self.buckets.get(&ip) else {
            return 1;
        };
        let elapsed = now
            .saturating_duration_since(bucket.refreshed)
            .as_secs_f64();
        let tokens = (bucket.tokens + elapsed * self.rate).min(self.rate);
        if tokens >= 1.0 {
            return 1;
        }
        ((1.0 - tokens) / self.rate).ceil().max(1.0) as u64
    }

    fn prune(&mut self, now: Instant) {
        let rate = self.rate;
        self.buckets.retain(|_, bucket| {
            let elapsed = now
                .saturating_duration_since(bucket.refreshed)
                .as_secs_f64();
            bucket.tokens + elapsed * rate < rate
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_up_to_rate_then_throttles() {
        let mut rl = RateLimiter::new(3);
        let now = Instant::now();
        assert!(rl.allow(ip(1), now));
        assert!(rl.allow(ip(1), now));
        assert!(rl.allow(ip(1), now));
        assert!(!rl.allow(ip(1), now), "fourth request in the burst window");
        assert!(rl.retry_after_secs(ip(1), now) >= 1);
    }

    #[test]
    fn tokens_refill_continuously() {
        let mut rl = RateLimiter::new(2);
        let t0 = Instant::now();
        assert!(rl.allow(ip(1), t0));
        assert!(rl.allow(ip(1), t0));
        assert!(!rl.allow(ip(1), t0));
        // 2 tokens/s: half a second buys one token back.
        assert!(rl.allow(ip(1), t0 + Duration::from_millis(600)));
        assert!(!rl.allow(ip(1), t0 + Duration::from_millis(600)));
    }

    #[test]
    fn clients_are_isolated() {
        let mut rl = RateLimiter::new(1);
        let now = Instant::now();
        assert!(rl.allow(ip(1), now));
        assert!(!rl.allow(ip(1), now));
        assert!(
            rl.allow(ip(2), now),
            "a noisy neighbour must not starve others"
        );
    }

    #[test]
    fn zero_rate_admits_nothing() {
        let mut rl = RateLimiter::new(0);
        let now = Instant::now();
        assert!(!rl.allow(ip(1), now));
        assert_eq!(rl.retry_after_secs(ip(1), now), 1);
    }

    #[test]
    fn full_buckets_are_pruned() {
        let mut rl = RateLimiter::new(4);
        let t0 = Instant::now();
        for i in 0..=255u8 {
            for hi in 0..4u8 {
                let addr = IpAddr::V4(Ipv4Addr::new(10, 9, hi, i));
                rl.allow(addr, t0);
            }
        }
        assert_eq!(rl.buckets.len(), 1024);
        // Everyone refilled by +2s; the next insert prunes them all first.
        assert!(rl.allow(ip(7), t0 + Duration::from_secs(2)));
        assert!(rl.buckets.len() < 8);
    }
}
