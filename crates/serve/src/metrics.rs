//! Service counters and the `GET /metrics` text rendering.
//!
//! The format follows the Prometheus exposition conventions (`# TYPE` lines,
//! `name value` samples) so standard scrapers can read it, including the
//! process-wide tensor deep-copy counter from
//! [`bitwave_tensor::copy_metrics`] — the observable half of the zero-copy
//! invariant `bench_serve` gates on.
//!
//! Store metrics come in two granularities: the original aggregate
//! `bitwave_serve_cache_*` counter families (summed across the evaluate and
//! search ops, for dashboard continuity) and labelled per-op families from
//! the `bitwave-store` substrate — `bitwave_store_{hits,disk_hits,misses,
//! coalesced,evictions,quarantined}_total{op="…"}` counters plus
//! `bitwave_store_{mem,disk}_{entries,bytes}{op="…"}` gauges for the
//! `evaluate`, `search`, `weights` and (process-wide) `dse` ops.
//!
//! Amortized-evaluation counters expose the sweep/DSE reuse machinery:
//! `bitwave_dse_memo_{hits,misses}_total`,
//! `bitwave_sweep_{profile_reuse,space_reuse,factored_repriced}_total`.

use crate::cache::{CacheOp, ReportCache};
use crate::store::ModelStore;
use bitwave_store::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic service-level counters.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// HTTP requests parsed (any endpoint, any status).
    pub http_requests: AtomicU64,
    /// Responses with a non-2xx status.
    pub http_errors: AtomicU64,
    /// Cold pipeline evaluations executed.
    pub evaluations: AtomicU64,
    /// Layers judged memory-bound by the DRAM-tier roofline, summed over
    /// cold evaluations (always 0 unless requests throttle the tier).
    pub memory_bound_layers: AtomicU64,
    /// Connections rejected because the job queue was full.
    pub queue_rejections: AtomicU64,
    /// Report replays served from `GET /v1/reports/{digest}`.
    pub report_replays: AtomicU64,
    /// Cold dataflow searches executed (`POST /v1/search` misses).
    pub searches: AtomicU64,
    /// Compute requests shed with 503 because `max_inflight` digests were
    /// already dispatched.
    pub sheds: AtomicU64,
    /// Requests answered 429 by the per-client token-bucket rate limiter.
    pub rate_limited: AtomicU64,
    /// Jobs pushed to the compute queue (initial dispatches + gathered
    /// follow-ups).
    pub batch_dispatches: AtomicU64,
    /// Requests that rode an in-flight identical dispatch instead of paying
    /// for their own (the cross-request batching win).
    pub batch_coalesced: AtomicU64,
    /// Requests answered through a dispatch fan-out (triggers + riders).
    pub batch_requests: AtomicU64,
    /// Keep-alive connections closed by the idle deadline.
    pub idle_closed: AtomicU64,
    /// Connections answered 408 because a partial request outlived the read
    /// deadline.
    pub request_timeout_408: AtomicU64,
    /// Connections dropped because the client stopped draining a pending
    /// response past the write deadline.
    pub stalled_writer_dropped: AtomicU64,
    /// Currently open client connections (event-loop gauge).
    pub connections_open: AtomicU64,
    /// Distinct digests currently dispatched or gathering (event-loop
    /// gauge).
    pub inflight_depth: AtomicU64,
}

/// Per-tier gauges and per-op counters of one store op, snapshotted for
/// rendering.
struct OpSample<'a> {
    op: &'a str,
    stats: &'a StoreStats,
    mem_entries: u64,
    mem_bytes: u64,
    disk_entries: u64,
    disk_bytes: u64,
}

impl ServiceMetrics {
    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders all counters (service, store, tensor) as Prometheus text.
    pub fn render(&self, cache: &ReportCache, store: &ModelStore) -> String {
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "bitwave_serve_http_requests_total",
            "HTTP requests parsed.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_http_errors_total",
            "Non-2xx responses.",
            self.http_errors.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_evaluations_total",
            "Cold pipeline evaluations executed.",
            self.evaluations.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_memory_bound_layers_total",
            "Layers judged memory-bound by the DRAM-tier roofline in cold evaluations.",
            self.memory_bound_layers.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_queue_rejections_total",
            "Connections rejected because the job queue was full.",
            self.queue_rejections.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_report_replays_total",
            "Reports replayed from GET /v1/reports/{digest}.",
            self.report_replays.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_searches_total",
            "Cold dataflow design-space searches executed.",
            self.searches.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_sheds_total",
            "Compute requests shed with 503 at the max-inflight cap.",
            self.sheds.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_rate_limited_total",
            "Requests answered 429 by the per-client rate limiter.",
            self.rate_limited.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_batch_dispatches_total",
            "Jobs dispatched to the compute queue.",
            self.batch_dispatches.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_batch_coalesced_total",
            "Requests that rode an in-flight identical dispatch.",
            self.batch_coalesced.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_batch_requests_total",
            "Requests answered through dispatch fan-outs.",
            self.batch_requests.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_idle_closed_total",
            "Keep-alive connections closed by the idle deadline.",
            self.idle_closed.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_request_timeout_408_total",
            "Partial requests answered 408 at the read deadline.",
            self.request_timeout_408.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_stalled_writer_dropped_total",
            "Connections dropped for not draining a response by the write deadline.",
            self.stalled_writer_dropped.load(Ordering::Relaxed),
        );

        // Aggregate cache families (evaluate + search), for continuity with
        // pre-store dashboards.  A memory hit and a disk hit both replayed
        // stored bytes, so both count as "hits" here; the per-op families
        // below split them.
        let evaluate = cache.stats(CacheOp::Evaluate);
        let search = cache.stats(CacheOp::Search);
        counter(
            "bitwave_serve_cache_hits_total",
            "Report-cache hits (memory or disk).",
            evaluate.hits() + evaluate.disk_hits() + search.hits() + search.disk_hits(),
        );
        counter(
            "bitwave_serve_cache_misses_total",
            "Report-cache misses (computations).",
            evaluate.misses() + search.misses(),
        );
        counter(
            "bitwave_serve_cache_coalesced_total",
            "Requests coalesced onto an in-flight identical computation.",
            evaluate.coalesced() + search.coalesced(),
        );
        counter(
            "bitwave_serve_cache_evictions_total",
            "Report-cache LRU evictions.",
            evaluate.evictions() + search.evictions(),
        );
        counter(
            "bitwave_serve_weight_generations_total",
            "Synthetic weight-set generations (model-store misses).",
            store.generations(),
        );
        counter(
            "bitwave_tensor_deep_copies_total",
            "Process-wide QuantTensor deep copies (the zero-copy invariant).",
            bitwave_tensor::copy_metrics::deep_copies(),
        );

        // Amortized-evaluation counters: how much work the DSE memo, the
        // sweep's shared workload analyses, the enumeration-space cache and
        // the factored re-pricing path are saving process-wide.
        let dse_stats = bitwave::dse::memo::global_cache().stats();
        counter(
            "bitwave_dse_memo_hits_total",
            "DSE layer-search memo hits (memory or disk), process-wide.",
            dse_stats.hits() + dse_stats.disk_hits(),
        );
        counter(
            "bitwave_dse_memo_misses_total",
            "DSE layer-search memo misses (full searches), process-wide.",
            dse_stats.misses(),
        );
        counter(
            "bitwave_sweep_profile_reuse_total",
            "Sweep portfolio models served from the shared profile cache.",
            bitwave_sweep::profile_reuse_total(),
        );
        counter(
            "bitwave_sweep_space_reuse_total",
            "DSE mapping-space enumerations served from the shared space cache.",
            bitwave::dse::space_reuse_total(),
        );
        counter(
            "bitwave_sweep_factored_repriced_total",
            "Factored layer searches re-priced instead of fully re-searched.",
            bitwave::dse::factored_repriced_total(),
        );
        out.push_str(&format!(
            "# HELP bitwave_serve_cache_entries Ready entries in the report cache.\n\
             # TYPE bitwave_serve_cache_entries gauge\n\
             bitwave_serve_cache_entries {}\n",
            cache.len()
        ));
        out.push_str(&format!(
            "# HELP bitwave_serve_connections_open Currently open client connections.\n\
             # TYPE bitwave_serve_connections_open gauge\n\
             bitwave_serve_connections_open {}\n",
            self.connections_open.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "# HELP bitwave_serve_inflight_depth Distinct digests dispatched or gathering.\n\
             # TYPE bitwave_serve_inflight_depth gauge\n\
             bitwave_serve_inflight_depth {}\n",
            self.inflight_depth.load(Ordering::Relaxed)
        ));

        // Per-op, per-tier store families.
        let dse = bitwave::dse::memo::global_cache();
        let dse_store = dse.store();
        let evaluate_store = cache.store(CacheOp::Evaluate);
        let search_store = cache.store(CacheOp::Search);
        let samples = [
            OpSample {
                op: CacheOp::Evaluate.as_str(),
                stats: evaluate_store.stats(),
                mem_entries: evaluate_store.mem_entries() as u64,
                mem_bytes: evaluate_store.mem_bytes(),
                disk_entries: evaluate_store.disk_entries(),
                disk_bytes: evaluate_store.disk_bytes(),
            },
            OpSample {
                op: CacheOp::Search.as_str(),
                stats: search_store.stats(),
                mem_entries: search_store.mem_entries() as u64,
                mem_bytes: search_store.mem_bytes(),
                disk_entries: search_store.disk_entries(),
                disk_bytes: search_store.disk_bytes(),
            },
            OpSample {
                op: "weights",
                stats: store.stats(),
                mem_entries: store.len() as u64,
                mem_bytes: store.bytes(),
                disk_entries: 0,
                disk_bytes: 0,
            },
            OpSample {
                op: "dse",
                stats: dse.stats(),
                mem_entries: dse.len() as u64,
                mem_bytes: dse.mem_bytes(),
                disk_entries: dse_store.disk_entries(),
                disk_bytes: dse_store.disk_bytes(),
            },
        ];
        let mut family = |name: &str, help: &str, kind: &str, values: &dyn Fn(&OpSample) -> u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for sample in &samples {
                out.push_str(&format!(
                    "{name}{{op=\"{}\"}} {}\n",
                    sample.op,
                    values(sample)
                ));
            }
        };
        family(
            "bitwave_store_hits_total",
            "Memory-tier hits per store op.",
            "counter",
            &|s| s.stats.hits(),
        );
        family(
            "bitwave_store_disk_hits_total",
            "Disk-tier hits (verified, promoted to memory) per store op.",
            "counter",
            &|s| s.stats.disk_hits(),
        );
        family(
            "bitwave_store_misses_total",
            "Full misses (computations) per store op.",
            "counter",
            &|s| s.stats.misses(),
        );
        family(
            "bitwave_store_coalesced_total",
            "Calls coalesced onto an in-flight computation per store op.",
            "counter",
            &|s| s.stats.coalesced(),
        );
        family(
            "bitwave_store_evictions_total",
            "Memory-tier LRU evictions per store op.",
            "counter",
            &|s| s.stats.evictions(),
        );
        family(
            "bitwave_store_quarantined_total",
            "Disk entries quarantined (corrupt/truncated/version-mismatched) per store op.",
            "counter",
            &|s| s.stats.quarantined(),
        );
        family(
            "bitwave_store_disk_write_errors_total",
            "Failed best-effort disk writes per store op (persistence silently degraded).",
            "counter",
            &|s| s.stats.disk_write_errors(),
        );
        family(
            "bitwave_store_mem_entries",
            "Ready memory-tier entries per store op.",
            "gauge",
            &|s| s.mem_entries,
        );
        family(
            "bitwave_store_mem_bytes",
            "Accounted memory-tier bytes per store op.",
            "gauge",
            &|s| s.mem_bytes,
        );
        family(
            "bitwave_store_disk_entries",
            "Disk-tier entries per store op.",
            "gauge",
            &|s| s.disk_entries,
        );
        family(
            "bitwave_store_disk_bytes",
            "Disk-tier bytes (headers included) per store op.",
            "gauge",
            &|s| s.disk_bytes,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_emits_every_counter_family() {
        let metrics = ServiceMetrics::default();
        ServiceMetrics::bump(&metrics.http_requests);
        ServiceMetrics::bump(&metrics.evaluations);
        let cache = ReportCache::new(4);
        cache
            .get_or_compute(
                crate::cache::CacheOp::Evaluate,
                bitwave::digest::Digest::of_bytes(b"m"),
                || Ok("{}".to_string()),
            )
            .unwrap();
        let store = ModelStore::new(2);
        let text = metrics.render(&cache, &store);
        for family in [
            "bitwave_serve_http_requests_total 1",
            "bitwave_serve_http_errors_total 0",
            "bitwave_serve_evaluations_total 1",
            "bitwave_memory_bound_layers_total 0",
            "bitwave_serve_queue_rejections_total 0",
            "bitwave_serve_report_replays_total 0",
            "bitwave_serve_searches_total 0",
            "bitwave_serve_sheds_total 0",
            "bitwave_serve_rate_limited_total 0",
            "bitwave_serve_batch_dispatches_total 0",
            "bitwave_serve_batch_coalesced_total 0",
            "bitwave_serve_batch_requests_total 0",
            "bitwave_serve_idle_closed_total 0",
            "bitwave_serve_request_timeout_408_total 0",
            "bitwave_serve_stalled_writer_dropped_total 0",
            "bitwave_serve_connections_open 0",
            "bitwave_serve_inflight_depth 0",
            "bitwave_serve_cache_hits_total 0",
            "bitwave_serve_cache_misses_total 1",
            "bitwave_serve_cache_coalesced_total 0",
            "bitwave_serve_cache_evictions_total 0",
            "bitwave_serve_weight_generations_total 0",
            "bitwave_serve_cache_entries 1",
            "bitwave_tensor_deep_copies_total",
            "bitwave_dse_memo_hits_total",
            "bitwave_dse_memo_misses_total",
            "bitwave_sweep_profile_reuse_total",
            "bitwave_sweep_space_reuse_total",
            "bitwave_sweep_factored_repriced_total",
            "bitwave_store_hits_total{op=\"evaluate\"} 0",
            "bitwave_store_disk_hits_total{op=\"search\"} 0",
            "bitwave_store_misses_total{op=\"evaluate\"} 1",
            "bitwave_store_coalesced_total{op=\"weights\"} 0",
            "bitwave_store_quarantined_total{op=\"dse\"}",
            "bitwave_store_disk_write_errors_total{op=\"evaluate\"} 0",
            "bitwave_store_mem_entries{op=\"evaluate\"} 1",
            "bitwave_store_mem_bytes{op=\"evaluate\"} 2",
            "bitwave_store_disk_entries{op=\"evaluate\"} 0",
            "bitwave_store_disk_bytes{op=\"search\"} 0",
            "bitwave_store_mem_entries{op=\"weights\"} 0",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        assert!(text.contains("# TYPE bitwave_serve_cache_entries gauge"));
        assert!(text.contains("# TYPE bitwave_serve_connections_open gauge"));
        assert!(text.contains("# TYPE bitwave_serve_inflight_depth gauge"));
        assert!(text.contains("# TYPE bitwave_store_mem_bytes gauge"));
        assert!(text.contains("# TYPE bitwave_store_hits_total counter"));
    }
}
