//! Service counters and the `GET /metrics` text rendering.
//!
//! The format follows the Prometheus exposition conventions (`# TYPE` lines,
//! `name value` samples) so standard scrapers can read it, including the
//! process-wide tensor deep-copy counter from
//! [`bitwave_tensor::copy_metrics`] — the observable half of the zero-copy
//! invariant `bench_serve` gates on.

use crate::cache::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic service-level counters.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// HTTP requests parsed (any endpoint, any status).
    pub http_requests: AtomicU64,
    /// Responses with a non-2xx status.
    pub http_errors: AtomicU64,
    /// Cold pipeline evaluations executed.
    pub evaluations: AtomicU64,
    /// Connections rejected because the job queue was full.
    pub queue_rejections: AtomicU64,
    /// Report replays served from `GET /v1/reports/{digest}`.
    pub report_replays: AtomicU64,
    /// Cold dataflow searches executed (`POST /v1/search` misses).
    pub searches: AtomicU64,
}

impl ServiceMetrics {
    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders all counters (service, cache, tensor) as Prometheus text.
    pub fn render(&self, cache: &CacheStats, cache_len: usize, weight_generations: u64) -> String {
        let mut out = String::with_capacity(1024);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "bitwave_serve_http_requests_total",
            "HTTP requests parsed.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_http_errors_total",
            "Non-2xx responses.",
            self.http_errors.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_evaluations_total",
            "Cold pipeline evaluations executed.",
            self.evaluations.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_queue_rejections_total",
            "Connections rejected because the job queue was full.",
            self.queue_rejections.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_report_replays_total",
            "Reports replayed from GET /v1/reports/{digest}.",
            self.report_replays.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_searches_total",
            "Cold dataflow design-space searches executed.",
            self.searches.load(Ordering::Relaxed),
        );
        counter(
            "bitwave_serve_cache_hits_total",
            "Report-cache hits.",
            cache.hits(),
        );
        counter(
            "bitwave_serve_cache_misses_total",
            "Report-cache misses (computations).",
            cache.misses(),
        );
        counter(
            "bitwave_serve_cache_coalesced_total",
            "Requests coalesced onto an in-flight identical computation.",
            cache.coalesced(),
        );
        counter(
            "bitwave_serve_cache_evictions_total",
            "Report-cache LRU evictions.",
            cache.evictions(),
        );
        counter(
            "bitwave_serve_weight_generations_total",
            "Synthetic weight-set generations (model-store misses).",
            weight_generations,
        );
        counter(
            "bitwave_tensor_deep_copies_total",
            "Process-wide QuantTensor deep copies (the zero-copy invariant).",
            bitwave_tensor::copy_metrics::deep_copies(),
        );
        out.push_str(&format!(
            "# HELP bitwave_serve_cache_entries Ready entries in the report cache.\n\
             # TYPE bitwave_serve_cache_entries gauge\n\
             bitwave_serve_cache_entries {cache_len}\n"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_emits_every_counter_family() {
        let metrics = ServiceMetrics::default();
        ServiceMetrics::bump(&metrics.http_requests);
        ServiceMetrics::bump(&metrics.evaluations);
        let cache = CacheStats::default();
        let text = metrics.render(&cache, 3, 2);
        for family in [
            "bitwave_serve_http_requests_total 1",
            "bitwave_serve_http_errors_total 0",
            "bitwave_serve_evaluations_total 1",
            "bitwave_serve_queue_rejections_total 0",
            "bitwave_serve_report_replays_total 0",
            "bitwave_serve_searches_total 0",
            "bitwave_serve_cache_hits_total 0",
            "bitwave_serve_cache_misses_total 0",
            "bitwave_serve_cache_coalesced_total 0",
            "bitwave_serve_cache_evictions_total 0",
            "bitwave_serve_weight_generations_total 2",
            "bitwave_serve_cache_entries 3",
            "bitwave_tensor_deep_copies_total",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        assert!(text.contains("# TYPE bitwave_serve_cache_entries gauge"));
    }
}
