//! Shared model-weight store, on the `bitwave-store` memory tier.
//!
//! Synthetic weight generation is the most expensive part of a cold
//! evaluation after the pipeline itself, and its output — a
//! [`NetworkWeights`] set of `Arc`-backed
//! [`bitwave_tensor::WeightHandle`]s — is immutable.  The store memoises one
//! weight set per `(model, seed, sample_cap)` digest and hands out `Arc`
//! clones, so every in-flight request evaluating the same model shares the
//! same tensor allocations with **zero deep copies**
//! (`bitwave_tensor::copy_metrics` counts none for planning + dispatch;
//! `bench_serve` gates on it).
//!
//! This tier is deliberately **memory-only**: weights are cheap to
//! regenerate deterministically and large on disk, so persistence buys
//! nothing.  The [`MemoryTier`] substrate still upgrades the old
//! hand-rolled LRU: lookups are single-flight (two concurrent requests for
//! one model run **one** generation instead of racing), eviction is
//! LRU with byte accounting, and evicting a weight set only drops the
//! store's reference — requests still holding the `Arc` keep the tensors
//! alive.

use bitwave::digest::Digest;
use bitwave_dnn::models::NetworkSpec;
use bitwave_dnn::weights::NetworkWeights;
use bitwave_store::{FillOrigin, MemoryTier, MemoryTierConfig, StoreStats};
use serde::Serialize;
use std::sync::Arc;

/// Key of one generated weight set (digested for the tier).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
struct WeightsKey {
    model: String,
    seed: u64,
    sample_cap: usize,
}

/// Bounded single-flight LRU store of shared, immutable weight sets.
#[derive(Debug)]
pub struct ModelStore {
    tier: MemoryTier<NetworkWeights>,
}

impl ModelStore {
    /// Creates a store bounded to `capacity` weight sets (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            tier: MemoryTier::new(MemoryTierConfig::entries(capacity)),
        }
    }

    /// Number of weight-set generations performed (i.e. store misses).
    pub fn generations(&self) -> u64 {
        self.tier.stats().misses()
    }

    /// The tier's counters (hits/misses/coalesced/evictions).
    pub fn stats(&self) -> &StoreStats {
        self.tier.stats()
    }

    /// Number of weight sets currently held.
    pub fn len(&self) -> usize {
        self.tier.len()
    }

    /// True when the store holds no weight sets.
    pub fn is_empty(&self) -> bool {
        self.tier.is_empty()
    }

    /// Accounted bytes of the held weight sets (one byte per Int8 weight
    /// element — the tensor payload, not allocator overhead).
    pub fn bytes(&self) -> u64 {
        self.tier.bytes()
    }

    /// The shared weight set for `(spec, seed, sample_cap)`, generating it
    /// on first use.  Generation happens outside the store locks and is
    /// single-flight: concurrent requests for the same key wait for one
    /// generation and share its `Arc`.
    pub fn weights(&self, spec: &NetworkSpec, seed: u64, sample_cap: usize) -> Arc<NetworkWeights> {
        let key = WeightsKey {
            model: spec.name.clone(),
            seed,
            sample_cap,
        };
        let digest = Digest::of_value(&key)
            .unwrap_or_else(|_| Digest::of_bytes(format!("{key:?}").as_bytes()));
        let generated = self.tier.get_or_fill(
            digest,
            || {
                let weights = NetworkWeights::generate_sampled(spec, seed, sample_cap);
                let bytes = weights.total_elements() as u64;
                Ok::<_, String>((weights, bytes, FillOrigin::Computed))
            },
            |e| e,
        );
        match generated {
            Ok((weights, _)) => weights,
            // Only reachable when the generating caller panicked; fall back
            // to an inline generation (deterministic, so bit-identical).
            Err(_) => Arc::new(NetworkWeights::generate_sampled(spec, seed, sample_cap)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_dnn::models::resnet18;
    use bitwave_tensor::copy_metrics::{exclusive, CopyCounter};

    #[test]
    fn repeated_lookups_share_one_generation_and_allocation() {
        let store = ModelStore::new(4);
        let net = resnet18();
        let a = store.weights(&net, 42, 2_000);
        let _guard = exclusive();
        let counter = CopyCounter::snapshot();
        let b = store.weights(&net, 42, 2_000);
        assert_eq!(counter.delta(), 0, "store hit must not copy tensors");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.generations(), 1);
        // A different knob generates a distinct set.
        let c = store.weights(&net, 43, 2_000);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.generations(), 2);
        assert_eq!(store.len(), 2);
        assert!(store.bytes() > 0, "weight sets must account their bytes");
    }

    #[test]
    fn eviction_bounds_the_store_but_outstanding_arcs_survive() {
        let store = ModelStore::new(1);
        let net = resnet18();
        let first = store.weights(&net, 1, 1_000);
        let _second = store.weights(&net, 2, 1_000);
        assert_eq!(store.len(), 1, "capacity 1 must evict the older set");
        // The evicted set is still usable through the outstanding Arc.
        assert!(first.layer("conv1").is_some());
        // Re-requesting the evicted key regenerates.
        let again = store.weights(&net, 1, 1_000);
        assert_eq!(store.generations(), 3);
        assert_eq!(*again, *first, "regeneration is deterministic");
    }

    #[test]
    fn concurrent_lookups_of_one_model_generate_once() {
        let store = Arc::new(ModelStore::new(4));
        let net = Arc::new(resnet18());
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let store = Arc::clone(&store);
                let net = Arc::clone(&net);
                std::thread::spawn(move || store.weights(&net, 7, 1_500))
            })
            .collect();
        let sets: Vec<Arc<NetworkWeights>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            store.generations(),
            1,
            "single-flight: concurrent misses must share one generation"
        );
        assert!(sets.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }
}
