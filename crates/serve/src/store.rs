//! Shared model-weight store.
//!
//! Synthetic weight generation is the most expensive part of a cold
//! evaluation after the pipeline itself, and its output — a
//! [`NetworkWeights`] set of `Arc`-backed
//! [`bitwave_tensor::WeightHandle`]s — is immutable.  The store memoises one
//! weight set per `(model, seed, sample_cap)` and hands out `Arc` clones, so
//! every in-flight request evaluating the same model shares the same tensor
//! allocations with **zero deep copies** (`bitwave_tensor::copy_metrics`
//! counts none for planning + dispatch; `bench_serve` gates on it).
//!
//! Like the report cache, the store is bounded LRU: evicting a weight set
//! only drops the store's reference — requests still holding the `Arc` keep
//! the tensors alive.

use bitwave_dnn::models::NetworkSpec;
use bitwave_dnn::weights::NetworkWeights;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key of one generated weight set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WeightsKey {
    model: String,
    seed: u64,
    sample_cap: usize,
}

/// Bounded LRU store of shared, immutable weight sets.
#[derive(Debug)]
pub struct ModelStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
    generations: AtomicU64,
}

#[derive(Debug)]
struct StoreInner {
    map: HashMap<WeightsKey, Arc<NetworkWeights>>,
    order: Vec<WeightsKey>,
}

impl ModelStore {
    /// Creates a store bounded to `capacity` weight sets (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            capacity: capacity.max(1),
            generations: AtomicU64::new(0),
        }
    }

    /// Number of weight-set generations performed (i.e. store misses).
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// Number of weight sets currently held.
    pub fn len(&self) -> usize {
        self.lock().order.len()
    }

    /// True when the store holds no weight sets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The shared weight set for `(spec, seed, sample_cap)`, generating it on
    /// first use.  Generation happens outside the store lock, so a large
    /// model being generated does not block other lookups; two racers may
    /// both generate, in which case the first insert wins and the loser's
    /// set is dropped (both are bit-identical by construction).
    pub fn weights(&self, spec: &NetworkSpec, seed: u64, sample_cap: usize) -> Arc<NetworkWeights> {
        let key = WeightsKey {
            model: spec.name.clone(),
            seed,
            sample_cap,
        };
        {
            let mut inner = self.lock();
            if let Some(weights) = inner.map.get(&key) {
                let weights = Arc::clone(weights);
                Self::touch(&mut inner, &key);
                return weights;
            }
        }
        let generated = Arc::new(NetworkWeights::generate_sampled(spec, seed, sample_cap));
        self.generations.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        if let Some(existing) = inner.map.get(&key) {
            return Arc::clone(existing);
        }
        inner.map.insert(key.clone(), Arc::clone(&generated));
        inner.order.push(key);
        while inner.order.len() > self.capacity {
            let victim = inner.order.remove(0);
            inner.map.remove(&victim);
        }
        generated
    }

    fn touch(inner: &mut StoreInner, key: &WeightsKey) {
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            let k = inner.order.remove(pos);
            inner.order.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_dnn::models::resnet18;
    use bitwave_tensor::copy_metrics::{exclusive, CopyCounter};

    #[test]
    fn repeated_lookups_share_one_generation_and_allocation() {
        let store = ModelStore::new(4);
        let net = resnet18();
        let a = store.weights(&net, 42, 2_000);
        let _guard = exclusive();
        let counter = CopyCounter::snapshot();
        let b = store.weights(&net, 42, 2_000);
        assert_eq!(counter.delta(), 0, "store hit must not copy tensors");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.generations(), 1);
        // A different knob generates a distinct set.
        let c = store.weights(&net, 43, 2_000);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.generations(), 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn eviction_bounds_the_store_but_outstanding_arcs_survive() {
        let store = ModelStore::new(1);
        let net = resnet18();
        let first = store.weights(&net, 1, 1_000);
        let _second = store.weights(&net, 2, 1_000);
        assert_eq!(store.len(), 1, "capacity 1 must evict the older set");
        // The evicted set is still usable through the outstanding Arc.
        assert!(first.layer("conv1").is_some());
        // Re-requesting the evicted key regenerates.
        let again = store.weights(&net, 1, 1_000);
        assert_eq!(store.generations(), 3);
        assert_eq!(*again, *first, "regeneration is deterministic");
    }
}
