//! The `serve` binary: runs the BitWave evaluation service.
//!
//! ```bash
//! cargo run --release --bin serve -- --addr 127.0.0.1:8787 --workers 4
//! ```
//!
//! The first stdout line is always `listening on http://<addr>` (with the
//! resolved port when `--addr` used port 0), so scripts can scrape the
//! address of an ephemeral-port instance.

use bitwave_serve::server::{start, ServeConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--workers N] \
                     [--queue-capacity N] [--cache-capacity N] [--store-capacity N] \
                     [--store-root DIR] [--max-inflight N] [--rate-limit N] \
                     [--no-batching]\n\
                     \n\
                     Serves the BitWave evaluation API (see crates/serve).  \
                     --addr defaults to 127.0.0.1:0 (ephemeral port; the bound \
                     address is printed on the first stdout line).  --store-root \
                     (or the BITWAVE_STORE_ROOT environment variable) enables the \
                     persistent tiered cache: evaluate/search responses and DSE \
                     layer searches survive restarts under DIR and replay \
                     byte-identically with X-Bitwave-Cache: disk.  \
                     --queue-capacity caps open connections (overflow → 503), \
                     --max-inflight caps dispatched computations (excess → 503 + \
                     Retry-After), --rate-limit sets a per-client token-bucket \
                     budget in compute requests/second (over-budget → 429 + \
                     Retry-After; off by default), and --no-batching disables \
                     cross-request batching of compatible in-flight requests.";

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    // The flag (below) overrides the environment.
    if let Ok(root) = std::env::var("BITWAVE_STORE_ROOT") {
        if !root.trim().is_empty() {
            config.store_root = Some(root);
        }
    }
    let mut i = 0usize;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        if flag == "--no-batching" {
            config.batching = false;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}\n{USAGE}"))?;
        let parse_usize = || {
            value
                .parse::<usize>()
                .map_err(|_| format!("{flag} expects a positive integer, got `{value}`"))
        };
        match flag {
            "--addr" => config.addr = value.clone(),
            "--workers" => config.workers = parse_usize()?.max(1),
            "--queue-capacity" => config.queue_capacity = parse_usize()?.max(1),
            "--cache-capacity" => config.cache_capacity = parse_usize()?.max(1),
            "--store-capacity" => config.store_capacity = parse_usize()?.max(1),
            "--store-root" => config.store_root = Some(value.clone()),
            "--max-inflight" => config.max_inflight = parse_usize()?.max(1),
            "--rate-limit" => {
                let rate = value
                    .parse::<u32>()
                    .map_err(|_| format!("{flag} expects a positive integer, got `{value}`"))?;
                config.rate_limit = Some(rate.max(1));
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        i += 2;
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let workers = config.workers;
    let store_root = config.store_root.clone();
    let handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{}", handle.local_addr());
    println!(
        "workers: {workers}   store: {}   endpoints: POST /v1/evaluate, POST /v1/search, \
         GET /v1/reports/{{digest}}, GET /v1/models, GET /v1/accelerators, GET /healthz, \
         GET /metrics",
        store_root.as_deref().unwrap_or("memory-only")
    );
    // Serve until killed; the acceptor/worker threads do all the work.
    loop {
        std::thread::park();
    }
}
