//! Dependency-free readiness polling for the event loop.
//!
//! Two interchangeable backends behind one [`Poller`] API:
//!
//! * **epoll** (Linux, the default there): one `epoll_create1` instance;
//!   `register`/`modify`/`deregister` map to `EPOLL_CTL_{ADD,MOD,DEL}` and
//!   `wait` to `epoll_wait`.  O(ready) per wake-up.
//! * **poll(2)** (POSIX fallback, also selectable on Linux so both backends
//!   stay tested): registrations live in a `Vec` and `wait` rebuilds the
//!   `pollfd` array each call.  O(registered) per wake-up — fine for the
//!   fallback.
//!
//! The raw syscall declarations live in the `sys` module, the only place in
//! the crate allowed to use `unsafe` (the crate denies it everywhere else).
//! File descriptors are borrowed as [`RawFd`]s; callers keep ownership and
//! must deregister (or close) before dropping the resource.
//!
//! [`Waker`] is the cross-thread wake-up primitive: a nonblocking
//! `UnixStream` pair whose read end is registered like any socket.  Workers
//! call [`Waker::wake`] after publishing completions; the loop drains the
//! stream on readiness.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable (or peer hang-up).
    pub read: bool,
    /// Wake on writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Self = Self {
        read: true,
        write: false,
    };

    /// Read + write interest.
    pub const READ_WRITE: Self = Self {
        read: true,
        write: true,
    };

    /// Write-only interest.
    pub const WRITE: Self = Self {
        read: false,
        write: true,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: usize,
    /// The descriptor is readable (or has buffered unread data).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// Error or hang-up condition; the connection should be torn down
    /// after draining what remains readable.
    pub hangup: bool,
}

/// The raw syscall surface — the one `unsafe` island of the crate.
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_short, c_ulong};
    use std::io;
    use std::os::fd::RawFd;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// `poll(2)` over a mutable pollfd slice; returns the ready count.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs for the duration of the call, and
        // `nfds` matches its length.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    #[cfg(target_os = "linux")]
    pub use epoll::*;

    #[cfg(target_os = "linux")]
    mod epoll {
        use std::ffi::c_int;
        use std::io;
        use std::os::fd::{FromRawFd, OwnedFd, RawFd};

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;

        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;

        const EPOLL_CLOEXEC: c_int = 0o2000000;

        // The kernel ABI packs epoll_event on x86 so the 64-bit data field
        // sits at offset 4; other architectures use natural alignment.
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
        #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        /// Creates a close-on-exec epoll instance.
        pub fn create() -> io::Result<OwnedFd> {
            // SAFETY: epoll_create1 takes no pointers; a non-negative
            // return is a freshly created fd this process owns.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `fd` was just returned by epoll_create1 and is owned
            // by nobody else; OwnedFd closes it exactly once.
            Ok(unsafe { OwnedFd::from_raw_fd(fd) })
        }

        /// One `epoll_ctl` operation; `event` may be None for DEL.
        pub fn ctl(epfd: RawFd, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent on
            // this stack frame for the duration of the call.
            if unsafe { epoll_ctl(epfd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// `epoll_wait` into `buf`; returns the ready count.
        pub fn wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
            // SAFETY: `buf` is a valid exclusively borrowed slice and
            // `maxevents` matches its length.
            let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(n as usize)
        }
    }

    /// `pollfd` event mask for an [`super::Interest`].
    pub fn poll_events(read: bool, write: bool) -> c_short {
        let mut events = 0;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        events
    }

    /// A registration row of the poll(2) backend.
    #[derive(Debug, Clone, Copy)]
    pub struct PollRegistration {
        pub fd: RawFd,
        pub token: usize,
        pub events: c_short,
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: std::os::fd::OwnedFd,
        buf: Vec<sys::EpollEvent>,
    },
    Poll {
        registrations: Vec<sys::PollRegistration>,
    },
}

/// Readiness poller over raw file descriptors, keyed by caller tokens.
pub struct Poller {
    backend: Backend,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        };
        f.debug_struct("Poller").field("backend", &name).finish()
    }
}

/// Milliseconds for the backend timeout argument: `None` blocks forever.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100 µs deadline does not busy-spin at 0 ms.
        Some(t) => {
            let mut ms = t.as_millis();
            if u128::from(t.subsec_nanos()) % 1_000_000 != 0 {
                ms += 1;
            }
            ms.min(i32::MAX as u128) as i32
        }
    }
}

impl Poller {
    /// The platform-preferred backend: epoll on Linux, poll(2) elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (the poll backend cannot fail to
    /// construct).
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            Ok(Self {
                backend: Backend::Epoll {
                    epfd: sys::create()?,
                    buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
                },
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Self::poll_backend())
        }
    }

    /// The portable poll(2) backend, selectable on any platform (tests run
    /// it on Linux so the fallback cannot rot).
    pub fn poll_backend() -> Self {
        Self {
            backend: Backend::Poll {
                registrations: Vec::new(),
            },
        }
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. double registration).
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => sys::ctl(
                epfd.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                fd,
                Some(sys::EpollEvent {
                    events: epoll_mask(interest),
                    data: token as u64,
                }),
            ),
            Backend::Poll { registrations } => {
                registrations.push(sys::PollRegistration {
                    fd,
                    token,
                    events: sys::poll_events(interest.read, interest.write),
                });
                Ok(())
            }
        }
    }

    /// Updates the interest (and token) of a registered descriptor.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure; the poll backend errors only when
    /// `fd` was never registered.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => sys::ctl(
                epfd.as_raw_fd(),
                sys::EPOLL_CTL_MOD,
                fd,
                Some(sys::EpollEvent {
                    events: epoll_mask(interest),
                    data: token as u64,
                }),
            ),
            Backend::Poll { registrations } => {
                let row = registrations
                    .iter_mut()
                    .find(|r| r.fd == fd)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
                row.token = token;
                row.events = sys::poll_events(interest.read, interest.write);
                Ok(())
            }
        }
    }

    /// Removes a registration.  Best-effort on the epoll backend: a
    /// descriptor already closed by the kernel is not an error.
    pub fn deregister(&mut self, fd: RawFd) {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let _ = sys::ctl(epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, None);
            }
            Backend::Poll { registrations } => {
                registrations.retain(|r| r.fd != fd);
            }
        }
    }

    /// Blocks until readiness or `timeout`, appending events to `events`
    /// (cleared first).  A timeout expiry returns with no events.
    ///
    /// # Errors
    ///
    /// Propagates backend failures; `EINTR` is swallowed (returns empty).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let ms = timeout_ms(timeout);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf } => {
                let n = match sys::wait(epfd.as_raw_fd(), buf, ms) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                for raw in &buf[..n] {
                    let mask = raw.events;
                    events.push(Event {
                        token: raw.data as usize,
                        readable: mask & sys::EPOLLIN != 0,
                        writable: mask & sys::EPOLLOUT != 0,
                        hangup: mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { registrations } => {
                let mut fds: Vec<sys::PollFd> = registrations
                    .iter()
                    .map(|r| sys::PollFd {
                        fd: r.fd,
                        events: r.events,
                        revents: 0,
                    })
                    .collect();
                let n = match sys::poll_fds(&mut fds, ms) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                if n > 0 {
                    for (row, polled) in registrations.iter().zip(&fds) {
                        let revents = polled.revents;
                        if revents == 0 {
                            continue;
                        }
                        events.push(Event {
                            token: row.token,
                            readable: revents & sys::POLLIN != 0,
                            writable: revents & sys::POLLOUT != 0,
                            hangup: revents & (sys::POLLERR | sys::POLLHUP) != 0,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = 0;
    if interest.read {
        mask |= sys::EPOLLIN;
    }
    if interest.write {
        mask |= sys::EPOLLOUT;
    }
    mask
}

/// Write end of the loop's wake-up channel; clone one per worker thread.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Creates the wake-up pair: the [`Waker`] for producer threads and the
    /// read end the event loop registers with its poller.
    ///
    /// # Errors
    ///
    /// Propagates socketpair creation failure.
    pub fn pair() -> io::Result<(Self, WakeReader)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Self { tx }, WakeReader { rx }))
    }

    /// Signals the loop.  A full pipe means a wake-up is already queued, so
    /// `WouldBlock` (like every other failure here) is ignorable.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1]);
    }

    /// A second handle to the same channel.
    ///
    /// # Errors
    ///
    /// Propagates descriptor duplication failure.
    pub fn try_clone(&self) -> io::Result<Self> {
        Ok(Self {
            tx: self.tx.try_clone()?,
        })
    }
}

/// Read end of the wake-up channel; lives inside the event loop.
#[derive(Debug)]
pub struct WakeReader {
    rx: UnixStream,
}

impl WakeReader {
    /// The descriptor to register with the poller (read interest).
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes all queued wake-up bytes so the next poll blocks again.
    pub fn drain(&mut self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Poller> {
        let mut backends = vec![Poller::poll_backend()];
        if cfg!(target_os = "linux") {
            backends.push(Poller::new().expect("epoll backend"));
        }
        backends
    }

    #[test]
    fn readiness_round_trip_on_every_backend() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            listener.set_nonblocking(true).unwrap();
            poller
                .register(listener.as_raw_fd(), 1, Interest::READ)
                .unwrap();

            let mut events = Vec::new();
            // Nothing pending: a short wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?} must time out empty");

            let mut client = TcpStream::connect(addr).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "{poller:?} must report the listener readable: {events:?}"
            );
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();
            poller
                .register(server_side.as_raw_fd(), 2, Interest::READ_WRITE)
                .unwrap();
            client.write_all(b"ping").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            let event = events
                .iter()
                .find(|e| e.token == 2)
                .unwrap_or_else(|| panic!("{poller:?} must report the connection: {events:?}"));
            assert!(event.readable && event.writable);

            // Narrow interest to write-only: pending bytes no longer wake
            // the read side.
            poller
                .modify(server_side.as_raw_fd(), 2, Interest::WRITE)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            let event = events.iter().find(|e| e.token == 2).unwrap();
            assert!(event.writable && !event.readable, "{poller:?}: {events:?}");

            let mut buf = [0u8; 4];
            let mut server_side_ref = &server_side;
            server_side_ref.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"ping");
            poller.deregister(server_side.as_raw_fd());
            poller.deregister(listener.as_raw_fd());
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?} deregister must silence");
        }
    }

    #[test]
    fn hangup_is_reported() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();
            poller
                .register(server_side.as_raw_fd(), 7, Interest::READ)
                .unwrap();
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            let event = events
                .iter()
                .find(|e| e.token == 7)
                .unwrap_or_else(|| panic!("{poller:?} must report the closed peer"));
            // A clean TCP FIN surfaces as readable-EOF; an abortive close
            // as hangup.  Either wakes the loop, which then reads 0 bytes.
            assert!(event.readable || event.hangup, "{poller:?}: {events:?}");
            poller.deregister(server_side.as_raw_fd());
        }
    }

    #[test]
    fn waker_wakes_a_registered_poller_across_threads() {
        for mut poller in backends() {
            let (waker, mut reader) = Waker::pair().unwrap();
            poller.register(reader.raw_fd(), 0, Interest::READ).unwrap();
            let remote = waker.try_clone().unwrap();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                remote.wake();
            });
            let mut events = Vec::new();
            let t0 = std::time::Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 0 && e.readable),
                "{poller:?} must wake on the waker: {events:?}"
            );
            assert!(t0.elapsed() < Duration::from_secs(2));
            reader.drain();
            handle.join().unwrap();
            // Drained: the next wait times out quietly.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?} drain must clear the wake");
        }
    }

    #[test]
    fn timeout_rounding_never_spins_at_zero() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_ms(Some(Duration::from_secs(100_000_000))), i32::MAX);
    }
}
