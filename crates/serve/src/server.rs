//! The service runtime: poll-driven event loop, compute worker pool and
//! request routing.
//!
//! One `serve-loop` thread owns the listener and every client socket
//! (non-blocking, registered with [`crate::poller::Poller`] — epoll on
//! Linux, `poll(2)` elsewhere) and runs the readiness state machine in
//! [`crate::event_loop`]: incremental parsing, inline answers for cheap
//! endpoints and cache hits, and centrally-enforced idle/read/write
//! deadlines, so thousands of mostly-idle keep-alive connections cost
//! buffers instead of threads.  Admission control lives on the same thread:
//! a connection cap (overflow → best-effort non-blocking `503`), an optional
//! per-client token-bucket rate limit (`429` + `Retry-After`) and a
//! `max_inflight` cap on dispatched computations (`503` + `Retry-After`).
//!
//! Cache-missing evaluate/search requests become [`crate::batch`] jobs on a
//! queue drained by `workers` compute threads.  In-flight identical digests
//! coalesce (riders), and distinct requests over one `(model, seed,
//! sample_cap)` weight set gather behind the executing batch and dispatch
//! together, sharing the [`ModelStore`]'s `Arc`-backed tensors — the
//! `X-Bitwave-Batch` response header carries each dispatch's fan-out size.
//! Results land in the single-flight [`ReportCache`] keyed by request
//! digest — a tiered `bitwave-store`, so configuring
//! [`ServeConfig::store_root`] makes cached responses (and the DSE memo
//! cache) survive restarts and replay byte-identically from disk.

use crate::api::{
    list_accelerators, list_models, EvaluateRequest, NormalizedRequest, NormalizedSearch,
};
use crate::batch::{Completions, EntryDone, JobDone, JobEntry, JobKind, JobQueue};
use crate::cache::{CacheOp, ReportCache};
use crate::error::ServeError;
use crate::event_loop::EventLoop;
use crate::http::{Request, Response};
use crate::metrics::ServiceMetrics;
use crate::poller::Waker;
use crate::store::ModelStore;
use bitwave::digest::Digest;
use bitwave_store::StoreConfig;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Compute worker threads (pipeline evaluations and searches).
    pub workers: usize,
    /// Maximum open client connections (overflow → best-effort `503`).
    pub queue_capacity: usize,
    /// Report-cache capacity in entries (per op: evaluate and search each
    /// get this many).
    pub cache_capacity: usize,
    /// Weight-store capacity in generated weight sets.
    pub store_capacity: usize,
    /// Root directory of the persistent store; `None` (default) keeps this
    /// service's report cache memory-only.  With a root, evaluate/search
    /// responses and DSE layer searches persist under
    /// `<root>/{evaluate,search,dse}/<digest>` and replay byte-identically
    /// across restarts.
    ///
    /// Note: the DSE memo cache is process-wide, and attaching it to a root
    /// lasts for the process lifetime (a later memory-only `start()` in the
    /// same process does not detach it).  That is safe — memo entries are
    /// content-addressed by the full search inputs, so any replay is correct
    /// — but processes that juggle several roots share one `dse/` tier, the
    /// most recently attached.
    pub store_root: Option<String>,
    /// Maximum distinct cache-missing computations dispatched or gathering
    /// at once; further compute requests shed with `503` + `Retry-After`.
    /// Riders on an in-flight identical request are always admitted.
    pub max_inflight: usize,
    /// Per-client (peer IP) request budget in compute requests per second,
    /// enforced as a token bucket with a one-second burst; `None` (default)
    /// disables rate limiting.  Over-budget requests answer `429` with
    /// `Retry-After`.
    pub rate_limit: Option<u32>,
    /// Cross-request batching: identical in-flight digests coalesce, and
    /// distinct requests over one `(model, seed, sample_cap)` weight set
    /// dispatch as one job.  `false` reproduces the slot-per-request cost
    /// model (the `bench_serve` unbatched baseline).
    pub batching: bool,
    /// Idle keep-alive connections close after this long (counted in
    /// `bitwave_serve_idle_closed_total`).
    pub keep_alive_idle: std::time::Duration,
    /// A started-but-incomplete request must finish within this, else the
    /// connection is answered `408` and closed.
    pub read_timeout: std::time::Duration,
    /// A peer that accepts no response byte for this long is dropped.
    pub write_timeout: std::time::Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map_or(2, |n| n.get())
                .clamp(2, 8),
            queue_capacity: 128,
            cache_capacity: 256,
            store_capacity: 8,
            store_root: None,
            max_inflight: 64,
            rate_limit: None,
            batching: true,
            keep_alive_idle: crate::event_loop::KEEP_ALIVE_IDLE,
            read_timeout: crate::event_loop::READ_TIMEOUT,
            write_timeout: crate::event_loop::WRITE_TIMEOUT,
        }
    }
}

/// Shared state of one running service.
#[derive(Debug)]
pub struct ServiceState {
    /// The resolved configuration.
    pub config: ServeConfig,
    /// Content-addressed report cache.
    pub cache: ReportCache,
    /// Shared weight store.
    pub store: ModelStore,
    /// Service counters.
    pub metrics: ServiceMetrics,
    pub(crate) shutdown: AtomicBool,
    pub(crate) jobs: JobQueue,
    pub(crate) completions: Completions,
    pub(crate) waker: Waker,
    pub(crate) design: crate::design::DesignHub,
}

/// Handle to a running service; dropping it does **not** stop the service —
/// call [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    state: Arc<ServiceState>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service state (cache/store/metrics introspection).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Stops the event loop and workers and joins them.  The waker unblocks
    /// the loop immediately — no network round-trip, no timeout wait — so
    /// shutdown completes in milliseconds even with idle connections open.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.waker.wake();
        self.state.jobs.notify_all();
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        for worker in self.workers.drain(..) {
            self.state.jobs.notify_all();
            let _ = worker.join();
        }
    }
}

/// Binds, spawns the event loop + compute workers, and returns the handle.
///
/// # Errors
///
/// Returns [`ServeError::Internal`] when the listener cannot bind or the
/// poller/waker cannot be created.
pub fn start(config: ServeConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Internal(format!("bind {}: {e}", config.addr)))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| ServeError::Internal(format!("local_addr: {e}")))?;
    let workers = config.workers.max(1);
    let mut store_config = StoreConfig::default().with_mem_entries(config.cache_capacity);
    if let Some(root) = &config.store_root {
        store_config = store_config.with_root(root);
        // The process-wide DSE memo cache joins the same root, so searched
        // mappings warm-start across restarts alongside the response cache.
        bitwave::dse::memo::persist_global_cache(std::path::Path::new(root))
            .map_err(|e| ServeError::Internal(format!("store root {root}: {e}")))?;
    }
    let cache = ReportCache::with_config(&store_config).map_err(|e| {
        ServeError::Internal(format!(
            "store root {}: {e}",
            config.store_root.as_deref().unwrap_or("<memory>")
        ))
    })?;
    let (waker, wake_reader) =
        Waker::pair().map_err(|e| ServeError::Internal(format!("waker: {e}")))?;
    let design = crate::design::DesignHub::new(&store_config, config.store_root.as_deref())
        .map_err(|e| {
            ServeError::Internal(format!(
                "design store {}: {e}",
                config.store_root.as_deref().unwrap_or("<memory>")
            ))
        })?;
    let state = Arc::new(ServiceState {
        cache,
        design,
        store: ModelStore::new(config.store_capacity),
        metrics: ServiceMetrics::default(),
        shutdown: AtomicBool::new(false),
        jobs: JobQueue::default(),
        completions: Completions::default(),
        waker,
        config,
    });

    let event_loop = EventLoop::new(Arc::clone(&state), listener, wake_reader)
        .map_err(|e| ServeError::Internal(format!("event loop: {e}")))?;
    let loop_handle = std::thread::Builder::new()
        .name("serve-loop".to_string())
        .spawn(move || event_loop.run())
        .map_err(|e| ServeError::Internal(format!("spawn event loop: {e}")))?;

    let worker_handles = (0..workers)
        .map(|i| {
            let worker_state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_main(&worker_state))
                .map_err(|e| ServeError::Internal(format!("spawn worker: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(ServerHandle {
        local_addr,
        state,
        event_loop: Some(loop_handle),
        workers: worker_handles,
    })
}

/// A compute worker: pops jobs, runs every entry through the single-flight
/// cache (a multi-entry job keeps its shared weight set hot in the
/// [`ModelStore`] across entries), publishes the completion and wakes the
/// loop.
fn worker_main(state: &ServiceState) {
    while let Some(job) = state.jobs.pop(&state.shutdown) {
        let results: Vec<EntryDone> = job
            .entries
            .iter()
            .map(|entry| run_entry(state, entry))
            .collect();
        state.completions.push(JobDone {
            id: job.id,
            results,
        });
        state.waker.wake();
    }
}

/// Computes (or replays) one job entry through the report cache.
fn run_entry(state: &ServiceState, entry: &JobEntry) -> EntryDone {
    let digest = entry.digest;
    let result = state
        .cache
        .get_or_compute(entry.kind.op(), digest, || match &entry.kind {
            JobKind::Evaluate(normalized) => compute_evaluate(state, normalized, &digest),
            JobKind::Search(normalized) => compute_search(state, normalized, &digest),
        });
    EntryDone { digest, result }
}

/// The cold evaluate computation (shared by workers and the blocking
/// [`route`] path).
fn compute_evaluate(
    state: &ServiceState,
    normalized: &NormalizedRequest,
    digest: &Digest,
) -> Result<String, String> {
    ServiceMetrics::bump(&state.metrics.evaluations);
    let weights = state.store.weights(
        &normalized.spec,
        normalized.key.knobs.seed,
        normalized.key.knobs.sample_cap,
    );
    let report = normalized
        .evaluate(&weights)
        .map_err(|e| ServeError::from(e).to_string())?;
    if report.memory_bound_layers > 0 {
        state
            .metrics
            .memory_bound_layers
            .fetch_add(report.memory_bound_layers as u64, Ordering::Relaxed);
    }
    normalized
        .envelope(digest, &report)
        .map_err(|e| e.to_string())
}

/// The cold search computation (shared by workers and the blocking
/// [`route`] path).
fn compute_search(
    state: &ServiceState,
    normalized: &NormalizedSearch,
    digest: &Digest,
) -> Result<String, String> {
    ServiceMetrics::bump(&state.metrics.searches);
    let weights = state.store.weights(
        &normalized.spec,
        normalized.key.knobs.seed,
        normalized.key.knobs.sample_cap,
    );
    let search = normalized
        .run(&weights)
        .map_err(|e| ServeError::from(e).to_string())?;
    normalized
        .envelope(digest, &search)
        .map_err(|e| e.to_string())
}

/// Dispatches one request to its endpoint handler, synchronously — the
/// event loop uses this for cheap endpoints and tests use it directly; the
/// evaluate/search arms block on the cache (in-process callers), whereas
/// the event loop routes those two through the dispatcher instead.
pub fn route(request: &Request, state: &ServiceState) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, r#"{"status":"ok"}"#),
        ("GET", "/metrics") => {
            Response::text(200, state.metrics.render(&state.cache, &state.store))
        }
        ("GET", "/v1/models") => json_or_500(&list_models()),
        ("GET", "/v1/accelerators") => json_or_500(&list_accelerators()),
        ("POST", "/v1/evaluate") => evaluate(request, state),
        ("POST", "/v1/search") => search(request, state),
        // Over the network the event loop intercepts this arm to stream
        // partial fronts; the synchronous path can only replay a completed
        // sweep from the store.
        ("POST", "/v1/design") => design_replay(request, state),
        ("GET", path) if path.starts_with("/v1/reports/") => replay_report(path, state),
        (
            _,
            "/healthz" | "/metrics" | "/v1/models" | "/v1/accelerators" | "/v1/evaluate"
            | "/v1/search" | "/v1/design",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

fn json_or_500<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, &format!("serialization failed: {e}")),
    }
}

/// `POST /v1/evaluate`: normalise → digest → single-flight cache → pipeline.
fn evaluate(request: &Request, state: &ServiceState) -> Response {
    let normalized = match EvaluateRequest::from_json(&request.body).and_then(|r| r.normalize()) {
        Ok(normalized) => normalized,
        Err(e) => return error_response(&e),
    };
    let digest = match normalized.key.digest() {
        Ok(digest) => digest,
        Err(e) => return error_response(&e),
    };
    let hex = digest.to_hex();
    let computed = state.cache.get_or_compute(CacheOp::Evaluate, digest, || {
        compute_evaluate(state, &normalized, &digest)
    });
    match computed {
        Ok((body, outcome)) => Response::json(200, body.as_bytes().to_vec())
            .with_header("x-bitwave-cache", outcome.as_str())
            .with_header("x-bitwave-digest", hex),
        Err(message) => error_response(&ServeError::Internal(message)),
    }
}

/// `POST /v1/search`: normalise → digest → single-flight cache → per-layer
/// dataflow design-space exploration.  Responses live in the same
/// content-addressed cache as evaluations (the key's `op` discriminator keeps
/// the namespaces apart), so a repeated search replays byte-identical JSON
/// with `X-Bitwave-Cache: hit`; even on a response-cache miss, the
/// `bitwave-dse` memo cache makes already-seen layers cheap.
fn search(request: &Request, state: &ServiceState) -> Response {
    let normalized =
        match EvaluateRequest::from_json(&request.body).and_then(|r| r.normalize_search()) {
            Ok(normalized) => normalized,
            Err(e) => return error_response(&e),
        };
    let digest = match normalized.key.digest() {
        Ok(digest) => digest,
        Err(e) => return error_response(&e),
    };
    let hex = digest.to_hex();
    let computed = state.cache.get_or_compute(CacheOp::Search, digest, || {
        compute_search(state, &normalized, &digest)
    });
    match computed {
        Ok((body, outcome)) => Response::json(200, body.as_bytes().to_vec())
            .with_header("x-bitwave-cache", outcome.as_str())
            .with_header("x-bitwave-digest", hex),
        Err(message) => error_response(&ServeError::Internal(message)),
    }
}

/// The synchronous `POST /v1/design` arm: replays a **completed** sweep's
/// final [`bitwave_sweep::FrontReport`] from the design store.  Streaming a
/// live sweep needs a network connection (the event loop intercepts the
/// route before this arm and answers with chunked NDJSON instead).
fn design_replay(request: &Request, state: &ServiceState) -> Response {
    let config = match crate::design::parse_design(&request.body) {
        Ok(config) => config,
        Err(e) => return error_response(&e),
    };
    let sweep = config.digest().to_hex();
    match state.design.replay(&sweep) {
        Some(line) => Response::json(200, line.as_bytes().to_vec())
            .with_header("x-bitwave-sweep", sweep)
            .with_header("x-bitwave-cache", "hit"),
        None => error_response(&ServeError::NotFound(format!(
            "sweep `{sweep}` has no completed report; POST over HTTP to stream it"
        ))),
    }
}

/// `GET /v1/reports/{digest}`: replay a cached report without recomputation.
/// Consults the memory tier first and then — when a store root is
/// configured — the disk tier, so reports written before a restart stay
/// addressable by digest.
fn replay_report(path: &str, state: &ServiceState) -> Response {
    let raw = path.trim_start_matches("/v1/reports/");
    let Some(parsed) = bitwave::digest::Digest::parse(raw) else {
        return error_response(&ServeError::BadRequest(format!(
            "`{raw}` is not a 32-hex-char digest"
        )));
    };
    // Digest parsing canonicalises case; lookups accept any spelling.
    let hex = parsed.to_hex();
    let hex = hex.as_str();
    match state.cache.replay(parsed) {
        Some((body, outcome)) => {
            ServiceMetrics::bump(&state.metrics.report_replays);
            Response::json(200, body.as_bytes().to_vec())
                .with_header("x-bitwave-cache", outcome.as_str())
                .with_header("x-bitwave-digest", hex.to_string())
        }
        None => error_response(&ServeError::NotFound(format!(
            "no cached report for digest `{hex}`"
        ))),
    }
}

pub(crate) fn error_response(error: &ServeError) -> Response {
    Response::error(error.status(), &error.to_string())
}
