//! The service runtime: TCP acceptor, bounded job queue, worker pool and
//! request routing.
//!
//! One acceptor thread pushes connections onto a bounded queue; `workers`
//! threads pop connections and serve them (keep-alive: a worker handles a
//! connection's requests back to back until the peer closes or asks to).
//! When the queue is full the acceptor answers `503` inline and drops the
//! connection — predictable backpressure instead of unbounded memory growth.
//!
//! Evaluations dispatch onto
//! [`bitwave::pipeline::Pipeline::run_model_weights_parallel`], sharing
//! per-model weight sets through the [`ModelStore`] so concurrent requests
//! for one model touch the same `Arc`-backed tensors (zero deep copies), and
//! results land in the single-flight [`ReportCache`] keyed by the request
//! digest — a tiered `bitwave-store` under the hood, so configuring
//! [`ServeConfig::store_root`] makes cached responses (and the DSE memo
//! cache) survive restarts and replay byte-identically from disk.

use crate::api::{list_accelerators, list_models, EvaluateRequest};
use crate::cache::{CacheOp, ReportCache};
use crate::error::ServeError;
use crate::http::{read_request, HttpError, Request, Response};
use crate::metrics::ServiceMetrics;
use crate::store::ModelStore;
use bitwave_store::StoreConfig;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded connection-queue capacity (overflow → 503).
    pub queue_capacity: usize,
    /// Report-cache capacity in entries (per op: evaluate and search each
    /// get this many).
    pub cache_capacity: usize,
    /// Weight-store capacity in generated weight sets.
    pub store_capacity: usize,
    /// Root directory of the persistent store; `None` (default) keeps this
    /// service's report cache memory-only.  With a root, evaluate/search
    /// responses and DSE layer searches persist under
    /// `<root>/{evaluate,search,dse}/<digest>` and replay byte-identically
    /// across restarts.
    ///
    /// Note: the DSE memo cache is process-wide, and attaching it to a root
    /// lasts for the process lifetime (a later memory-only `start()` in the
    /// same process does not detach it).  That is safe — memo entries are
    /// content-addressed by the full search inputs, so any replay is correct
    /// — but processes that juggle several roots share one `dse/` tier, the
    /// most recently attached.
    pub store_root: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map_or(2, |n| n.get())
                .clamp(2, 8),
            queue_capacity: 128,
            cache_capacity: 256,
            store_capacity: 8,
            store_root: None,
        }
    }
}

/// Shared state of one running service.
#[derive(Debug)]
pub struct ServiceState {
    /// The resolved configuration.
    pub config: ServeConfig,
    /// Content-addressed report cache.
    pub cache: ReportCache,
    /// Shared weight store.
    pub store: ModelStore,
    /// Service counters.
    pub metrics: ServiceMetrics,
    shutdown: AtomicBool,
    queue: JobQueue,
}

/// Bounded MPMC queue of accepted connections.
#[derive(Debug)]
struct JobQueue {
    jobs: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
        self.jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues a connection; hands it back when the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut jobs = self.lock();
        if jobs.len() >= self.capacity {
            return Err(stream);
        }
        jobs.push_back(stream);
        drop(jobs);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once shut down and drained.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut jobs = self.lock();
        loop {
            if let Some(stream) = jobs.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            jobs = self
                .available
                .wait(jobs)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn notify_all(&self) {
        self.available.notify_all();
    }
}

/// Handle to a running service; dropping it does **not** stop the service —
/// call [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    state: Arc<ServiceState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service state (cache/store/metrics introspection).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Stops accepting, drains queued connections, joins all threads.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor with a wake-up connection; it re-checks the
        // flag per accepted connection.
        let _ = TcpStream::connect(self.local_addr);
        self.state.queue.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            self.state.queue.notify_all();
            let _ = worker.join();
        }
    }
}

/// Binds, spawns the acceptor + worker pool, and returns the handle.
///
/// # Errors
///
/// Returns [`ServeError::Internal`] when the listener cannot bind.
pub fn start(config: ServeConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Internal(format!("bind {}: {e}", config.addr)))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| ServeError::Internal(format!("local_addr: {e}")))?;
    let workers = config.workers.max(1);
    let mut store_config = StoreConfig::default().with_mem_entries(config.cache_capacity);
    if let Some(root) = &config.store_root {
        store_config = store_config.with_root(root);
        // The process-wide DSE memo cache joins the same root, so searched
        // mappings warm-start across restarts alongside the response cache.
        bitwave::dse::memo::persist_global_cache(std::path::Path::new(root))
            .map_err(|e| ServeError::Internal(format!("store root {root}: {e}")))?;
    }
    let cache = ReportCache::with_config(&store_config).map_err(|e| {
        ServeError::Internal(format!(
            "store root {}: {e}",
            config.store_root.as_deref().unwrap_or("<memory>")
        ))
    })?;
    let state = Arc::new(ServiceState {
        cache,
        store: ModelStore::new(config.store_capacity),
        metrics: ServiceMetrics::default(),
        shutdown: AtomicBool::new(false),
        queue: JobQueue::new(config.queue_capacity),
        config,
    });

    let acceptor_state = Arc::clone(&state);
    let acceptor = std::thread::Builder::new()
        .name("serve-acceptor".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if acceptor_state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if let Err(rejected) = acceptor_state.queue.push(stream) {
                    ServiceMetrics::bump(&acceptor_state.metrics.queue_rejections);
                    let mut rejected = rejected;
                    let _ = error_response(&ServeError::Overloaded)
                        .with_header("retry-after", "1")
                        .write_to(&mut rejected, true);
                }
            }
        })
        .map_err(|e| ServeError::Internal(format!("spawn acceptor: {e}")))?;

    let worker_handles = (0..workers)
        .map(|i| {
            let worker_state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || {
                    while let Some(stream) = worker_state.queue.pop(&worker_state.shutdown) {
                        serve_connection(stream, &worker_state);
                    }
                })
                .map_err(|e| ServeError::Internal(format!("spawn worker: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(ServerHandle {
        local_addr,
        state,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

/// Idle keep-alive timeout: a connection with no request for this long is
/// closed so a quiet client cannot pin a worker forever (clients reconnect
/// transparently).
const KEEP_ALIVE_IDLE: std::time::Duration = std::time::Duration::from_secs(5);

/// Serves one connection until close (keep-alive loop).
fn serve_connection(stream: TcpStream, state: &ServiceState) {
    // Both directions are bounded: a quiet client cannot pin a worker on
    // read, and a client that stops *reading* its response cannot pin one
    // on write once the kernel send buffer fills.
    let _ = stream.set_read_timeout(Some(KEEP_ALIVE_IDLE));
    let _ = stream.set_write_timeout(Some(KEEP_ALIVE_IDLE));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            Err(HttpError::ConnectionClosed) => return,
            Err(HttpError::Io(_)) => return,
            Err(HttpError::PayloadTooLarge) => {
                ServiceMetrics::bump(&state.metrics.http_requests);
                ServiceMetrics::bump(&state.metrics.http_errors);
                let _ =
                    Response::error(413, "request body too large").write_to(&mut write_half, true);
                return;
            }
            Err(HttpError::BadRequest(msg)) => {
                ServiceMetrics::bump(&state.metrics.http_requests);
                ServiceMetrics::bump(&state.metrics.http_errors);
                let _ = Response::error(400, &msg).write_to(&mut write_half, true);
                return;
            }
        };
        ServiceMetrics::bump(&state.metrics.http_requests);
        let close = request.wants_close() || state.shutdown.load(Ordering::Acquire);
        let response = route(&request, state);
        if response.status >= 300 {
            ServiceMetrics::bump(&state.metrics.http_errors);
        }
        if response.write_to(&mut write_half, close).is_err() || close {
            return;
        }
    }
}

/// Dispatches one request to its endpoint handler.
pub fn route(request: &Request, state: &ServiceState) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, r#"{"status":"ok"}"#),
        ("GET", "/metrics") => {
            Response::text(200, state.metrics.render(&state.cache, &state.store))
        }
        ("GET", "/v1/models") => json_or_500(&list_models()),
        ("GET", "/v1/accelerators") => json_or_500(&list_accelerators()),
        ("POST", "/v1/evaluate") => evaluate(request, state),
        ("POST", "/v1/search") => search(request, state),
        ("GET", path) if path.starts_with("/v1/reports/") => replay_report(path, state),
        (
            _,
            "/healthz" | "/metrics" | "/v1/models" | "/v1/accelerators" | "/v1/evaluate"
            | "/v1/search",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

fn json_or_500<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, &format!("serialization failed: {e}")),
    }
}

/// `POST /v1/evaluate`: normalise → digest → single-flight cache → pipeline.
fn evaluate(request: &Request, state: &ServiceState) -> Response {
    let normalized = match EvaluateRequest::from_json(&request.body).and_then(|r| r.normalize()) {
        Ok(normalized) => normalized,
        Err(e) => return error_response(&e),
    };
    let digest = match normalized.key.digest() {
        Ok(digest) => digest,
        Err(e) => return error_response(&e),
    };
    let hex = digest.to_hex();
    let computed = state.cache.get_or_compute(CacheOp::Evaluate, digest, || {
        ServiceMetrics::bump(&state.metrics.evaluations);
        let weights = state.store.weights(
            &normalized.spec,
            normalized.key.knobs.seed,
            normalized.key.knobs.sample_cap,
        );
        let report = normalized
            .evaluate(&weights)
            .map_err(|e| ServeError::from(e).to_string())?;
        normalized
            .envelope(&digest, &report)
            .map_err(|e| e.to_string())
    });
    match computed {
        Ok((body, outcome)) => Response::json(200, body.as_bytes().to_vec())
            .with_header("x-bitwave-cache", outcome.as_str())
            .with_header("x-bitwave-digest", hex),
        Err(message) => error_response(&ServeError::Internal(message)),
    }
}

/// `POST /v1/search`: normalise → digest → single-flight cache → per-layer
/// dataflow design-space exploration.  Responses live in the same
/// content-addressed cache as evaluations (the key's `op` discriminator keeps
/// the namespaces apart), so a repeated search replays byte-identical JSON
/// with `X-Bitwave-Cache: hit`; even on a response-cache miss, the
/// `bitwave-dse` memo cache makes already-seen layers cheap.
fn search(request: &Request, state: &ServiceState) -> Response {
    let normalized =
        match EvaluateRequest::from_json(&request.body).and_then(|r| r.normalize_search()) {
            Ok(normalized) => normalized,
            Err(e) => return error_response(&e),
        };
    let digest = match normalized.key.digest() {
        Ok(digest) => digest,
        Err(e) => return error_response(&e),
    };
    let hex = digest.to_hex();
    let computed = state.cache.get_or_compute(CacheOp::Search, digest, || {
        ServiceMetrics::bump(&state.metrics.searches);
        let weights = state.store.weights(
            &normalized.spec,
            normalized.key.knobs.seed,
            normalized.key.knobs.sample_cap,
        );
        let search = normalized
            .run(&weights)
            .map_err(|e| ServeError::from(e).to_string())?;
        normalized
            .envelope(&digest, &search)
            .map_err(|e| e.to_string())
    });
    match computed {
        Ok((body, outcome)) => Response::json(200, body.as_bytes().to_vec())
            .with_header("x-bitwave-cache", outcome.as_str())
            .with_header("x-bitwave-digest", hex),
        Err(message) => error_response(&ServeError::Internal(message)),
    }
}

/// `GET /v1/reports/{digest}`: replay a cached report without recomputation.
/// Consults the memory tier first and then — when a store root is
/// configured — the disk tier, so reports written before a restart stay
/// addressable by digest.
fn replay_report(path: &str, state: &ServiceState) -> Response {
    let raw = path.trim_start_matches("/v1/reports/");
    let Some(parsed) = bitwave::digest::Digest::parse(raw) else {
        return error_response(&ServeError::BadRequest(format!(
            "`{raw}` is not a 32-hex-char digest"
        )));
    };
    // Digest parsing canonicalises case; lookups accept any spelling.
    let hex = parsed.to_hex();
    let hex = hex.as_str();
    match state.cache.replay(parsed) {
        Some((body, outcome)) => {
            ServiceMetrics::bump(&state.metrics.report_replays);
            Response::json(200, body.as_bytes().to_vec())
                .with_header("x-bitwave-cache", outcome.as_str())
                .with_header("x-bitwave-digest", hex.to_string())
        }
        None => error_response(&ServeError::NotFound(format!(
            "no cached report for digest `{hex}`"
        ))),
    }
}

fn error_response(error: &ServeError) -> Response {
    Response::error(error.status(), &error.to_string())
}
