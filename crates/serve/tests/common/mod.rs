//! Raw-socket helpers shared by the wire-level integration tests: a tiny
//! response reader that makes no assumptions the server-side parser under
//! test could hide behind.

use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;

/// One parsed HTTP response off the wire.
#[derive(Debug)]
pub struct RawResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    // Not every test binary that includes this module reads every field.
    #[allow(dead_code)]
    pub body: Vec<u8>,
}

impl RawResponse {
    #[allow(dead_code)]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads exactly one response; `None` on a clean EOF before the status line.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> Option<RawResponse> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let status = line.split_whitespace().nth(1)?.parse::<u16>().ok()?;
    let mut headers = Vec::new();
    loop {
        let mut header_line = String::new();
        reader.read_line(&mut header_line).ok()?;
        let trimmed = header_line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_lowercase(), value.trim().to_string()));
        }
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(RawResponse {
        status,
        headers,
        body,
    })
}
