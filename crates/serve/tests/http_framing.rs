//! Wire-level HTTP framing regression tests: pipelining, split writes,
//! header variants, HTTP/1.0 close semantics, duplicate Content-Length
//! rejection, and a property check that the incremental parser agrees with
//! the blocking reader on every well-formed request.

mod common;

use bitwave_serve::http::{parse_request, read_request, ParseStatus};
use bitwave_serve::server::{start, ServeConfig};
use common::read_response;
use proptest::prelude::*;
use std::io::{BufReader, Cursor, Write};
use std::net::TcpStream;
use std::time::Duration;

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }
}

#[test]
fn pipelined_requests_in_one_segment_are_answered_in_order() {
    let handle = start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    // Three requests, one write, one TCP segment's worth of bytes.
    let burst = "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
                 GET /v1/models HTTP/1.1\r\nhost: t\r\n\r\n\
                 GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n";
    stream.write_all(burst.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let first = read_response(&mut reader).expect("first response");
    let second = read_response(&mut reader).expect("second response");
    let third = read_response(&mut reader).expect("third response");
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(third.status, 200);
    assert_eq!(first.body, b"{\"status\":\"ok\"}");
    assert!(
        String::from_utf8_lossy(&second.body).contains("resnet18"),
        "responses must come back in request order"
    );
    assert_eq!(third.body, first.body);
    handle.shutdown();
}

#[test]
fn a_body_split_across_arbitrary_write_boundaries_still_parses() {
    let handle = start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let body = r#"{"model":"resnet18","sample_cap":400}"#;
    let message = format!(
        "POST /v1/evaluate HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    );
    // Dribble the request out in 7-byte slices with real scheduling gaps so
    // the server sees many partial reads (head and body both fragmented).
    for chunk in message.as_bytes().chunks(7) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).expect("response");
    assert_eq!(response.status, 200);
    assert!(String::from_utf8_lossy(&response.body).contains("\"report\""));
    handle.shutdown();
}

#[test]
fn header_case_and_whitespace_variants_are_accepted() {
    let handle = start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let body = r#"{"model":"resnet18","sample_cap":400}"#;
    // Mixed-case names, extra whitespace around values, tab padding.
    let message = format!(
        "POST /v1/evaluate HTTP/1.1\r\nHOST: t\r\nContent-Type:   application/json  \r\n\
         CoNtEnT-LeNgTh:\t {} \r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).expect("response");
    assert_eq!(response.status, 200);
    handle.shutdown();
}

#[test]
fn http_1_0_defaults_to_close_on_the_wire() {
    let handle = start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nhost: t\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).expect("response");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("connection"),
        Some("close"),
        "an HTTP/1.0 request without keep-alive must be answered with close"
    );
    assert!(
        read_response(&mut reader).is_none(),
        "the server must close an HTTP/1.0 connection after the response"
    );
    handle.shutdown();
}

#[test]
fn http_1_0_keep_alive_token_keeps_the_connection_open() {
    let handle = start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nhost: t\r\nConnection: Keep-Alive\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let first = read_response(&mut reader).expect("first response");
    assert_eq!(first.status, 200);
    assert_ne!(first.header("connection"), Some("close"));
    // The connection must survive for a second request.
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nhost: t\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let second = read_response(&mut reader).expect("second response on the same connection");
    assert_eq!(second.status, 200);
    handle.shutdown();
}

#[test]
fn connection_header_token_lists_let_close_win() {
    let handle = start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nConnection: keep-alive, Close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).expect("response");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(read_response(&mut reader).is_none(), "close token must win");
    handle.shutdown();
}

#[test]
fn mismatched_duplicate_content_length_is_rejected_with_400() {
    let handle = start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .write_all(
            b"POST /v1/evaluate HTTP/1.1\r\nhost: t\r\n\
              content-length: 5\r\ncontent-length: 7\r\n\r\nhellos!",
        )
        .unwrap();
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).expect("response");
    assert_eq!(
        response.status, 400,
        "conflicting Content-Length headers are a request-smuggling vector"
    );
    handle.shutdown();
}

#[test]
fn identical_duplicate_content_length_is_tolerated() {
    let handle = start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let body = r#"{"model":"resnet18","sample_cap":400}"#;
    let message = format!(
        "POST /v1/evaluate HTTP/1.1\r\nhost: t\r\ncontent-length: {n}\r\n\
         content-length: {n}\r\n\r\n{body}",
        n = body.len()
    );
    stream.write_all(message.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).expect("response");
    assert_eq!(response.status, 200, "identical duplicates are unambiguous");
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The incremental event-loop parser and the blocking `BufRead` parser
    /// must agree on every well-formed request, whatever the method, path,
    /// header padding or body contents.
    #[test]
    fn incremental_parser_matches_blocking_reader(
        method in prop_oneof![Just("GET"), Just("POST"), Just("PUT"), Just("DELETE")],
        path_tail in proptest::collection::vec(0u8..26, 0..12),
        pad_left in 0usize..4,
        pad_right in 0usize..4,
        upper in any::<bool>(),
        body in proptest::collection::vec(0u8..=255, 0..200),
        trailing in proptest::collection::vec(0u8..=255, 0..40),
    ) {
        let path: String = path_tail.iter().map(|c| (b'a' + c) as char).collect();
        let name = if upper { "CONTENT-LENGTH" } else { "Content-Length" };
        let mut raw = format!(
            "{method} /{path} HTTP/1.1\r\nHost: prop\r\n{name}:{}{}{}\r\n\r\n",
            " ".repeat(pad_left),
            body.len(),
            " ".repeat(pad_right),
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let consumed_expected = raw.len();
        raw.extend_from_slice(&trailing); // next pipelined request's bytes

        let incremental = match parse_request(&raw) {
            Ok(ParseStatus::Complete { request, consumed }) => {
                prop_assert_eq!(consumed, consumed_expected,
                    "must consume exactly one request");
                request
            }
            other => panic!("incremental parse failed: {other:?}"),
        };
        let blocking =
            read_request(&mut BufReader::new(Cursor::new(raw[..consumed_expected].to_vec())))
                .expect("blocking parse");
        prop_assert_eq!(&incremental.method, &blocking.method);
        prop_assert_eq!(&incremental.path, &blocking.path);
        prop_assert_eq!(incremental.version, blocking.version);
        prop_assert_eq!(&incremental.headers, &blocking.headers);
        prop_assert_eq!(&incremental.body, &blocking.body);
        prop_assert_eq!(&incremental.body, &body);
    }

    /// Every strict prefix of a well-formed request must report `Partial`,
    /// never an error and never a bogus completion.
    #[test]
    fn prefixes_of_valid_requests_stay_partial(cut in 0usize..64) {
        let body = r#"{"model":"resnet18"}"#;
        let raw = format!(
            "POST /v1/evaluate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let cut = cut.min(raw.len() - 1);
        match parse_request(&raw.as_bytes()[..cut]) {
            Ok(ParseStatus::Partial) => {}
            other => panic!("prefix of {cut} bytes must be Partial, got {other:?}"),
        }
    }
}
