//! Wire-level tests of the streaming `POST /v1/design` endpoint: chunked
//! NDJSON framing, ≥ 2 partial fronts before the final report, and
//! byte-identical replay of a completed sweep from the store.

mod common;

use bitwave_serve::server::{start, ServeConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn temp_store_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("bitwave-serve-design-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn design_server(root: &std::path::Path) -> ServerHandle {
    start(ServeConfig {
        workers: 1,
        store_root: Some(root.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("design server starts")
}

/// A de-chunked design response: status, headers, NDJSON lines.
struct DesignStream {
    status: u16,
    headers: Vec<(String, String)>,
    lines: Vec<String>,
}

impl DesignStream {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// POSTs `body` to `/v1/design` and reads the chunked response to the
/// terminating zero chunk, de-chunking into NDJSON lines.
fn post_design(addr: std::net::SocketAddr, body: &str) -> DesignStream {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write!(
        writer,
        "POST /v1/design HTTP/1.1\r\nhost: test\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("request written");
    writer.flush().expect("flushed");

    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v == "chunked");
    let mut payload = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).expect("chunk size");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
            if size == 0 {
                let mut trailer = String::new();
                let _ = reader.read_line(&mut trailer); // final CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk).expect("chunk payload");
            payload.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf).expect("chunk CRLF");
            assert_eq!(&crlf, b"\r\n", "chunk delimiter");
        }
    } else {
        // Error responses are plain content-length JSON.
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        payload = vec![0u8; len];
        reader.read_exact(&mut payload).expect("error body");
    }
    let text = String::from_utf8(payload).expect("UTF-8 stream");
    let lines = text
        .lines()
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    DesignStream {
        status,
        headers,
        lines,
    }
}

#[test]
fn design_streams_partial_fronts_then_replays_byte_identically() {
    let root = temp_store_root("stream");
    let handle = design_server(&root);
    let addr = handle.local_addr();
    let body = r#"{"space":"tiny","sample_cap":400}"#;

    // Cold: live sweep streamed as chunked NDJSON.
    let cold = post_design(addr, body);
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("transfer-encoding"), Some("chunked"));
    assert_eq!(cold.header("content-type"), Some("application/x-ndjson"));
    assert_eq!(cold.header("connection"), Some("close"));
    let sweep = cold.header("x-bitwave-sweep").expect("sweep digest").len();
    assert_eq!(sweep, 32, "sweep digest is 32 hex chars");
    assert!(
        cold.lines.len() >= 3,
        "expected >= 2 partial fronts before the final report, got {} lines",
        cold.lines.len()
    );
    let (final_line, partials) = cold.lines.split_last().expect("final line");
    assert!(
        final_line.contains("\"schema\""),
        "final line is the FrontReport: {final_line}"
    );
    for partial in partials {
        assert!(
            partial.contains("\"completed\"") && !partial.contains("\"schema\""),
            "partial frames are PartialFront snapshots: {partial}"
        );
    }

    // Warm: the completed sweep replays from the store — only the final
    // report, byte-identical to the streamed one.
    let warm = post_design(addr, body);
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.lines.len(),
        1,
        "a completed sweep replays without re-streaming partials"
    );
    assert_eq!(&warm.lines[0], final_line, "replay is byte-identical");

    handle.shutdown();

    // Across a restart the final report still replays from the disk tier.
    let handle = design_server(&root);
    let persisted = post_design(handle.local_addr(), body);
    assert_eq!(persisted.status, 200);
    assert_eq!(persisted.lines.len(), 1);
    assert_eq!(&persisted.lines[0], final_line, "replay survives restart");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn design_rejects_bad_bodies_and_methods() {
    let root = temp_store_root("errors");
    let handle = design_server(&root);
    let addr = handle.local_addr();

    let bad = post_design(addr, r#"{"space":"galactic"}"#);
    assert_eq!(bad.status, 400);
    assert!(
        bad.lines[0].contains("unknown sweep space"),
        "{:?}",
        bad.lines
    );

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(b"GET /v1/design HTTP/1.1\r\nhost: test\r\n\r\n")
        .expect("request written");
    let response = common::read_response(&mut reader).expect("response");
    assert_eq!(response.status, 405, "GET on the design endpoint is a 405");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
