//! Concurrency property test (the PR's correctness gate for the service):
//! N client threads submitting the same request set receive responses
//! **byte-identical** to a sequential single-client run — on a cold cache
//! and on a warm one — and concurrent identical requests coalesce onto a
//! single evaluation.

use bitwave_serve::client::Client;
use bitwave_serve::server::{start, ServeConfig, ServerHandle};
use bitwave_serve::CacheOp;
use std::collections::BTreeMap;
use std::sync::Arc;

fn test_server(workers: usize) -> ServerHandle {
    start(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// The request set: distinct models × accelerators × knobs, all cheap.
fn request_set() -> Vec<String> {
    let mut requests = Vec::new();
    for (model, cap) in [("resnet18", 1_500), ("mobilenet-v2", 1_500)] {
        for accelerator in ["bitwave", "dense", "scnn"] {
            requests.push(format!(
                r#"{{"model":"{model}","accelerator":"{accelerator}","sample_cap":{cap}}}"#
            ));
        }
    }
    requests.push(
        r#"{"model":"resnet18","accelerator":"bitwave","bitflip":true,"sample_cap":1500}"#
            .to_string(),
    );
    requests
}

/// Runs the whole request set once on one client, returning body-by-request.
fn run_set(addr: std::net::SocketAddr, requests: &[String]) -> BTreeMap<String, Vec<u8>> {
    let mut client = Client::new(addr);
    requests
        .iter()
        .map(|body| {
            let response = client.post_json("/v1/evaluate", body).unwrap();
            assert_eq!(response.status, 200, "{body}: {:?}", response.text());
            (body.clone(), response.body)
        })
        .collect()
}

#[test]
fn concurrent_clients_match_a_sequential_run_cold_and_cached() {
    let requests = Arc::new(request_set());

    // Reference: a sequential single-client run against its own server.
    let sequential_server = test_server(2);
    let reference = Arc::new(run_set(sequential_server.local_addr(), &requests));
    sequential_server.shutdown();

    // Property: N threads against a fresh (cold) server, each submitting the
    // full set in a different rotation, must reproduce the reference bytes.
    let concurrent_server = test_server(4);
    let addr = concurrent_server.local_addr();
    let n_threads = 4;
    let handles: Vec<_> = (0..n_threads)
        .map(|rotation| {
            let requests = Arc::clone(&requests);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut rotated: Vec<String> = requests.to_vec();
                rotated.rotate_left(rotation % requests.len());
                for (body, response) in run_set(addr, &rotated) {
                    assert_eq!(
                        Some(&response),
                        reference.get(&body),
                        "cold concurrent response for `{body}` diverged from sequential run"
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("cold client thread");
    }

    // Every request was evaluated exactly once despite 4×: the rest were
    // hits or coalesced onto the in-flight computation.
    let stats = concurrent_server.state().cache.stats(CacheOp::Evaluate);
    assert_eq!(stats.misses(), requests.len() as u64, "one cold run each");
    assert_eq!(
        stats.misses() + stats.hits() + stats.coalesced(),
        (requests.len() * n_threads) as u64
    );

    // Warm pass: same property against the now-fully-cached server.
    let handles: Vec<_> = (0..n_threads)
        .map(|_| {
            let requests = Arc::clone(&requests);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for (body, response) in run_set(addr, &requests) {
                    assert_eq!(
                        Some(&response),
                        reference.get(&body),
                        "cached response for `{body}` diverged from sequential run"
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("warm client thread");
    }
    assert_eq!(
        concurrent_server
            .state()
            .cache
            .stats(CacheOp::Evaluate)
            .misses(),
        requests.len() as u64,
        "warm pass must not recompute anything"
    );

    concurrent_server.shutdown();
}

#[test]
fn concurrent_evaluations_of_one_model_share_weights_with_zero_copies() {
    let server = test_server(4);
    let addr = server.local_addr();
    // Cold run: generate weights + evaluate once.
    let body = r#"{"model":"resnet18","accelerator":"bitwave","sample_cap":1500,"seed":9}"#;
    let mut client = Client::new(addr);
    let cold = client.post_json("/v1/evaluate", body).unwrap();
    assert_eq!(cold.status, 200);

    // Distinct accelerators over the SAME model/seed/cap share one weight
    // set; nothing may deep-copy a tensor beyond that cold generation.
    let guard = bitwave_tensor::copy_metrics::exclusive();
    let counter = bitwave_tensor::copy_metrics::CopyCounter::snapshot();
    let handles: Vec<_> = ["dense", "scnn", "stripes", "bitwave-df"]
        .into_iter()
        .map(|accelerator| {
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let body = format!(
                    r#"{{"model":"resnet18","accelerator":"{accelerator}","sample_cap":1500,"seed":9}}"#
                );
                let response = client.post_json("/v1/evaluate", &body).unwrap();
                assert_eq!(response.status, 200);
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert_eq!(
        counter.delta(),
        0,
        "concurrent evaluations of one model must not deep-copy weight tensors"
    );
    drop(guard);
    assert_eq!(
        server.state().store.generations(),
        1,
        "all accelerators share the one generated weight set"
    );

    drop(client);
    server.shutdown();
}
