//! End-to-end API tests over a real socket: endpoint coverage, cache
//! semantics (digest-stable, byte-identical replay), error mapping and
//! metrics.

use bitwave_serve::client::Client;
use bitwave_serve::server::{start, ServeConfig, ServerHandle};
use bitwave_serve::EvaluateResponse;
use std::path::PathBuf;

fn test_server() -> ServerHandle {
    start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

const RESNET_SMALL: &str = r#"{"model":"resnet18","sample_cap":2000}"#;

#[test]
fn health_models_accelerators_and_metrics_respond() {
    let handle = test_server();
    let mut client = Client::new(handle.local_addr());

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.text().unwrap(), r#"{"status":"ok"}"#);

    let models = client.get("/v1/models").unwrap();
    assert_eq!(models.status, 200);
    let listed: Vec<bitwave_serve::api::ModelListing> =
        serde_json::from_str(models.text().unwrap()).unwrap();
    assert_eq!(listed.len(), 4);
    assert!(listed.iter().any(|m| m.name == "bert-base"));

    let accels = client.get("/v1/accelerators").unwrap();
    assert_eq!(accels.status, 200);
    let listed: Vec<bitwave_serve::api::AcceleratorListing> =
        serde_json::from_str(accels.text().unwrap()).unwrap();
    assert_eq!(listed.len(), 9);

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text().unwrap();
    assert!(text.contains("bitwave_serve_http_requests_total"));
    assert!(text.contains("bitwave_tensor_deep_copies_total"));

    drop(client);
    handle.shutdown();
}

#[test]
fn evaluate_twice_is_digest_stable_and_byte_identical() {
    let handle = test_server();
    let mut client = Client::new(handle.local_addr());

    let cold = client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    assert_eq!(cold.status, 200, "cold: {:?}", cold.text());
    assert_eq!(cold.header("x-bitwave-cache"), Some("miss"));
    let warm = client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-bitwave-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "hit must replay byte-identical JSON");
    assert_eq!(
        cold.header("x-bitwave-digest"),
        warm.header("x-bitwave-digest")
    );

    // A logically identical request with explicit defaults and a different
    // name spelling lands on the same cache entry.
    let spelled = client
        .post_json(
            "/v1/evaluate",
            r#"{"model":"ResNet18","accelerator":"bitwave","bitflip":false,"sample_cap":2000,"seed":42,"group_size":16}"#,
        )
        .unwrap();
    assert_eq!(spelled.header("x-bitwave-cache"), Some("hit"));
    assert_eq!(spelled.body, cold.body);

    let parsed: EvaluateResponse = serde_json::from_str(cold.text().unwrap()).unwrap();
    assert_eq!(parsed.key.model, "ResNet18");
    assert_eq!(parsed.report.layers.len(), 21);
    assert_eq!(
        Some(parsed.digest.as_str()),
        cold.header("x-bitwave-digest")
    );

    drop(client);
    handle.shutdown();
}

#[test]
fn reports_endpoint_replays_without_recomputation() {
    let handle = test_server();
    let mut client = Client::new(handle.local_addr());

    let cold = client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    let digest = cold.header("x-bitwave-digest").unwrap().to_string();
    let evaluations_before = handle.state().store.generations();

    let replay = client.get(&format!("/v1/reports/{digest}")).unwrap();
    assert_eq!(replay.status, 200);
    assert_eq!(replay.body, cold.body);
    assert_eq!(
        handle.state().store.generations(),
        evaluations_before,
        "replay must not regenerate weights"
    );

    // Digest lookup is case-insensitive (keys are canonical lowercase).
    let upper = client
        .get(&format!("/v1/reports/{}", digest.to_uppercase()))
        .unwrap();
    assert_eq!(upper.status, 200);
    assert_eq!(upper.body, cold.body);

    let missing = client
        .get("/v1/reports/00000000000000000000000000000000")
        .unwrap();
    assert_eq!(missing.status, 404);
    let malformed = client.get("/v1/reports/not-a-digest").unwrap();
    assert_eq!(malformed.status, 400);

    drop(client);
    handle.shutdown();
}

fn temp_store_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bitwave-serve-api-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn persistent_server(root: &std::path::Path) -> ServerHandle {
    start(ServeConfig {
        workers: 2,
        store_root: Some(root.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("persistent server starts")
}

#[test]
fn persistent_store_replays_across_restarts_byte_identically() {
    let root = temp_store_root("restart");

    // First process lifetime: a cold evaluation lands on disk.
    let first = persistent_server(&root);
    let mut client = Client::new(first.local_addr());
    let cold = client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    assert_eq!(cold.status, 200, "cold: {:?}", cold.text());
    assert_eq!(cold.header("x-bitwave-cache"), Some("miss"));
    let cold_body = cold.body.clone();
    drop(client);
    first.shutdown();

    // Second lifetime over the same root: the evaluation replays from the
    // disk tier — no recomputation, byte-identical bytes, `disk` source.
    let second = persistent_server(&root);
    let mut client = Client::new(second.local_addr());
    let warm = client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-bitwave-cache"), Some("disk"));
    assert_eq!(warm.body, cold_body, "disk hits replay byte-identical JSON");
    assert_eq!(
        second.state().store.generations(),
        0,
        "a disk replay must not regenerate weights"
    );

    // Once promoted, the next lookup is a plain memory hit.
    let warmest = client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    assert_eq!(warmest.header("x-bitwave-cache"), Some("hit"));
    assert_eq!(warmest.body, cold_body);

    // The metrics surface the per-op disk activity.
    let metrics = client.get("/metrics").unwrap();
    let text = metrics.text().unwrap();
    assert!(
        text.contains("bitwave_store_disk_hits_total{op=\"evaluate\"} 1"),
        "disk hit must be counted:\n{text}"
    );
    assert!(text.contains("bitwave_store_disk_entries{op=\"evaluate\"} 1"));

    drop(client);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reports_endpoint_hits_the_disk_tier_after_a_restart() {
    let root = temp_store_root("reports");

    let first = persistent_server(&root);
    let mut client = Client::new(first.local_addr());
    let cold = client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    assert_eq!(cold.status, 200);
    let digest = cold.header("x-bitwave-digest").unwrap().to_string();
    let cold_body = cold.body.clone();
    drop(client);
    first.shutdown();

    // GET /v1/reports/{digest} on a fresh process must reach the disk tier
    // directly — no POST has warmed the memory tier.
    let second = persistent_server(&root);
    let mut client = Client::new(second.local_addr());
    let replay = client.get(&format!("/v1/reports/{digest}")).unwrap();
    assert_eq!(replay.status, 200, "replay: {:?}", replay.text());
    assert_eq!(replay.body, cold_body, "replay must be byte-identical");
    assert_eq!(
        second.state().store.generations(),
        0,
        "replay must not evaluate anything"
    );

    drop(client);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn error_statuses_are_mapped() {
    let handle = test_server();
    let mut client = Client::new(handle.local_addr());

    let bad_json = client.post_json("/v1/evaluate", "not json").unwrap();
    assert_eq!(bad_json.status, 400);
    assert!(bad_json.text().unwrap().contains("error"));

    let unknown_model = client
        .post_json("/v1/evaluate", r#"{"model":"alexnet"}"#)
        .unwrap();
    assert_eq!(unknown_model.status, 400);
    assert!(unknown_model.text().unwrap().contains("resnet18"));

    let unknown_path = client.get("/v2/evaluate").unwrap();
    assert_eq!(unknown_path.status, 404);

    let wrong_method = client.get("/v1/evaluate").unwrap();
    assert_eq!(wrong_method.status, 405);

    drop(client);
    handle.shutdown();
}

#[test]
fn metrics_track_cache_and_evaluation_counters() {
    let handle = test_server();
    let mut client = Client::new(handle.local_addr());

    client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    let metrics = client.get("/metrics").unwrap();
    let text = metrics.text().unwrap().to_string();
    assert!(
        text.contains("bitwave_serve_evaluations_total 1"),
        "exactly one cold evaluation:\n{text}"
    );
    assert!(
        text.contains("bitwave_serve_cache_hits_total 1"),
        "one hit:\n{text}"
    );
    assert!(
        text.contains("bitwave_serve_cache_misses_total 1"),
        "one miss:\n{text}"
    );
    assert!(
        text.contains("bitwave_serve_weight_generations_total 1"),
        "one weight generation:\n{text}"
    );

    drop(client);
    handle.shutdown();
}

#[test]
fn search_endpoint_misses_then_replays_byte_identical() {
    let handle = test_server();
    let mut client = Client::new(handle.local_addr());
    let body = r#"{"model":"resnet18","sample_cap":1500}"#;

    let cold = client.post_json("/v1/search", body).unwrap();
    assert_eq!(cold.status, 200, "cold: {:?}", cold.text());
    assert_eq!(cold.header("x-bitwave-cache"), Some("miss"));
    let cold_digest = cold.header("x-bitwave-digest").unwrap().to_string();
    let cold_body = cold.text().unwrap().to_string();

    let warm = client.post_json("/v1/search", body).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-bitwave-cache"), Some("hit"));
    assert_eq!(warm.header("x-bitwave-digest"), Some(cold_digest.as_str()));
    assert_eq!(
        warm.text().unwrap(),
        cold_body,
        "cache hits must replay byte-identical search responses"
    );

    // The response carries per-layer winners, fronts and the comparison.
    let value: serde_json::Value = serde_json::from_str(&cold_body).unwrap();
    assert_eq!(
        value.get("digest").and_then(serde_json::Value::as_str),
        Some(cold_digest.as_str())
    );
    let search = value.get("search").expect("search payload");
    let layers = search
        .get("layers")
        .and_then(serde_json::Value::as_array)
        .unwrap();
    assert_eq!(layers.len(), 21, "one row per ResNet18 layer");
    for layer in layers {
        assert!(layer.get("heuristic").is_some());
        let winner = layer.get("search").and_then(|s| s.get("winner")).unwrap();
        assert!(winner.get("cost").and_then(|c| c.get("edp")).is_some());
        assert!(layer
            .get("search")
            .and_then(|s| s.get("front"))
            .and_then(serde_json::Value::as_array)
            .is_some_and(|front| !front.is_empty()));
    }
    let heuristic_edp = search
        .get("heuristic_edp")
        .and_then(serde_json::Value::as_f64)
        .unwrap();
    let searched_edp = search
        .get("searched_edp")
        .and_then(serde_json::Value::as_f64)
        .unwrap();
    assert!(searched_edp <= heuristic_edp);

    // Search digests live in the same replay namespace as reports.
    let replay = client.get(&format!("/v1/reports/{cold_digest}")).unwrap();
    assert_eq!(replay.status, 200);
    assert_eq!(replay.text().unwrap(), cold_body);

    // Searches count their own metric, not evaluations.
    let metrics = client.get("/metrics").unwrap();
    let text = metrics.text().unwrap().to_string();
    assert!(text.contains("bitwave_serve_searches_total 1"), "{text}");
    assert!(text.contains("bitwave_serve_evaluations_total 0"), "{text}");

    // Method and knob errors are mapped.
    let wrong_method = client.get("/v1/search").unwrap();
    assert_eq!(wrong_method.status, 405);
    let bad_knob = client
        .post_json("/v1/search", r#"{"model":"resnet18","mapping":"searched"}"#)
        .unwrap();
    assert_eq!(bad_knob.status, 400);

    drop(client);
    handle.shutdown();
}

#[test]
fn searched_evaluations_are_cached_separately_from_heuristic_ones() {
    let handle = test_server();
    let mut client = Client::new(handle.local_addr());
    let heuristic = client.post_json("/v1/evaluate", RESNET_SMALL).unwrap();
    assert_eq!(heuristic.status, 200);
    let searched = client
        .post_json(
            "/v1/evaluate",
            r#"{"model":"resnet18","sample_cap":2000,"mapping":"searched"}"#,
        )
        .unwrap();
    assert_eq!(searched.status, 200, "searched: {:?}", searched.text());
    assert_eq!(searched.header("x-bitwave-cache"), Some("miss"));
    assert_ne!(
        heuristic.header("x-bitwave-digest"),
        searched.header("x-bitwave-digest"),
        "the mapping policy must be part of the cache address"
    );
    let h: EvaluateResponse = serde_json::from_str(heuristic.text().unwrap()).unwrap();
    let s: EvaluateResponse = serde_json::from_str(searched.text().unwrap()).unwrap();
    let edp = |r: &EvaluateResponse| r.report.total_cycles * r.report.energy.total_pj();
    assert!(edp(&s) <= edp(&h), "searched EDP must not exceed heuristic");

    drop(client);
    handle.shutdown();
}
