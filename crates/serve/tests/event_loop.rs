//! Event-loop behaviour tests: admission control under overload, fast
//! shutdown, per-client rate limiting, and cross-request batching fan-out.

mod common;

use bitwave_serve::client::Client;
use bitwave_serve::server::{start, ServeConfig};
use common::read_response;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Connections over the cap get a best-effort `503` + `Retry-After` and the
/// loop stays responsive — even when the rejected (and the parked) clients
/// never read a byte.  The old acceptor blocked inside its inline `503`
/// write; this pins the fix with a latency bound.
#[test]
fn overload_rejects_with_503_and_accepts_stay_fast() {
    let handle = start(ServeConfig {
        workers: 2,
        queue_capacity: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();

    // Fill the connection table with idle clients that never read or write.
    let parked: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
    std::thread::sleep(Duration::from_millis(100));

    // A burst over the cap: every extra connection must be answered 503
    // promptly, without wedging the loop on any one client's socket.
    let burst_started = Instant::now();
    let mut rejected = Vec::new();
    for _ in 0..12 {
        rejected.push(TcpStream::connect(addr).unwrap());
    }
    std::thread::sleep(Duration::from_millis(100));
    let mut saw_503 = 0;
    for stream in rejected {
        let mut reader = BufReader::new(stream);
        if let Some(response) = read_response(&mut reader) {
            assert_eq!(response.status, 503);
            assert_eq!(response.header("retry-after"), Some("1"));
            assert_eq!(response.header("connection"), Some("close"));
            saw_503 += 1;
        }
    }
    assert!(
        saw_503 >= 8,
        "overflow connections must be told to back off"
    );
    assert!(
        burst_started.elapsed() < Duration::from_secs(3),
        "rejecting a burst must not stall the loop"
    );
    let state = Arc::clone(handle.state());
    assert!(state.metrics.queue_rejections.load(Ordering::Relaxed) >= 8);
    assert_eq!(
        state.metrics.http_errors.load(Ordering::Relaxed),
        0,
        "overflow 503s never reset an admitted connection"
    );

    // Freeing capacity restores service promptly.
    drop(parked);
    std::thread::sleep(Duration::from_millis(100));
    let recovery = Instant::now();
    let mut client = Client::new(addr);
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        recovery.elapsed() < Duration::from_secs(1),
        "accept latency after overload must be bounded, got {:?}",
        recovery.elapsed()
    );
    handle.shutdown();
}

/// Shutdown must complete quickly even with idle keep-alive connections
/// parked on the server — the old implementation relied on a wake-up
/// connection racing a 5 s accept timeout.
#[test]
fn shutdown_with_idle_connections_completes_quickly() {
    let handle = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut client = Client::new(addr);
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    // Park two more idle keep-alive connections.
    let _idle_a = TcpStream::connect(addr).unwrap();
    let _idle_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let begun = Instant::now();
    handle.shutdown();
    assert!(
        begun.elapsed() < Duration::from_millis(500),
        "shutdown must join in well under 500ms, took {:?}",
        begun.elapsed()
    );
}

/// The per-client token bucket answers `429 Too Many Requests` with a
/// `Retry-After` hint once the one-second burst budget is spent, and
/// refills over time.
#[test]
fn rate_limited_clients_get_429_with_retry_after() {
    let handle = start(ServeConfig {
        workers: 2,
        rate_limit: Some(2),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::new(handle.local_addr());
    let body = r#"{"model":"resnet18","sample_cap":400}"#;
    let first = client.post_json("/v1/evaluate", body).unwrap();
    assert_eq!(first.status, 200);
    let second = client.post_json("/v1/evaluate", body).unwrap();
    assert_eq!(second.status, 200, "the burst budget covers two requests");
    let third = client.post_json("/v1/evaluate", body).unwrap();
    assert_eq!(
        third.status, 429,
        "the third request in a burst is over budget"
    );
    let retry_after = third
        .header("retry-after")
        .and_then(|v| v.parse::<u64>().ok())
        .expect("429 must carry Retry-After");
    assert!(retry_after >= 1);
    assert!(String::from_utf8_lossy(&third.body).contains("rate limit"));
    let state = Arc::clone(handle.state());
    assert!(state.metrics.rate_limited.load(Ordering::Relaxed) >= 1);

    // Waiting refills the bucket.
    std::thread::sleep(Duration::from_millis(700));
    let refilled = client.post_json("/v1/evaluate", body).unwrap();
    assert_eq!(refilled.status, 200);
    // Cheap endpoints never spend compute tokens.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    handle.shutdown();
}

/// Concurrent identical cache-missing requests coalesce onto one dispatch:
/// one evaluation runs, every waiter gets byte-identical bytes, riders
/// report `coalesced`, and the `X-Bitwave-Batch` header carries the
/// fan-out size.
#[test]
fn identical_concurrent_requests_share_one_dispatch() {
    const RIDERS_PLUS_TRIGGER: usize = 6;
    let handle = start(ServeConfig {
        workers: 1, // a single worker serialises jobs behind the plug
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let state = Arc::clone(handle.state());

    // Occupy the only worker with an expensive unrelated evaluation so the
    // identical burst piles up behind it deterministically.
    let plug = std::thread::spawn(move || {
        let mut client = Client::new(addr);
        client
            .post_json(
                "/v1/evaluate",
                r#"{"model":"resnet18","seed":99,"sample_cap":60000}"#,
            )
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(60));

    let barrier = Arc::new(Barrier::new(RIDERS_PLUS_TRIGGER));
    let burst: Vec<_> = (0..RIDERS_PLUS_TRIGGER)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                barrier.wait();
                client
                    .post_json(
                        "/v1/evaluate",
                        r#"{"model":"resnet18","seed":7,"sample_cap":800}"#,
                    )
                    .unwrap()
            })
        })
        .collect();
    let responses: Vec<_> = burst.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(plug.join().unwrap().status, 200);

    let bodies: Vec<&[u8]> = responses.iter().map(|r| r.body.as_slice()).collect();
    assert!(responses.iter().all(|r| r.status == 200));
    assert!(
        bodies.iter().all(|b| *b == bodies[0]),
        "every waiter must receive byte-identical bytes"
    );
    let misses = responses
        .iter()
        .filter(|r| r.header("x-bitwave-cache") == Some("miss"))
        .count();
    let coalesced = responses
        .iter()
        .filter(|r| r.header("x-bitwave-cache") == Some("coalesced"))
        .count();
    assert_eq!(misses, 1, "exactly one trigger pays the computation");
    assert_eq!(
        coalesced,
        RIDERS_PLUS_TRIGGER - 1,
        "everyone else rides the in-flight dispatch"
    );
    for response in &responses {
        assert_eq!(
            response.header("x-bitwave-batch"),
            Some(RIDERS_PLUS_TRIGGER.to_string().as_str()),
            "the batch header carries the dispatch's total fan-out"
        );
    }
    assert_eq!(
        state.metrics.evaluations.load(Ordering::Relaxed),
        2,
        "the plug plus exactly one evaluation for the whole burst"
    );
    assert_eq!(
        state.metrics.batch_coalesced.load(Ordering::Relaxed) as usize,
        RIDERS_PLUS_TRIGGER - 1
    );
    assert!(state.metrics.batch_dispatches.load(Ordering::Relaxed) >= 2);
    handle.shutdown();
}

/// An idle keep-alive connection is closed at the configured idle deadline
/// and counted in `bitwave_serve_idle_closed_total` — while an active
/// client on the same server keeps its connection.
#[test]
fn idle_keep_alive_connections_close_and_are_counted() {
    let handle = start(ServeConfig {
        workers: 2,
        keep_alive_idle: Duration::from_millis(200),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let state = Arc::clone(handle.state());

    // Park a connection that never sends a request.
    let idle = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(600));
    assert_eq!(
        state.metrics.idle_closed.load(Ordering::Relaxed),
        1,
        "the parked connection must be closed as idle"
    );
    // The server closed its end: reading yields EOF, not a hang.
    let mut reader = BufReader::new(idle);
    assert!(
        read_response(&mut reader).is_none(),
        "an idle-closed connection carries no response"
    );

    // An active client is not an idle victim, and a request completing
    // normally does not bump the counter.
    let mut client = Client::new(addr);
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    assert_eq!(state.metrics.idle_closed.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

/// A connection that starts a request but never finishes it is answered
/// `408 Request Timeout` at the configured read deadline and counted in
/// `bitwave_serve_request_timeout_408_total`.
#[test]
fn partial_requests_get_408_at_the_read_deadline_and_are_counted() {
    let handle = start(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(200),
        keep_alive_idle: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let state = Arc::clone(handle.state());

    // Send an incomplete request head and stall.
    let mut slow = TcpStream::connect(addr).unwrap();
    std::io::Write::write_all(&mut slow, b"GET /healthz HTTP/1.1\r\nhost: x").unwrap();
    let mut reader = BufReader::new(slow);
    let response = read_response(&mut reader).expect("the server must answer before closing");
    assert_eq!(response.status, 408);
    assert_eq!(response.header("connection"), Some("close"));
    assert_eq!(
        state.metrics.request_timeout_408.load(Ordering::Relaxed),
        1,
        "the stalled request must be counted"
    );
    handle.shutdown();
}

/// A peer that stops draining its response is dropped at the configured
/// write deadline and counted in
/// `bitwave_serve_stalled_writer_dropped_total`.
#[test]
fn stalled_writers_are_dropped_at_the_write_deadline_and_counted() {
    let handle = start(ServeConfig {
        workers: 2,
        write_timeout: Duration::from_millis(250),
        keep_alive_idle: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let state = Arc::clone(handle.state());

    // Pipeline many /metrics requests without ever reading a byte: the
    // responses overrun the socket's send buffer, the write stalls, and the
    // deadline must fire.
    let mut greedy = TcpStream::connect(addr).unwrap();
    let request = b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n";
    for _ in 0..2000 {
        if std::io::Write::write_all(&mut greedy, request).is_err() {
            break; // server already dropped us — also fine
        }
    }
    let waited = Instant::now();
    while state.metrics.stalled_writer_dropped.load(Ordering::Relaxed) == 0
        && waited.elapsed() < Duration::from_secs(5)
    {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(
        state.metrics.stalled_writer_dropped.load(Ordering::Relaxed),
        1,
        "the never-reading client must be dropped and counted"
    );
    // The loop stayed healthy for everyone else.
    let mut client = Client::new(addr);
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    handle.shutdown();
}

/// Distinct requests sharing one `(model, seed, sample_cap)` weight set
/// gather behind the executing batch and dispatch as a single follow-up
/// job instead of racing for workers.
#[test]
fn same_weight_set_requests_gather_into_one_follow_up_job() {
    let handle = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let state = Arc::clone(handle.state());

    // First request for the weight set dispatches immediately and holds the
    // single worker; two different accelerators over the same weights must
    // gather and then ship as one job.
    let first = std::thread::spawn(move || {
        let mut client = Client::new(addr);
        client
            .post_json(
                "/v1/evaluate",
                r#"{"model":"resnet18","seed":3,"sample_cap":60000,"accelerator":"bitwave"}"#,
            )
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(60));
    let followers: Vec<_> = ["stripes", "bitlet"]
        .into_iter()
        .map(|accelerator| {
            let body = format!(
                r#"{{"model":"resnet18","seed":3,"sample_cap":60000,"accelerator":"{accelerator}"}}"#
            );
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                client.post_json("/v1/evaluate", &body).unwrap()
            })
        })
        .collect();
    let first = first.join().unwrap();
    let followers: Vec<_> = followers.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(first.status, 200);
    assert!(followers.iter().all(|r| r.status == 200));
    assert!(
        followers
            .iter()
            .all(|r| r.header("x-bitwave-cache") == Some("miss")),
        "distinct digests each compute, but inside a shared dispatch"
    );
    let batch_sizes: Vec<_> = followers
        .iter()
        .map(|r| r.header("x-bitwave-batch").map(str::to_string))
        .collect();
    assert!(
        batch_sizes.iter().all(|s| s.as_deref() == Some("2")),
        "both followers must share one follow-up dispatch, got {batch_sizes:?}"
    );
    assert_eq!(
        state.store.generations(),
        1,
        "one weight set serves the whole gathered batch"
    );
    handle.shutdown();
}
