//! Task-quality proxy (accuracy / F1 / PESQ).
//!
//! The paper evaluates Bit-Flip and PTQ against dataset metrics (ImageNet
//! top-1, SQuAD F1, PESQ).  Without those datasets we estimate the quality
//! drop from the weight perturbation each technique induces: per layer we
//! measure the relative RMS error between original and modified weights,
//! weight it by the layer's parameter share and its perturbation
//! *sensitivity* (early/weight-light layers are more sensitive, Fig. 6a–d),
//! and map the aggregate through a calibrated gain onto the metric's scale.
//!
//! The proxy preserves exactly the properties Fig. 6 demonstrates:
//!
//! * flipping insensitive, weight-heavy layers costs little quality;
//! * flipping sensitive early layers costs much more;
//! * at matched compression ratio, uniform PTQ (which perturbs *every*
//!   weight, including the sensitive layers, by a full quantisation step)
//!   degrades quality faster than SM+Bit-Flip.
//!
//! Absolute dataset numbers are out of scope (see DESIGN.md §2).

use crate::models::{NetworkSpec, TaskKind};
use crate::weights::NetworkWeights;
use bitwave_core::error::CoreError;
use bitwave_core::prelude::FlipStrategy;
use serde::{Deserialize, Serialize};

/// The quality metric a network is evaluated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityMetric {
    /// ImageNet-style top-1 accuracy in percent.
    TopOneAccuracy,
    /// Perceptual Evaluation of Speech Quality score (1.0–4.5).
    Pesq,
    /// SQuAD-style F1 score in percent.
    F1,
}

impl QualityMetric {
    /// Selects the metric for a task kind.
    pub fn for_task(task: TaskKind) -> Self {
        match task {
            TaskKind::Classification => QualityMetric::TopOneAccuracy,
            TaskKind::SpeechEnhancement => QualityMetric::Pesq,
            TaskKind::QuestionAnswering => QualityMetric::F1,
        }
    }

    /// Full scale of the metric, used to translate a relative perturbation
    /// into metric units.
    pub fn range(&self) -> f64 {
        match self {
            QualityMetric::TopOneAccuracy | QualityMetric::F1 => 100.0,
            QualityMetric::Pesq => 4.5,
        }
    }

    /// Human-readable metric name.
    pub fn name(&self) -> &'static str {
        match self {
            QualityMetric::TopOneAccuracy => "top-1 accuracy",
            QualityMetric::Pesq => "PESQ",
            QualityMetric::F1 => "F1",
        }
    }
}

/// The proxy evaluator for one network.
#[derive(Debug, Clone)]
pub struct AccuracyProxy {
    network: String,
    metric: QualityMetric,
    baseline_quality: f64,
    /// `(layer name, sensitivity, weight share)` rows.
    layer_profile: Vec<(String, f64, f64)>,
    baseline: NetworkWeights,
    gain: f64,
}

impl AccuracyProxy {
    /// Default perturbation-to-quality gain.  Calibrated so that flipping the
    /// weight-heavy layers of the CNNs to 4–7 zero columns costs well under
    /// one accuracy point (the paper's operating regime), while aggressive
    /// uniform PTQ costs several points.
    pub const DEFAULT_GAIN: f64 = 0.2;

    /// Creates a proxy from a network specification and its baseline
    /// (unmodified) weights.
    pub fn new(spec: &NetworkSpec, baseline: NetworkWeights) -> Self {
        let total_weights: f64 = spec.total_weights() as f64;
        let layer_profile = spec
            .layers
            .iter()
            .map(|l| {
                (
                    l.name.clone(),
                    l.sensitivity,
                    l.weight_count() as f64 / total_weights,
                )
            })
            .collect();
        Self {
            network: spec.name.clone(),
            metric: QualityMetric::for_task(spec.task),
            baseline_quality: spec.baseline_quality,
            layer_profile,
            baseline,
            gain: Self::DEFAULT_GAIN,
        }
    }

    /// Overrides the perturbation-to-quality gain (builder style).
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.gain = gain;
        self
    }

    /// The metric this proxy reports.
    pub fn metric(&self) -> QualityMetric {
        self.metric
    }

    /// The baseline (Int8, unmodified) model quality.
    pub fn baseline_quality(&self) -> f64 {
        self.baseline_quality
    }

    /// The baseline weights the proxy compares against.
    pub fn baseline_weights(&self) -> &NetworkWeights {
        &self.baseline
    }

    /// Estimated quality of a modified weight set.
    pub fn quality_of(&self, modified: &NetworkWeights) -> f64 {
        let perturbation = self.weighted_perturbation(modified);
        (self.baseline_quality - self.gain * self.metric.range() * perturbation).max(0.0)
    }

    /// Estimated quality drop (baseline − modified), in metric units.
    pub fn quality_drop_of(&self, modified: &NetworkWeights) -> f64 {
        self.baseline_quality - self.quality_of(modified)
    }

    /// Estimated quality after applying a Bit-Flip strategy to the baseline
    /// weights — the `Inference(BitFlip(M, S), D)` step of Algorithm 1.
    ///
    /// # Errors
    ///
    /// Propagates grouping/flip errors from the Bit-Flip kernel.
    pub fn quality_of_strategy(&self, strategy: &FlipStrategy) -> Result<f64, CoreError> {
        let flipped = self.baseline.apply_flip_strategy(strategy)?;
        Ok(self.quality_of(&flipped))
    }

    /// Estimated quality after uniform PTQ of the given layers to `bits`
    /// bits (all layers when `layer_filter` is `None`).
    pub fn quality_of_ptq(&self, bits: u8, layer_filter: Option<&[String]>) -> f64 {
        let ptq = self.baseline.apply_ptq(bits, layer_filter);
        self.quality_of(&ptq)
    }

    /// The sensitivity- and share-weighted relative perturbation between the
    /// baseline and a modified weight set (0.0 when identical).
    pub fn weighted_perturbation(&self, modified: &NetworkWeights) -> f64 {
        let mut acc = 0.0f64;
        for (name, sensitivity, share) in &self.layer_profile {
            let (Some(orig), Some(new)) = (self.baseline.layer(name), modified.layer(name)) else {
                continue;
            };
            let rel = relative_rms_error_i8(orig.data(), new.data());
            acc += share * (sensitivity * rel).powi(2);
        }
        acc.sqrt()
    }

    /// The network this proxy evaluates.
    pub fn network(&self) -> &str {
        &self.network
    }
}

/// Relative RMS error between two Int8 slices (`‖a−b‖ / ‖a‖`).
pub fn relative_rms_error_i8(reference: &[i8], modified: &[i8]) -> f64 {
    assert_eq!(
        reference.len(),
        modified.len(),
        "weight tensors must have equal length"
    );
    if reference.is_empty() {
        return 0.0;
    }
    let mut err = 0.0f64;
    let mut base = 0.0f64;
    for (&a, &b) in reference.iter().zip(modified) {
        let d = f64::from(a) - f64::from(b);
        err += d * d;
        base += f64::from(a) * f64::from(a);
    }
    if base == 0.0 {
        if err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (err / base).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{bert_base, resnet18, TaskKind};
    use bitwave_core::group::GroupSize;

    fn resnet_proxy() -> AccuracyProxy {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 11, 4_000);
        AccuracyProxy::new(&spec, weights)
    }

    #[test]
    fn metric_selection_and_ranges() {
        assert_eq!(
            QualityMetric::for_task(TaskKind::Classification),
            QualityMetric::TopOneAccuracy
        );
        assert_eq!(
            QualityMetric::for_task(TaskKind::SpeechEnhancement),
            QualityMetric::Pesq
        );
        assert_eq!(
            QualityMetric::for_task(TaskKind::QuestionAnswering),
            QualityMetric::F1
        );
        assert_eq!(QualityMetric::Pesq.range(), 4.5);
        assert_eq!(QualityMetric::F1.range(), 100.0);
        assert_eq!(QualityMetric::TopOneAccuracy.name(), "top-1 accuracy");
    }

    #[test]
    fn unmodified_weights_keep_baseline_quality() {
        let proxy = resnet_proxy();
        let quality = proxy.quality_of(proxy.baseline_weights());
        assert!((quality - proxy.baseline_quality()).abs() < 1e-9);
        assert_eq!(proxy.weighted_perturbation(proxy.baseline_weights()), 0.0);
    }

    #[test]
    fn flipping_heavy_layers_costs_little() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 11, 4_000);
        let proxy = AccuracyProxy::new(&spec, weights);
        let mut strategy = FlipStrategy::new();
        for layer in ["layer4.0.conv1", "layer4.1.conv1", "layer4.1.conv2", "fc"] {
            strategy.set(layer, GroupSize::G16, 5);
        }
        let quality = proxy.quality_of_strategy(&strategy).unwrap();
        let drop = proxy.baseline_quality() - quality;
        assert!(drop >= 0.0);
        assert!(
            drop < 2.0,
            "flipping weight-heavy layers should cost <2 points, got {drop}"
        );
    }

    #[test]
    fn flipping_sensitive_early_layer_costs_more_per_weight() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 11, 4_000);
        let proxy = AccuracyProxy::new(&spec, weights);

        let mut early = FlipStrategy::new();
        early.set("conv1", GroupSize::G8, 6);
        let mut late = FlipStrategy::new();
        late.set("layer4.1.conv2", GroupSize::G8, 6);

        let drop_early = proxy.baseline_quality() - proxy.quality_of_strategy(&early).unwrap();
        let drop_late = proxy.baseline_quality() - proxy.quality_of_strategy(&late).unwrap();
        // conv1 is tiny but very sensitive; per flipped weight it must cost more.
        let early_weights = spec.layer("conv1").unwrap().weight_count() as f64;
        let late_weights = spec.layer("layer4.1.conv2").unwrap().weight_count() as f64;
        assert!(
            drop_early / early_weights > drop_late / late_weights,
            "early layers should be more sensitive per weight"
        );
    }

    #[test]
    fn ptq_is_worse_than_bitflip_at_matched_compression() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 11, 4_000);
        let proxy = AccuracyProxy::new(&spec, weights);

        // Bit-Flip to 4 zero columns is roughly a 2x compression of the
        // stored columns; PTQ to 4 bits is exactly 2x.
        let mut strategy = FlipStrategy::new();
        for layer in spec.layer_names() {
            strategy.set(&layer, GroupSize::G16, 4);
        }
        let q_flip = proxy.quality_of_strategy(&strategy).unwrap();
        let q_ptq = proxy.quality_of_ptq(4, None);
        assert!(
            q_flip > q_ptq,
            "SM+Bit-Flip ({q_flip:.2}) should beat PTQ ({q_ptq:.2}) at matched CR"
        );
    }

    #[test]
    fn more_zero_columns_monotonically_reduce_quality() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 11, 4_000);
        let proxy = AccuracyProxy::new(&spec, weights);
        let mut last = f64::INFINITY;
        for z in 0..=7u32 {
            let mut strategy = FlipStrategy::new();
            strategy.set("layer4.1.conv2", GroupSize::G16, z);
            let q = proxy.quality_of_strategy(&strategy).unwrap();
            assert!(
                q <= last + 1e-9,
                "quality should not improve with more flips"
            );
            last = q;
        }
    }

    #[test]
    fn bert_proxy_reports_f1() {
        let spec = bert_base();
        let weights = NetworkWeights::generate_sampled(&spec, 5, 2_000);
        let proxy = AccuracyProxy::new(&spec, weights);
        assert_eq!(proxy.metric(), QualityMetric::F1);
        assert_eq!(proxy.network(), "Bert-Base");
        assert!((proxy.baseline_quality() - 88.5).abs() < 1e-9);
    }

    #[test]
    fn gain_scales_the_drop() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 11, 4_000);
        let proxy_low = AccuracyProxy::new(&spec, weights.clone()).with_gain(0.1);
        let proxy_high = AccuracyProxy::new(&spec, weights).with_gain(0.4);
        let ptq_low = proxy_low.baseline_quality() - proxy_low.quality_of_ptq(3, None);
        let ptq_high = proxy_high.baseline_quality() - proxy_high.quality_of_ptq(3, None);
        assert!(ptq_high > ptq_low);
        assert!((ptq_high / ptq_low - 4.0).abs() < 0.2);
    }

    #[test]
    fn relative_rms_error_conventions() {
        assert_eq!(relative_rms_error_i8(&[], &[]), 0.0);
        assert_eq!(relative_rms_error_i8(&[0, 0], &[0, 0]), 0.0);
        assert_eq!(relative_rms_error_i8(&[0, 0], &[1, 0]), f64::INFINITY);
        let e = relative_rms_error_i8(&[10, -10], &[11, -9]);
        assert!((e - 0.1).abs() < 1e-9);
    }
}
