//! The four benchmark networks of the paper's evaluation (Fig. 12 left):
//! ResNet18, MobileNetV2, CNN-LSTM and BERT-Base.
//!
//! The layer shapes of ResNet18, MobileNetV2 and BERT-Base follow the
//! published architectures exactly.  The CNN-LSTM is the paper authors'
//! in-house audio-denoising model (never published); we define a
//! representative CNN-LSTM in which the two LSTM layers hold ≈80 % of the
//! weights, matching the only structural facts the paper states about it
//! (Fig. 6c/g: "applying 4 to 7 zero columns on LSTM.0 and LSTM.1 (80 %
//! weights)").

use crate::layer::{LayerKind, LayerSpec};
use bitwave_tensor::synth::{ActivationKind, LayerWeightProfile, WeightDistribution};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of task a network solves, which determines the quality metric
/// the proxy reports (Fig. 6 uses accuracy, PESQ and F1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// ImageNet-style classification (top-1 accuracy, %).
    Classification,
    /// Speech enhancement (PESQ score, 1.0–4.5).
    SpeechEnhancement,
    /// Extractive question answering (F1 score, %).
    QuestionAnswering,
}

/// A full benchmark network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Network name as used in the paper's figures.
    pub name: String,
    /// Task kind (selects the quality metric).
    pub task: TaskKind,
    /// Baseline quality of the Int8 model (top-1 %, PESQ or F1 %).
    pub baseline_quality: f64,
    /// The layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Total number of MAC operations of one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::macs).sum()
    }

    /// Total GFLOPs (2 FLOPs per MAC), the number Fig. 12 quotes.
    pub fn gflops(&self) -> f64 {
        self.total_macs() as f64 * 2.0 / 1e9
    }

    /// Total number of weight parameters.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(LayerSpec::weight_count).sum()
    }

    /// Parameter size in MB at Int8 (1 byte per weight).
    pub fn weight_megabytes(&self) -> f64 {
        self.total_weights() as f64 / 1e6
    }

    /// Looks a layer up by name.
    pub fn layer(&self, name: &str) -> Option<&LayerSpec> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Layer names in execution order.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name.clone()).collect()
    }

    /// The layers holding the top `fraction` of the network's weights,
    /// heaviest first — the paper's "weight-heavy layers" that Bit-Flip
    /// targets first (e.g. ResNet18 layer4 + fc ≈ 70 % of weights).
    pub fn weight_heavy_layers(&self, fraction: f64) -> Vec<&LayerSpec> {
        let mut sorted: Vec<&LayerSpec> = self.layers.iter().collect();
        sorted.sort_by_key(|l| std::cmp::Reverse(l.weight_count()));
        let target = (self.total_weights() as f64 * fraction.clamp(0.0, 1.0)) as u64;
        let mut acc = 0u64;
        let mut out = Vec::new();
        for layer in sorted {
            if acc >= target {
                break;
            }
            acc += layer.weight_count();
            out.push(layer);
        }
        out
    }

    /// One row of the Fig. 12 workload table.
    pub fn summary(&self) -> WorkloadSummary {
        WorkloadSummary {
            name: self.name.clone(),
            task: self.task,
            layers: self.layers.len(),
            gflops: self.gflops(),
            params_millions: self.total_weights() as f64 / 1e6,
            baseline_quality: self.baseline_quality,
        }
    }
}

/// Summary row of the Fig. 12 workload table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Network name.
    pub name: String,
    /// Task kind.
    pub task: TaskKind,
    /// Number of weight layers.
    pub layers: usize,
    /// GFLOPs per inference.
    pub gflops: f64,
    /// Parameter count in millions.
    pub params_millions: f64,
    /// Baseline model quality.
    pub baseline_quality: f64,
}

/// Sensitivity heuristic shared by the CNN models: early, weight-light layers
/// are more sensitive to perturbation than late, weight-heavy ones
/// (observed in Fig. 6a–c).
fn cnn_sensitivity(layer_index: usize, total_layers: usize) -> f64 {
    let depth_fraction = layer_index as f64 / total_layers.max(1) as f64;
    // 1.0 for the first layer decaying towards 0.25 for the last.
    1.0 - 0.75 * depth_fraction
}

/// Builds the ResNet18 specification (ImageNet, 224×224 input).
pub fn resnet18() -> NetworkSpec {
    let mut layers = Vec::new();
    let total = 21;
    let mut idx = 0usize;
    let mut sens = |i: &mut usize| {
        let s = cnn_sensitivity(*i, total);
        *i += 1;
        s
    };

    layers.push(
        LayerSpec::conv2d("conv1", 3, 64, 7, 2, 3, 224, sens(&mut idx))
            .with_weight_profile(LayerWeightProfile::weight_light()),
    );

    // Four residual stages of two BasicBlocks each.
    let stage = |layers: &mut Vec<LayerSpec>,
                 idx: &mut usize,
                 sens: &mut dyn FnMut(&mut usize) -> f64,
                 stage_no: usize,
                 in_ch: usize,
                 out_ch: usize,
                 in_hw: usize,
                 stride: usize| {
        let out_hw = in_hw / stride;
        // Block 0 (possibly strided, with a 1x1 downsample projection).
        layers.push(LayerSpec::conv2d(
            format!("layer{stage_no}.0.conv1"),
            in_ch,
            out_ch,
            3,
            stride,
            1,
            in_hw,
            sens(idx),
        ));
        layers.push(LayerSpec::conv2d(
            format!("layer{stage_no}.0.conv2"),
            out_ch,
            out_ch,
            3,
            1,
            1,
            out_hw,
            sens(idx),
        ));
        if stride != 1 || in_ch != out_ch {
            layers.push(LayerSpec::conv2d(
                format!("layer{stage_no}.0.downsample"),
                in_ch,
                out_ch,
                1,
                stride,
                0,
                in_hw,
                sens(idx),
            ));
        }
        // Block 1.
        layers.push(LayerSpec::conv2d(
            format!("layer{stage_no}.1.conv1"),
            out_ch,
            out_ch,
            3,
            1,
            1,
            out_hw,
            sens(idx),
        ));
        layers.push(LayerSpec::conv2d(
            format!("layer{stage_no}.1.conv2"),
            out_ch,
            out_ch,
            3,
            1,
            1,
            out_hw,
            sens(idx),
        ));
    };

    stage(&mut layers, &mut idx, &mut sens, 1, 64, 64, 56, 1);
    stage(&mut layers, &mut idx, &mut sens, 2, 64, 128, 56, 2);
    stage(&mut layers, &mut idx, &mut sens, 3, 128, 256, 28, 2);
    stage(&mut layers, &mut idx, &mut sens, 4, 256, 512, 14, 2);

    layers.push(LayerSpec::linear("fc", 512, 1000, 1, 0.25));

    NetworkSpec {
        name: "ResNet18".to_string(),
        task: TaskKind::Classification,
        baseline_quality: 69.76,
        layers,
    }
}

/// Builds the MobileNetV2 specification (ImageNet, 224×224 input).
pub fn mobilenet_v2() -> NetworkSpec {
    let mut layers = Vec::new();
    // (expansion t, output channels c, repeats n, stride s) — Table 2 of the
    // MobileNetV2 paper.
    let config: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];

    let mut layer_no = 0usize;
    let total_convs = 52;
    let next_sens = |layer_no: &mut usize| {
        let s = cnn_sensitivity(*layer_no, total_convs);
        *layer_no += 1;
        s
    };

    layers.push(
        LayerSpec::conv2d(
            "features.0.conv",
            3,
            32,
            3,
            2,
            1,
            224,
            next_sens(&mut layer_no),
        )
        .with_weight_profile(LayerWeightProfile::weight_light()),
    );

    let mut in_ch = 32usize;
    let mut hw = 112usize;
    let mut block_no = 0usize;
    for &(t, c, n, s) in &config {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let expanded = in_ch * t;
            block_no += 1;
            if t != 1 {
                layers.push(LayerSpec::pointwise(
                    format!("block{block_no}.expand"),
                    in_ch,
                    expanded,
                    hw,
                    next_sens(&mut layer_no),
                ));
            }
            let out_hw = if stride == 2 { hw / 2 } else { hw };
            layers.push(LayerSpec::depthwise(
                format!("block{block_no}.dwconv"),
                expanded,
                3,
                stride,
                1,
                hw,
                next_sens(&mut layer_no),
            ));
            layers.push(LayerSpec::pointwise(
                format!("block{block_no}.project"),
                expanded,
                c,
                out_hw,
                next_sens(&mut layer_no),
            ));
            in_ch = c;
            hw = out_hw;
        }
    }

    layers.push(LayerSpec::pointwise(
        "features.18.conv",
        in_ch,
        1280,
        hw,
        next_sens(&mut layer_no),
    ));
    layers.push(LayerSpec::linear("classifier", 1280, 1000, 1, 0.3));

    NetworkSpec {
        name: "MobileNetV2".to_string(),
        task: TaskKind::Classification,
        baseline_quality: 71.88,
        layers,
    }
}

/// Builds the CNN-LSTM audio-denoising specification.
///
/// The authors' model is private (reference [6] of the paper); this
/// substitute keeps the two structural facts the paper relies on: the model
/// mixes convolutional front-end layers with two LSTM layers, and `LSTM.0` +
/// `LSTM.1` hold roughly 80 % of the weights.
pub fn cnn_lstm() -> NetworkSpec {
    let timesteps = 100; // ~1 s of 10 ms audio frames
    let freq_bins = 257; // 512-point STFT magnitude spectrum
    let mut layers = Vec::new();

    // Convolutional front-end over the spectrogram (treated as 1-D convs
    // along time, i.e. OY = 1).
    let conv_channels = [(1usize, 64usize), (64, 128), (128, 64)];
    for (i, &(cin, cout)) in conv_channels.iter().enumerate() {
        let mut spec = LayerSpec::conv2d(
            format!("conv.{i}"),
            cin,
            cout,
            3,
            1,
            1,
            16,
            1.0 - 0.15 * i as f64,
        );
        // Flatten the spectrogram geometry into a time-only convolution.
        spec.dims.oy = 1;
        spec.dims.ox = timesteps;
        spec.dims.fy = 1;
        spec.dims.fx = 3;
        layers.push(spec);
    }

    // Two stacked LSTM layers dominate the weight budget (≈80 %).
    let lstm_input = 64 * 32; // 64 channels × 32 pooled frequency features
    layers.push(LayerSpec::lstm_gates(
        "lstm.0", lstm_input, 400, timesteps, 0.45,
    ));
    layers.push(LayerSpec::lstm_gates("lstm.1", 400, 400, timesteps, 0.4));

    // Mask-estimation head.
    layers.push(
        LayerSpec::linear("fc.1", 400, 2048, timesteps, 0.55)
            .with_activation(ActivationKind::Gaussianlike { std: 1.0 }),
    );
    layers.push(
        LayerSpec::linear("fc.mask", 2048, freq_bins, timesteps, 0.6)
            .with_activation(ActivationKind::Gaussianlike { std: 1.0 }),
    );

    NetworkSpec {
        name: "CNN-LSTM".to_string(),
        task: TaskKind::SpeechEnhancement,
        baseline_quality: 2.95, // PESQ of the Int8 baseline
        layers,
    }
}

/// Builds the BERT-Base specification (12 encoder layers, hidden 768,
/// FFN 3072), evaluated at the paper's input token size of 4 (Fig. 13).
pub fn bert_base() -> NetworkSpec {
    bert_base_with_tokens(4)
}

/// BERT-Base with an explicit input token count (the paper uses 4; larger
/// token counts are useful for utilisation experiments).
pub fn bert_base_with_tokens(tokens: usize) -> NetworkSpec {
    let hidden = 768usize;
    let ffn = 3072usize;
    let mut layers = Vec::new();
    for l in 0..12usize {
        // The paper observes encoder layers 1-3 to be especially sensitive
        // (Fig. 6d); encode that in the sensitivity profile.
        let sensitivity = if (1..=3).contains(&l) { 1.0 } else { 0.35 };
        let profile = LayerWeightProfile {
            distribution: WeightDistribution::Gaussian { std: 0.035 },
            dynamic_range_utilisation: 0.95,
        };
        for proj in ["q", "k", "v", "output"] {
            layers.push(
                LayerSpec::transformer(
                    format!("bert.encoder.layer.{l}.attention.{proj}"),
                    LayerKind::AttentionProjection,
                    hidden,
                    hidden,
                    tokens,
                    sensitivity,
                )
                .with_weight_profile(profile),
            );
        }
        layers.push(
            LayerSpec::transformer(
                format!("bert.encoder.layer.{l}.intermediate"),
                LayerKind::FeedForward,
                hidden,
                ffn,
                tokens,
                sensitivity * 0.8,
            )
            .with_weight_profile(profile),
        );
        layers.push(
            LayerSpec::transformer(
                format!("bert.encoder.layer.{l}.ffn_output"),
                LayerKind::FeedForward,
                ffn,
                hidden,
                tokens,
                sensitivity * 0.8,
            )
            .with_weight_profile(profile),
        );
    }
    layers.push(LayerSpec::transformer(
        "qa_outputs",
        LayerKind::Linear,
        hidden,
        2,
        tokens,
        0.3,
    ));

    NetworkSpec {
        name: "Bert-Base".to_string(),
        task: TaskKind::QuestionAnswering,
        baseline_quality: 88.5, // SQuAD v1.1 F1 of the Int8 baseline
        layers,
    }
}

/// All four benchmark networks in the order the paper's figures use.
pub fn all_networks() -> Vec<NetworkSpec> {
    vec![resnet18(), mobilenet_v2(), cnn_lstm(), bert_base()]
}

/// Canonical registry names of the benchmark networks, in the order the
/// paper's figures use.  These are the identifiers [`by_name`] resolves and
/// the evaluation service exposes under `GET /v1/models`.
pub const MODEL_NAMES: [&str; 4] = ["resnet18", "mobilenet-v2", "cnn-lstm", "bert-base"];

/// A model name that [`by_name`] could not resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModelError {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown model `{}` (known models: {})",
            self.name,
            MODEL_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownModelError {}

/// Looks a benchmark network up by its canonical registry name.
///
/// Matching is case-insensitive and treats `_` and `-` as equivalent, so
/// `ResNet18`, `resnet18`, `mobilenet_v2` and `mobilenet-v2` all resolve.
///
/// # Errors
///
/// Returns [`UnknownModelError`] (listing the known names) when the name
/// does not resolve.
pub fn by_name(name: &str) -> Result<NetworkSpec, UnknownModelError> {
    let canonical: String = name
        .trim()
        .chars()
        .map(|c| match c {
            '_' => '-',
            c => c.to_ascii_lowercase(),
        })
        .collect();
    match canonical.as_str() {
        "resnet18" => Ok(resnet18()),
        "mobilenet-v2" | "mobilenetv2" => Ok(mobilenet_v2()),
        "cnn-lstm" | "cnnlstm" => Ok(cnn_lstm()),
        "bert-base" | "bertbase" | "bert" => Ok(bert_base()),
        _ => Err(UnknownModelError {
            name: name.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_parameter_and_flop_budget() {
        let net = resnet18();
        // Conv + fc weights of ResNet18 total ≈ 11.17 M parameters
        // (the canonical 11.69 M count includes BN and biases, which carry no
        // MACs on the accelerator).
        let params = net.total_weights();
        assert!(
            (11_000_000..11_800_000).contains(&params),
            "unexpected ResNet18 parameter count {params}"
        );
        // ≈ 1.82 GMACs → 3.6 GFLOPs.
        let gflops = net.gflops();
        assert!(
            (3.0..4.0).contains(&gflops),
            "unexpected ResNet18 GFLOPs {gflops}"
        );
        assert_eq!(net.layers.len(), 21);
    }

    #[test]
    fn mobilenet_v2_parameter_and_flop_budget() {
        let net = mobilenet_v2();
        let params = net.total_weights();
        // ≈ 3.4 M conv/fc parameters.
        assert!(
            (2_900_000..3_800_000).contains(&params),
            "unexpected MobileNetV2 parameter count {params}"
        );
        let gflops = net.gflops();
        assert!(
            (0.5..0.7).contains(&gflops),
            "unexpected MobileNetV2 GFLOPs {gflops}"
        );
        // 17 inverted-residual blocks plus stem, head and classifier.
        assert!(net.layers.iter().any(|l| l.kind.is_depthwise()));
    }

    #[test]
    fn bert_base_parameter_budget() {
        let net = bert_base();
        let params = net.total_weights();
        // Encoder-only matmul weights: 12 * (4*768*768 + 2*768*3072) ≈ 85 M.
        assert!(
            (84_000_000..87_000_000).contains(&params),
            "unexpected BERT parameter count {params}"
        );
        assert_eq!(net.layers.len(), 12 * 6 + 1);
        // At 4 tokens the compute is small even though the model is large.
        assert!(net.gflops() < 1.0);
    }

    #[test]
    fn cnn_lstm_is_lstm_dominated() {
        let net = cnn_lstm();
        let total = net.total_weights() as f64;
        let lstm: u64 = net
            .layers
            .iter()
            .filter(|l| l.name.starts_with("lstm"))
            .map(LayerSpec::weight_count)
            .sum();
        let share = lstm as f64 / total;
        assert!(
            (0.7..0.95).contains(&share),
            "LSTM layers should hold ~80% of weights, got {share:.2}"
        );
    }

    #[test]
    fn weight_heavy_layers_cover_requested_fraction() {
        let net = resnet18();
        let heavy = net.weight_heavy_layers(0.7);
        let covered: u64 = heavy.iter().map(|l| l.weight_count()).sum();
        assert!(covered as f64 >= 0.7 * net.total_weights() as f64);
        // The heaviest layers of ResNet18 live in layer4 and fc.
        assert!(heavy.iter().all(|l| l.name.starts_with("layer4")
            || l.name == "fc"
            || l.name.starts_with("layer3")));
    }

    #[test]
    fn summaries_have_sensible_fields() {
        for net in all_networks() {
            let s = net.summary();
            assert_eq!(s.name, net.name);
            assert!(s.gflops > 0.0);
            assert!(s.params_millions > 0.0);
            assert!(s.layers > 5);
            assert!(net.layer(&net.layers[0].name).is_some());
            assert_eq!(net.layer_names().len(), net.layers.len());
        }
    }

    #[test]
    fn sensitivity_decreases_with_depth_for_cnns() {
        let net = resnet18();
        let first = net.layers.first().unwrap().sensitivity;
        let last_conv = net
            .layers
            .iter()
            .rfind(|l| !l.kind.is_matmul())
            .unwrap()
            .sensitivity;
        assert!(first > last_conv);
    }

    #[test]
    fn bert_sensitive_layers_match_paper_observation() {
        let net = bert_base();
        let layer1 = net
            .layer("bert.encoder.layer.1.attention.q")
            .unwrap()
            .sensitivity;
        let layer10 = net
            .layer("bert.encoder.layer.10.attention.q")
            .unwrap()
            .sensitivity;
        assert!(layer1 > layer10);
    }

    #[test]
    fn registry_resolves_every_canonical_name() {
        for name in MODEL_NAMES {
            assert!(by_name(name).is_ok(), "registry must resolve `{name}`");
        }
        assert_eq!(MODEL_NAMES.len(), all_networks().len());
    }

    #[test]
    fn registry_is_case_and_separator_insensitive() {
        assert_eq!(by_name("ResNet18").unwrap().name, "ResNet18");
        assert_eq!(by_name("mobilenet_v2").unwrap().name, "MobileNetV2");
        assert_eq!(by_name("CNN-LSTM").unwrap().name, "CNN-LSTM");
        assert_eq!(by_name("bert").unwrap().name, "Bert-Base");
    }

    #[test]
    fn registry_rejects_unknown_names_with_the_known_list() {
        let err = by_name("alexnet").unwrap_err();
        assert_eq!(err.name, "alexnet");
        let msg = err.to_string();
        assert!(msg.contains("alexnet") && msg.contains("resnet18"));
    }

    #[test]
    fn token_count_scales_bert_compute_linearly() {
        let a = bert_base_with_tokens(4).total_macs();
        let b = bert_base_with_tokens(8).total_macs();
        assert_eq!(b, a * 2);
    }
}
