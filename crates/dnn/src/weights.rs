//! Synthetic Int8 network weights.
//!
//! Each layer's weights are drawn from its [`LayerWeightProfile`] and
//! quantised with a per-layer dynamic-range utilisation: a layer that only
//! uses 35 % of the Int8 range produces mostly small-magnitude codes and
//! therefore high bit-column sparsity, while a transformer layer using 95 %
//! of the range has few zero columns — reproducing the qualitative sparsity
//! spread the paper reports across ResNet18, MobileNetV2, CNN-LSTM and
//! BERT-Base (Fig. 1, Fig. 6).

use crate::layer::LayerSpec;
use crate::models::NetworkSpec;
use bitwave_core::bitflip::flip_tensor;
use bitwave_core::error::CoreError;
use bitwave_core::group::GroupSize;
use bitwave_core::prelude::FlipStrategy;
use bitwave_core::stats::LayerSparsityStats;
use bitwave_tensor::bits::Encoding;
use bitwave_tensor::prelude::*;
use bitwave_tensor::quant::QuantParams;
use std::collections::BTreeMap;

/// Generates the Int8 weight tensor of one layer.
///
/// The same `(layer, seed)` pair always produces the same tensor.
pub fn generate_layer_weights(layer: &LayerSpec, seed: u64) -> QuantTensor {
    generate_with_shape(layer, layer.weight_shape(), seed)
}

/// Generates a *statistically representative sample* of a layer's weights,
/// capped at roughly `max_elements` values by truncating the output-channel
/// dimension.  The input-channel dimension (the grouping axis of BCS) is
/// never truncated, so bit-column statistics match the full layer.
pub fn generate_layer_sample(layer: &LayerSpec, seed: u64, max_elements: usize) -> QuantTensor {
    let shape = layer.weight_shape();
    let total = shape.num_elements();
    if total <= max_elements.max(1) {
        return generate_layer_weights(layer, seed);
    }
    let per_k = total / shape.dim(0);
    let keep_k = (max_elements / per_k.max(1)).clamp(1, shape.dim(0));
    let sampled_shape = match shape.rank() {
        2 => Shape::d2(keep_k, shape.dim(1)),
        4 => Shape::conv_weight(keep_k, shape.dim(1), shape.dim(2), shape.dim(3)),
        _ => shape,
    };
    generate_with_shape(layer, sampled_shape, seed)
}

fn generate_with_shape(layer: &LayerSpec, shape: Shape, seed: u64) -> QuantTensor {
    let profile = layer.weight_profile;
    let generator = WeightGenerator::new(profile.distribution, seed);
    let salt = fnv1a(layer.name.as_bytes());
    let float_weights = generator.generate_salted(shape, salt);
    quantize_with_utilisation(&float_weights, profile.dynamic_range_utilisation)
}

/// Quantises a float tensor so that its maximum magnitude lands at
/// `127 * utilisation` rather than 127, emulating layers whose trained
/// dynamic range only covers part of the Int8 grid.
fn quantize_with_utilisation(tensor: &FloatTensor, utilisation: f64) -> QuantTensor {
    let utilisation = utilisation.clamp(0.05, 1.0);
    let abs_max = tensor.abs_max();
    let target_max = 127.0 * utilisation as f32;
    let scale = if abs_max == 0.0 {
        1.0
    } else {
        abs_max / target_max
    };
    let data: Vec<i8> = tensor
        .data()
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    QuantTensor::new(tensor.shape(), data, QuantParams::symmetric(scale, 8))
        .expect("shape preserved")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The full set of (synthetic) Int8 weights of one network.
///
/// Each layer's tensor is held behind a shared [`WeightHandle`], so cloning a
/// weight set — and planning pipeline jobs from it — bumps reference counts
/// instead of deep-copying tensors.  Transformations that leave a layer
/// untouched ([`NetworkWeights::apply_flip_strategy`],
/// [`NetworkWeights::apply_ptq`]) share the original handle for that layer.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkWeights {
    network: String,
    layers: BTreeMap<String, WeightHandle>,
}

impl NetworkWeights {
    /// Generates full-size weights for every layer of `spec`.
    ///
    /// For the larger networks (BERT-Base ≈ 85 M weights) prefer
    /// [`NetworkWeights::generate_sampled`] unless the full tensors are
    /// really needed.
    pub fn generate(spec: &NetworkSpec, seed: u64) -> Self {
        Self::generate_with(spec, seed, usize::MAX)
    }

    /// Generates weights capped at `max_elements_per_layer` values per layer
    /// (statistically representative sampling along the output-channel axis).
    pub fn generate_sampled(spec: &NetworkSpec, seed: u64, max_elements_per_layer: usize) -> Self {
        Self::generate_with(spec, seed, max_elements_per_layer)
    }

    fn generate_with(spec: &NetworkSpec, seed: u64, cap: usize) -> Self {
        let layers = spec
            .layers
            .iter()
            .map(|l| {
                (
                    l.name.clone(),
                    WeightHandle::new(generate_layer_sample(l, seed, cap)),
                )
            })
            .collect();
        Self {
            network: spec.name.clone(),
            layers,
        }
    }

    /// The network these weights belong to.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// The weight tensor of a layer, if present.
    pub fn layer(&self, name: &str) -> Option<&QuantTensor> {
        self.layers.get(name).map(WeightHandle::tensor)
    }

    /// The shared handle of a layer's weights, if present.  Cloning the
    /// returned handle shares the tensor instead of copying it — the
    /// zero-copy path pipeline job planning uses.
    pub fn layer_handle(&self, name: &str) -> Option<&WeightHandle> {
        self.layers.get(name)
    }

    /// Iterates over `(layer name, weights)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &QuantTensor)> {
        self.layers.iter().map(|(k, v)| (k.as_str(), v.tensor()))
    }

    /// Number of layers with weights.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when no layer weights are stored.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Per-layer sparsity statistics at the given group size.
    ///
    /// # Errors
    ///
    /// Propagates grouping errors from the statistics analysis.
    pub fn sparsity_stats(
        &self,
        group_size: GroupSize,
    ) -> Result<Vec<(String, LayerSparsityStats)>, CoreError> {
        self.layers
            .iter()
            .map(|(name, t)| Ok((name.clone(), LayerSparsityStats::analyze(t, group_size)?)))
            .collect()
    }

    /// Applies a Bit-Flip strategy, returning the flipped weights.  Layers
    /// not mentioned by the strategy are left untouched.  For each layer the
    /// strategy's best (group size, zero columns) entry is applied, matching
    /// how the hardware ultimately configures one group size per layer.
    ///
    /// # Errors
    ///
    /// Propagates grouping/flip errors from the Bit-Flip kernel.
    pub fn apply_flip_strategy(
        &self,
        strategy: &FlipStrategy,
    ) -> Result<NetworkWeights, CoreError> {
        let layers = self
            .layers
            .iter()
            .map(|(name, handle)| {
                let flipped = match strategy.best_for_layer(name) {
                    Some((group_size, zero_columns)) if zero_columns > 0 => WeightHandle::new(
                        flip_tensor(handle, group_size, zero_columns, Encoding::SignMagnitude)?.0,
                    ),
                    // Untouched layers share the original tensor (no copy).
                    _ => handle.clone(),
                };
                Ok((name.clone(), flipped))
            })
            .collect::<Result<_, CoreError>>()?;
        Ok(NetworkWeights {
            network: self.network.clone(),
            layers,
        })
    }

    /// Applies uniform post-training quantisation to `bits` bits on the given
    /// layers (all layers when `layer_filter` is `None`), returning weights
    /// re-expanded onto the Int8 grid so they remain comparable bit-for-bit.
    pub fn apply_ptq(&self, bits: u8, layer_filter: Option<&[String]>) -> NetworkWeights {
        let layers = self
            .layers
            .iter()
            .map(|(name, handle)| {
                let selected = layer_filter.is_none_or(|f| f.iter().any(|l| l == name));
                let new_handle = if selected {
                    let reduced = requantize_to_bits(handle, bits).expect("bits validated");
                    WeightHandle::new(bitwave_tensor::quant::expand_to_int8_grid(&reduced))
                } else {
                    // Unselected layers share the original tensor (no copy).
                    handle.clone()
                };
                (name.clone(), new_handle)
            })
            .collect();
        NetworkWeights {
            network: self.network.clone(),
            layers,
        }
    }

    /// Total number of stored weight elements.
    pub fn total_elements(&self) -> usize {
        self.layers.values().map(|t| t.data().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{bert_base, resnet18};
    use bitwave_core::group::extract_groups;
    use bitwave_core::prelude::zero_column_count;

    #[test]
    fn generation_is_deterministic_and_layer_dependent() {
        let spec = resnet18();
        let a = generate_layer_sample(&spec.layers[1], 42, 10_000);
        let b = generate_layer_sample(&spec.layers[1], 42, 10_000);
        let c = generate_layer_sample(&spec.layers[2], 42, 10_000);
        assert_eq!(a, b);
        assert_ne!(a.data()[..32], c.data()[..32]);
    }

    #[test]
    fn sampled_generation_caps_size_but_keeps_input_channels() {
        let spec = resnet18();
        let fc = spec.layer("fc").unwrap();
        let sample = generate_layer_sample(fc, 1, 50_000);
        assert!(sample.data().len() <= 51_200);
        assert_eq!(sample.shape().dim(1), 512, "input-feature axis preserved");
    }

    #[test]
    fn resnet_conv_layers_have_high_sm_column_sparsity() {
        // The reproduction target: ResNet18's mid conv layers show strong
        // sign-magnitude column sparsity (paper: conv2 ≈ 59% at G=4).
        let spec = resnet18();
        let layer = spec.layer("layer1.0.conv1").unwrap();
        let w = generate_layer_sample(layer, 7, 40_000);
        let stats = LayerSparsityStats::analyze(&w, GroupSize::Custom(4)).unwrap();
        assert!(
            stats.column_sparsity_sign_magnitude > 0.35,
            "SM column sparsity too low: {}",
            stats.column_sparsity_sign_magnitude
        );
        assert!(
            stats.column_sparsity_sign_magnitude > 1.5 * stats.column_sparsity_twos_complement,
            "SM should clearly beat two's complement"
        );
    }

    #[test]
    fn bert_layers_have_low_column_sparsity() {
        let spec = bert_base();
        let layer = spec.layer("bert.encoder.layer.0.attention.q").unwrap();
        let w = generate_layer_sample(layer, 7, 40_000);
        let stats = LayerSparsityStats::analyze(&w, GroupSize::G8).unwrap();
        assert!(
            stats.column_sparsity_sign_magnitude < 0.35,
            "BERT column sparsity should be limited, got {}",
            stats.column_sparsity_sign_magnitude
        );
    }

    #[test]
    fn network_weights_lookup_and_iteration() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 3, 5_000);
        assert_eq!(weights.len(), spec.layers.len());
        assert!(!weights.is_empty());
        assert!(weights.layer("conv1").is_some());
        assert!(weights.layer("nonexistent").is_none());
        assert_eq!(weights.network(), "ResNet18");
        assert!(weights.total_elements() > 0);
        assert_eq!(weights.iter().count(), spec.layers.len());
    }

    #[test]
    fn flip_strategy_only_touches_requested_layers() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 3, 5_000);
        let mut strategy = FlipStrategy::new();
        strategy.set("fc", GroupSize::G16, 5);
        let flipped = weights.apply_flip_strategy(&strategy).unwrap();
        assert_eq!(
            weights.layer("conv1").unwrap().data(),
            flipped.layer("conv1").unwrap().data(),
            "unrelated layer must be untouched"
        );
        let fc = flipped.layer("fc").unwrap();
        let groups = extract_groups(fc, GroupSize::G16).unwrap();
        for g in groups.iter() {
            assert!(zero_column_count(g, Encoding::SignMagnitude) >= 5);
        }
    }

    #[test]
    fn untouched_layers_share_allocations_without_deep_copies() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 3, 5_000);
        let mut strategy = FlipStrategy::new();
        strategy.set("fc", GroupSize::G16, 5);

        let _guard = bitwave_tensor::copy_metrics::exclusive();
        let counter = bitwave_tensor::copy_metrics::CopyCounter::snapshot();
        let flipped = weights.apply_flip_strategy(&strategy).unwrap();
        let ptq = weights.apply_ptq(3, Some(&["fc".to_string()]));
        let cloned = weights.clone();
        assert_eq!(
            counter.delta(),
            0,
            "flip/PTQ/clone must not deep-copy untouched tensors"
        );

        // Untouched layers are the *same allocation*, not merely equal.
        let original = weights.layer_handle("conv1").unwrap();
        assert!(original.shares_allocation_with(flipped.layer_handle("conv1").unwrap()));
        assert!(original.shares_allocation_with(ptq.layer_handle("conv1").unwrap()));
        assert!(original.shares_allocation_with(cloned.layer_handle("conv1").unwrap()));
        // Transformed layers get fresh tensors.
        let fc = weights.layer_handle("fc").unwrap();
        assert!(!fc.shares_allocation_with(flipped.layer_handle("fc").unwrap()));
        assert!(!fc.shares_allocation_with(ptq.layer_handle("fc").unwrap()));
    }

    #[test]
    fn ptq_reduces_distinct_levels() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 3, 5_000);
        let ptq = weights.apply_ptq(4, None);
        let layer = ptq.layer("layer4.1.conv2").unwrap();
        let distinct: std::collections::BTreeSet<i8> = layer.data().iter().copied().collect();
        assert!(
            distinct.len() <= 15,
            "4-bit PTQ should leave at most 15 distinct levels, got {}",
            distinct.len()
        );
    }

    #[test]
    fn ptq_with_filter_leaves_other_layers_alone() {
        let spec = resnet18();
        let weights = NetworkWeights::generate_sampled(&spec, 3, 5_000);
        let ptq = weights.apply_ptq(3, Some(&["fc".to_string()]));
        assert_eq!(
            weights.layer("conv1").unwrap().data(),
            ptq.layer("conv1").unwrap().data()
        );
        assert_ne!(
            weights.layer("fc").unwrap().data(),
            ptq.layer("fc").unwrap().data()
        );
    }

    #[test]
    fn utilisation_controls_code_magnitudes() {
        let t = FloatTensor::new(Shape::d1(5), vec![0.1, -0.2, 0.3, -0.4, 0.5]).unwrap();
        let low = quantize_with_utilisation(&t, 0.3);
        let high = quantize_with_utilisation(&t, 1.0);
        let max_low = low.data().iter().map(|v| v.unsigned_abs()).max().unwrap();
        let max_high = high.data().iter().map(|v| v.unsigned_abs()).max().unwrap();
        assert!(max_low < max_high);
        assert_eq!(max_high, 127);
    }
}
