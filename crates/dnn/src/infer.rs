//! Exact Int8 reference kernels.
//!
//! These kernels compute layer outputs with 32-bit integer accumulation,
//! matching what a bit-parallel Int8 MAC array produces.  They are the
//! *golden model* against which the cycle-level BitWave simulator
//! (`bitwave-sim`) checks the functional correctness of its
//! bit-column-serial arithmetic, and they feed the accuracy proxy when
//! output-level error propagation is requested.

use bitwave_tensor::{QuantTensor, Shape, TensorError};

/// Computes a standard 2-D convolution over NCHW Int8 tensors with i32
/// accumulation.
///
/// * `input`: `[B, C, H, W]`
/// * `weight`: `[K, C, FY, FX]`
///
/// Returns the raw i32 accumulator tensor flattened row-major as
/// `[B, K, OY, OX]` together with its shape.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if the channel counts of
/// input and weight disagree or either tensor is not rank-4.
pub fn conv2d_int8(
    input: &QuantTensor,
    weight: &QuantTensor,
    stride: usize,
    padding: usize,
) -> Result<(Vec<i32>, Shape), TensorError> {
    let ishape = input.shape();
    let wshape = weight.shape();
    if ishape.rank() != 4 || wshape.rank() != 4 || ishape.dim(1) != wshape.dim(1) {
        return Err(TensorError::IncompatibleShapes {
            left: ishape,
            right: wshape,
        });
    }
    let (b, c, h, w) = (ishape.dim(0), ishape.dim(1), ishape.dim(2), ishape.dim(3));
    let (k, _, fy, fx) = (wshape.dim(0), wshape.dim(1), wshape.dim(2), wshape.dim(3));
    let oy = (h + 2 * padding - fy) / stride + 1;
    let ox = (w + 2 * padding - fx) / stride + 1;
    let out_shape = Shape::feature_map(b, k, oy, ox);
    let mut out = vec![0i32; out_shape.num_elements()];

    let idata = input.data();
    let wdata = weight.data();
    for bi in 0..b {
        for ki in 0..k {
            for oyi in 0..oy {
                for oxi in 0..ox {
                    let mut acc = 0i32;
                    for ci in 0..c {
                        for fyi in 0..fy {
                            let iy = (oyi * stride + fyi) as isize - padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for fxi in 0..fx {
                                let ix = (oxi * stride + fxi) as isize - padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let ival = idata[ishape.offset(&[bi, ci, iy as usize, ix as usize])]
                                    as i32;
                                let wval = wdata[wshape.offset(&[ki, ci, fyi, fxi])] as i32;
                                acc += ival * wval;
                            }
                        }
                    }
                    out[out_shape.offset(&[bi, ki, oyi, oxi])] = acc;
                }
            }
        }
    }
    Ok((out, out_shape))
}

/// Computes a depthwise 2-D convolution (`weight` is `[K, 1, FY, FX]`, each
/// output channel convolves only its own input channel).
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if the channel counts of
/// input and weight disagree.
pub fn depthwise_conv2d_int8(
    input: &QuantTensor,
    weight: &QuantTensor,
    stride: usize,
    padding: usize,
) -> Result<(Vec<i32>, Shape), TensorError> {
    let ishape = input.shape();
    let wshape = weight.shape();
    if ishape.rank() != 4
        || wshape.rank() != 4
        || ishape.dim(1) != wshape.dim(0)
        || wshape.dim(1) != 1
    {
        return Err(TensorError::IncompatibleShapes {
            left: ishape,
            right: wshape,
        });
    }
    let (b, c, h, w) = (ishape.dim(0), ishape.dim(1), ishape.dim(2), ishape.dim(3));
    let (fy, fx) = (wshape.dim(2), wshape.dim(3));
    let oy = (h + 2 * padding - fy) / stride + 1;
    let ox = (w + 2 * padding - fx) / stride + 1;
    let out_shape = Shape::feature_map(b, c, oy, ox);
    let mut out = vec![0i32; out_shape.num_elements()];

    let idata = input.data();
    let wdata = weight.data();
    for bi in 0..b {
        for ci in 0..c {
            for oyi in 0..oy {
                for oxi in 0..ox {
                    let mut acc = 0i32;
                    for fyi in 0..fy {
                        let iy = (oyi * stride + fyi) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for fxi in 0..fx {
                            let ix = (oxi * stride + fxi) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let ival =
                                idata[ishape.offset(&[bi, ci, iy as usize, ix as usize])] as i32;
                            let wval = wdata[wshape.offset(&[ci, 0, fyi, fxi])] as i32;
                            acc += ival * wval;
                        }
                    }
                    out[out_shape.offset(&[bi, ci, oyi, oxi])] = acc;
                }
            }
        }
    }
    Ok((out, out_shape))
}

/// Computes `input (B×C) · weightᵀ (K×C)` with i32 accumulation, the kernel
/// behind linear layers, LSTM gate bundles and transformer projections.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if the inner dimensions do
/// not match or either tensor is not rank-2.
pub fn linear_int8(
    input: &QuantTensor,
    weight: &QuantTensor,
) -> Result<(Vec<i32>, Shape), TensorError> {
    let ishape = input.shape();
    let wshape = weight.shape();
    if ishape.rank() != 2 || wshape.rank() != 2 || ishape.dim(1) != wshape.dim(1) {
        return Err(TensorError::IncompatibleShapes {
            left: ishape,
            right: wshape,
        });
    }
    let (b, c) = (ishape.dim(0), ishape.dim(1));
    let k = wshape.dim(0);
    let out_shape = Shape::d2(b, k);
    let mut out = vec![0i32; b * k];
    let idata = input.data();
    let wdata = weight.data();
    for bi in 0..b {
        for ki in 0..k {
            let mut acc = 0i32;
            for ci in 0..c {
                acc += idata[bi * c + ci] as i32 * wdata[ki * c + ci] as i32;
            }
            out[bi * k + ki] = acc;
        }
    }
    Ok((out, out_shape))
}

/// Plain Int8 dot product with i32 accumulation — the primitive the BitWave
/// Compute Engine (BCE) implements bit-column-serially; exposed so the
/// simulator tests can check arbitrary operand vectors.
pub fn dot_int8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_tensor::prelude::*;
    use bitwave_tensor::quant::QuantParams;
    use proptest::prelude::*;

    fn qt(shape: Shape, data: Vec<i8>) -> QuantTensor {
        QuantTensor::new(shape, data, QuantParams::unit()).unwrap()
    }

    #[test]
    fn conv_identity_kernel_copies_input() {
        // 1x1 kernel with weight 1 reproduces the input.
        let input = qt(
            Shape::feature_map(1, 1, 3, 3),
            (1..=9).map(|v| v as i8).collect(),
        );
        let weight = qt(Shape::conv_weight(1, 1, 1, 1), vec![1]);
        let (out, shape) = conv2d_int8(&input, &weight, 1, 0).unwrap();
        assert_eq!(shape, Shape::feature_map(1, 1, 3, 3));
        assert_eq!(out, (1..=9).collect::<Vec<i32>>());
    }

    #[test]
    fn conv_known_small_case() {
        // 2x2 input, 2x2 kernel, no padding -> single output.
        let input = qt(Shape::feature_map(1, 1, 2, 2), vec![1, 2, 3, 4]);
        let weight = qt(Shape::conv_weight(1, 1, 2, 2), vec![1, 0, 0, -1]);
        let (out, shape) = conv2d_int8(&input, &weight, 1, 0).unwrap();
        assert_eq!(shape.dims(), &[1, 1, 1, 1]);
        assert_eq!(out, vec![1 - 4]);
    }

    #[test]
    fn conv_with_padding_and_stride() {
        let input = qt(Shape::feature_map(1, 1, 4, 4), vec![1; 16]);
        let weight = qt(Shape::conv_weight(1, 1, 3, 3), vec![1; 9]);
        let (out, shape) = conv2d_int8(&input, &weight, 2, 1).unwrap();
        assert_eq!(shape.dims(), &[1, 1, 2, 2]);
        // Top-left output sees a 2x2 valid patch, interior sees 3x3.
        assert_eq!(out[0], 4);
        assert_eq!(out[3], 9);
    }

    #[test]
    fn conv_channel_mismatch_is_error() {
        let input = qt(Shape::feature_map(1, 2, 2, 2), vec![0; 8]);
        let weight = qt(Shape::conv_weight(1, 3, 1, 1), vec![0; 3]);
        assert!(conv2d_int8(&input, &weight, 1, 0).is_err());
    }

    #[test]
    fn depthwise_processes_channels_independently() {
        let input = qt(Shape::feature_map(1, 2, 2, 2), vec![1, 1, 1, 1, 2, 2, 2, 2]);
        let weight = qt(
            Shape::conv_weight(2, 1, 2, 2),
            vec![1, 1, 1, 1, -1, -1, -1, -1],
        );
        let (out, shape) = depthwise_conv2d_int8(&input, &weight, 1, 0).unwrap();
        assert_eq!(shape.dims(), &[1, 2, 1, 1]);
        assert_eq!(out, vec![4, -8]);
    }

    #[test]
    fn depthwise_rejects_multi_channel_kernels() {
        let input = qt(Shape::feature_map(1, 2, 2, 2), vec![0; 8]);
        let weight = qt(Shape::conv_weight(2, 2, 1, 1), vec![0; 4]);
        assert!(depthwise_conv2d_int8(&input, &weight, 1, 0).is_err());
    }

    #[test]
    fn linear_matches_manual_matmul() {
        let input = qt(Shape::d2(2, 3), vec![1, 2, 3, -1, 0, 2]);
        let weight = qt(Shape::d2(2, 3), vec![1, 1, 1, 2, 0, -1]);
        let (out, shape) = linear_int8(&input, &weight).unwrap();
        assert_eq!(shape, Shape::d2(2, 2));
        assert_eq!(out, vec![6, -1, 1, -4]);
    }

    #[test]
    fn linear_dimension_mismatch_is_error() {
        let input = qt(Shape::d2(1, 3), vec![0; 3]);
        let weight = qt(Shape::d2(2, 4), vec![0; 8]);
        assert!(linear_int8(&input, &weight).is_err());
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot_int8(&[1, -2, 3], &[4, 5, -6]), 4 - 10 - 18);
        assert_eq!(dot_int8(&[], &[]), 0);
    }

    #[test]
    fn conv_equals_linear_for_1x1_geometry() {
        // A 1x1 convolution over a 1x1 feature map is exactly a linear layer.
        let gen = WeightGenerator::new(WeightDistribution::Uniform { range: 1.0 }, 3);
        let w4 = quantize_per_tensor(&gen.generate(Shape::conv_weight(4, 6, 1, 1)), 8).unwrap();
        let x4 = quantize_per_tensor(&gen.generate_salted(Shape::feature_map(1, 6, 1, 1), 9), 8)
            .unwrap();
        let (conv_out, _) = conv2d_int8(&x4, &w4, 1, 0).unwrap();
        let w2 = w4.reshaped(Shape::d2(4, 6)).unwrap();
        let x2 = x4.reshaped(Shape::d2(1, 6)).unwrap();
        let (lin_out, _) = linear_int8(&x2, &w2).unwrap();
        assert_eq!(conv_out, lin_out);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn dot_product_is_commutative(
            a in proptest::collection::vec(-127i8..=127, 0..64),
        ) {
            let b: Vec<i8> = a.iter().rev().cloned().collect();
            let mut b_ordered = b.clone();
            b_ordered.reverse();
            prop_assert_eq!(dot_int8(&a, &b_ordered), dot_int8(&b_ordered, &a));
        }

        #[test]
        fn linear_is_additive_in_inputs(
            x in proptest::collection::vec(-63i8..=63, 8),
            y in proptest::collection::vec(-63i8..=63, 8),
            w in proptest::collection::vec(-127i8..=127, 16),
        ) {
            // (x + y) · W == x · W + y · W when no saturation occurs.
            let weight = qt(Shape::d2(2, 8), w);
            let sum: Vec<i8> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
            let (ox, _) = linear_int8(&qt(Shape::d2(1, 8), x), &weight).unwrap();
            let (oy, _) = linear_int8(&qt(Shape::d2(1, 8), y), &weight).unwrap();
            let (os, _) = linear_int8(&qt(Shape::d2(1, 8), sum), &weight).unwrap();
            for i in 0..2 {
                prop_assert_eq!(os[i], ox[i] + oy[i]);
            }
        }
    }
}
