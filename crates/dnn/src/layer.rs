//! Layer specifications normalised onto the 7-dimensional loop nest of
//! Fig. 2 (`B, K, C, OY, OX, FY, FX`).
//!
//! Every layer kind in the four benchmark networks — regular and depthwise
//! convolutions, pointwise (1×1) convolutions, linear layers, LSTM gates and
//! transformer projections — maps onto this nest:
//!
//! | kind | B | K | C | OY×OX | FY×FX |
//! |------|---|---|---|-------|-------|
//! | Conv2d | batch | out channels | in channels | output map | kernel |
//! | DepthwiseConv2d | batch | channels (one group each) | 1 | output map | kernel |
//! | Linear / LSTM gate / attention projection | batch·tokens | out features | in features | 1×1 | 1×1 |
//!
//! The dataflow and accelerator models consume only these dimensions plus
//! the per-layer sparsity statistics; the inference kernels additionally use
//! stride and padding.

use bitwave_tensor::prelude::*;
use bitwave_tensor::synth::{ActivationKind, LayerWeightProfile};
use serde::{Deserialize, Serialize};

/// The seven loop dimensions of a (generalised) convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopDims {
    /// Batch (for transformers: batch × sequence length).
    pub b: usize,
    /// Output channels / output features.
    pub k: usize,
    /// Input channels / input features.
    pub c: usize,
    /// Output feature-map height.
    pub oy: usize,
    /// Output feature-map width.
    pub ox: usize,
    /// Kernel height.
    pub fy: usize,
    /// Kernel width.
    pub fx: usize,
}

impl LoopDims {
    /// Loop dims of a linear layer processing `b` rows.
    pub fn linear(b: usize, out_features: usize, in_features: usize) -> Self {
        Self {
            b,
            k: out_features,
            c: in_features,
            oy: 1,
            ox: 1,
            fy: 1,
            fx: 1,
        }
    }

    /// Total number of MAC operations of the layer.
    pub fn macs(&self) -> u64 {
        self.b as u64
            * self.k as u64
            * self.c as u64
            * self.oy as u64
            * self.ox as u64
            * self.fy as u64
            * self.fx as u64
    }

    /// Number of weight elements (`K·C·FY·FX`).
    pub fn weight_count(&self) -> u64 {
        self.k as u64 * self.c as u64 * self.fy as u64 * self.fx as u64
    }

    /// Number of input activation elements consumed (`B·C·IY·IX`), assuming
    /// stride-1 "same" geometry for the estimate (`IY ≈ OY + FY - 1`).
    pub fn input_count(&self) -> u64 {
        self.b as u64
            * self.c as u64
            * (self.oy + self.fy - 1) as u64
            * (self.ox + self.fx - 1) as u64
    }

    /// Number of output activation elements produced (`B·K·OY·OX`).
    pub fn output_count(&self) -> u64 {
        self.b as u64 * self.k as u64 * self.oy as u64 * self.ox as u64
    }
}

/// The layer kinds occurring in the evaluated networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard 2-D convolution.
    Conv2d {
        /// Convolution stride (same in both dimensions).
        stride: usize,
        /// Zero padding (same on all sides).
        padding: usize,
    },
    /// Depthwise 2-D convolution (one input channel per output channel).
    DepthwiseConv2d {
        /// Convolution stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Pointwise (1×1) convolution.
    PointwiseConv2d,
    /// Fully-connected layer.
    Linear,
    /// One LSTM gate bundle (the 4 gates' input and recurrent matrices,
    /// modelled as a single wide linear layer as the hardware sees them).
    LstmGates,
    /// Transformer attention projection (Q, K, V or output).
    AttentionProjection,
    /// Transformer feed-forward linear.
    FeedForward,
}

impl LayerKind {
    /// Whether the layer is a depthwise convolution (needs the dedicated SU7
    /// dataflow in BitWave, Table I).
    pub fn is_depthwise(&self) -> bool {
        matches!(self, LayerKind::DepthwiseConv2d { .. })
    }

    /// Whether the layer is any kind of matrix multiplication
    /// (linear/LSTM/attention/FFN) rather than a spatial convolution.
    pub fn is_matmul(&self) -> bool {
        matches!(
            self,
            LayerKind::Linear
                | LayerKind::LstmGates
                | LayerKind::AttentionProjection
                | LayerKind::FeedForward
        )
    }
}

/// A single layer of a benchmark network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Layer name (mirrors the framework naming used in Fig. 6, e.g.
    /// "layer4.0.conv1" or "bert.encoder.layer.1.attention.q").
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// The 7-dimensional loop nest.
    pub dims: LoopDims,
    /// Weight-distribution profile used for synthetic weight generation.
    pub weight_profile: LayerWeightProfile,
    /// Activation statistics of this layer's *input* activations.
    pub activation: ActivationKind,
    /// Relative sensitivity of model quality to weight perturbation in this
    /// layer (higher = more sensitive; early/weight-light layers are more
    /// sensitive, Fig. 6a–d).
    pub sensitivity: f64,
}

impl LayerSpec {
    /// Creates a standard convolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        input_hw: usize,
        sensitivity: f64,
    ) -> Self {
        let out_hw = conv_output_size(input_hw, kernel, stride, padding);
        Self {
            name: name.into(),
            kind: LayerKind::Conv2d { stride, padding },
            dims: LoopDims {
                b: 1,
                k: out_channels,
                c: in_channels,
                oy: out_hw,
                ox: out_hw,
                fy: kernel,
                fx: kernel,
            },
            weight_profile: LayerWeightProfile::weight_heavy(),
            activation: ActivationKind::Relu { std: 1.0 },
            sensitivity,
        }
    }

    /// Creates a depthwise convolution layer over `channels` channels.
    pub fn depthwise(
        name: impl Into<String>,
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        input_hw: usize,
        sensitivity: f64,
    ) -> Self {
        let out_hw = conv_output_size(input_hw, kernel, stride, padding);
        Self {
            name: name.into(),
            kind: LayerKind::DepthwiseConv2d { stride, padding },
            dims: LoopDims {
                b: 1,
                k: channels,
                c: 1,
                oy: out_hw,
                ox: out_hw,
                fy: kernel,
                fx: kernel,
            },
            weight_profile: LayerWeightProfile::weight_light(),
            activation: ActivationKind::Relu { std: 1.0 },
            sensitivity,
        }
    }

    /// Creates a pointwise (1×1) convolution layer.
    pub fn pointwise(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        output_hw: usize,
        sensitivity: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::PointwiseConv2d,
            dims: LoopDims {
                b: 1,
                k: out_channels,
                c: in_channels,
                oy: output_hw,
                ox: output_hw,
                fy: 1,
                fx: 1,
            },
            weight_profile: LayerWeightProfile::weight_heavy(),
            activation: ActivationKind::Relu { std: 1.0 },
            sensitivity,
        }
    }

    /// Creates a fully-connected layer processing `rows` input rows.
    pub fn linear(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rows: usize,
        sensitivity: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Linear,
            dims: LoopDims::linear(rows, out_features, in_features),
            weight_profile: LayerWeightProfile::weight_heavy(),
            activation: ActivationKind::Relu { std: 1.0 },
            sensitivity,
        }
    }

    /// Creates an LSTM gate-bundle layer (`4·hidden × (input + hidden)`
    /// weights applied at every one of `timesteps` steps).
    pub fn lstm_gates(
        name: impl Into<String>,
        input_size: usize,
        hidden_size: usize,
        timesteps: usize,
        sensitivity: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::LstmGates,
            dims: LoopDims::linear(timesteps, 4 * hidden_size, input_size + hidden_size),
            weight_profile: LayerWeightProfile::weight_heavy(),
            // LSTM gates use sigmoid/tanh inputs: essentially no activation sparsity.
            activation: ActivationKind::Gaussianlike { std: 1.0 },
            sensitivity,
        }
    }

    /// Creates a transformer projection or feed-forward layer over `tokens`
    /// tokens.
    pub fn transformer(
        name: impl Into<String>,
        kind: LayerKind,
        in_features: usize,
        out_features: usize,
        tokens: usize,
        sensitivity: f64,
    ) -> Self {
        debug_assert!(matches!(
            kind,
            LayerKind::AttentionProjection | LayerKind::FeedForward | LayerKind::Linear
        ));
        Self {
            name: name.into(),
            kind,
            dims: LoopDims::linear(tokens, out_features, in_features),
            weight_profile: LayerWeightProfile::transformer(),
            activation: ActivationKind::Gaussianlike { std: 1.0 },
            sensitivity,
        }
    }

    /// Overrides the weight profile (builder style).
    pub fn with_weight_profile(mut self, profile: LayerWeightProfile) -> Self {
        self.weight_profile = profile;
        self
    }

    /// Overrides the input-activation model (builder style).
    pub fn with_activation(mut self, activation: ActivationKind) -> Self {
        self.activation = activation;
        self
    }

    /// The weight tensor shape of the layer.
    pub fn weight_shape(&self) -> Shape {
        match self.kind {
            LayerKind::Conv2d { .. } | LayerKind::PointwiseConv2d => {
                Shape::conv_weight(self.dims.k, self.dims.c, self.dims.fy, self.dims.fx)
            }
            LayerKind::DepthwiseConv2d { .. } => {
                Shape::conv_weight(self.dims.k, 1, self.dims.fy, self.dims.fx)
            }
            LayerKind::Linear
            | LayerKind::LstmGates
            | LayerKind::AttentionProjection
            | LayerKind::FeedForward => Shape::d2(self.dims.k, self.dims.c),
        }
    }

    /// Total MAC operations of the layer.
    pub fn macs(&self) -> u64 {
        self.dims.macs()
    }

    /// Number of weight parameters of the layer.
    pub fn weight_count(&self) -> u64 {
        self.weight_shape().num_elements() as u64
    }

    /// Expected input-activation value sparsity of the layer (used by the
    /// analytical accelerator models for SCNN/Pragmatic).
    pub fn expected_activation_sparsity(&self) -> f64 {
        match self.activation {
            ActivationKind::Relu { .. } => 0.5,
            ActivationKind::Gaussianlike { .. } => 0.0,
        }
    }
}

/// Output spatial size of a convolution.
pub fn conv_output_size(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    (input + 2 * padding - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_size_matches_pytorch_convention() {
        assert_eq!(conv_output_size(224, 7, 2, 3), 112);
        assert_eq!(conv_output_size(56, 3, 1, 1), 56);
        assert_eq!(conv_output_size(56, 3, 2, 1), 28);
        assert_eq!(conv_output_size(56, 1, 2, 0), 28);
    }

    #[test]
    fn resnet_conv1_macs() {
        let l = LayerSpec::conv2d("conv1", 3, 64, 7, 2, 3, 224, 1.0);
        // 64 * 3 * 7 * 7 * 112 * 112 = 118_013_952 MACs.
        assert_eq!(l.macs(), 118_013_952);
        assert_eq!(l.weight_count(), 64 * 3 * 7 * 7);
        assert_eq!(l.weight_shape(), Shape::conv_weight(64, 3, 7, 7));
    }

    #[test]
    fn linear_layer_dims() {
        let l = LayerSpec::linear("fc", 512, 1000, 1, 1.0);
        assert_eq!(l.macs(), 512_000);
        assert_eq!(l.weight_shape(), Shape::d2(1000, 512));
        assert!(l.kind.is_matmul());
        assert!(!l.kind.is_depthwise());
    }

    #[test]
    fn depthwise_layer_dims() {
        let l = LayerSpec::depthwise("dw", 32, 3, 1, 1, 112, 1.0);
        assert_eq!(l.dims.k, 32);
        assert_eq!(l.dims.c, 1);
        assert_eq!(l.macs(), 32 * 9 * 112 * 112);
        assert!(l.kind.is_depthwise());
        assert_eq!(l.weight_shape(), Shape::conv_weight(32, 1, 3, 3));
    }

    #[test]
    fn lstm_gates_are_wide_linear() {
        let l = LayerSpec::lstm_gates("lstm.0", 256, 400, 100, 1.0);
        assert_eq!(l.dims.k, 1600);
        assert_eq!(l.dims.c, 656);
        assert_eq!(l.dims.b, 100);
        assert_eq!(l.weight_count(), 1600 * 656);
        assert_eq!(l.expected_activation_sparsity(), 0.0);
    }

    #[test]
    fn transformer_layer() {
        let l = LayerSpec::transformer(
            "encoder.0.attention.q",
            LayerKind::AttentionProjection,
            768,
            768,
            4,
            1.0,
        );
        assert_eq!(l.macs(), 4 * 768 * 768);
        assert_eq!(l.expected_activation_sparsity(), 0.0);
    }

    #[test]
    fn builder_overrides() {
        let l = LayerSpec::conv2d("c", 8, 8, 3, 1, 1, 16, 1.0)
            .with_activation(ActivationKind::Gaussianlike { std: 0.5 })
            .with_weight_profile(LayerWeightProfile::transformer());
        assert_eq!(l.expected_activation_sparsity(), 0.0);
        assert_eq!(l.weight_profile, LayerWeightProfile::transformer());
    }

    #[test]
    fn loop_dims_counts() {
        let d = LoopDims {
            b: 2,
            k: 4,
            c: 3,
            oy: 5,
            ox: 5,
            fy: 3,
            fx: 3,
        };
        assert_eq!(d.macs(), 2 * 4 * 3 * 5 * 5 * 3 * 3);
        assert_eq!(d.weight_count(), 4 * 3 * 3 * 3);
        assert_eq!(d.output_count(), 2 * 4 * 5 * 5);
        assert_eq!(d.input_count(), 2 * 3 * 7 * 7);
    }
}
