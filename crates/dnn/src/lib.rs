//! # bitwave-dnn
//!
//! The DNN substrate of the BitWave (HPCA 2024) reproduction: the four
//! benchmark workloads of the paper's evaluation (ResNet18, MobileNetV2,
//! CNN-LSTM and BERT-Base), expressed as layer-exact loop-nest descriptions,
//! plus an Int8 reference inference path and the accuracy proxy used by the
//! Bit-Flip search.
//!
//! * [`layer`] — layer specifications: every layer is normalised onto the
//!   paper's 7-dimensional loop nest `B, K, C, OY, OX, FY, FX` (Fig. 2) so
//!   the dataflow and accelerator models can treat convolutions, depthwise
//!   convolutions, linear layers, LSTM gates and attention projections
//!   uniformly.
//! * [`models`] — the four networks with layer-exact shapes and the Fig. 12
//!   workload summary (GFLOPs, parameter count, model type).
//! * [`weights`] — synthetic Int8 weights per layer, calibrated so that the
//!   sparsity statistics match the ranges the paper reports (see DESIGN.md
//!   §2 for the substitution rationale).
//! * [`infer`] — exact Int8 reference kernels (conv2d, depthwise conv,
//!   linear) used as the golden model for the cycle-level simulator.
//! * [`proxy`] — the task-quality proxy (accuracy / F1 / PESQ) that maps
//!   weight perturbation to an estimated quality drop, standing in for the
//!   datasets we do not have.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod infer;
pub mod layer;
pub mod models;
pub mod proxy;
pub mod weights;

pub use layer::{LayerKind, LayerSpec, LoopDims};
pub use models::{all_networks, bert_base, cnn_lstm, mobilenet_v2, resnet18, NetworkSpec};
pub use weights::NetworkWeights;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::infer::{conv2d_int8, depthwise_conv2d_int8, linear_int8};
    pub use crate::layer::{LayerKind, LayerSpec, LoopDims};
    pub use crate::models::{
        all_networks, bert_base, cnn_lstm, mobilenet_v2, resnet18, NetworkSpec, WorkloadSummary,
    };
    pub use crate::proxy::{AccuracyProxy, QualityMetric};
    pub use crate::weights::NetworkWeights;
}
