//! Property: the amortized factored evaluation path is **semantically
//! invisible** — for arbitrary synthetic candidate points, spanning both
//! SRAM-fit regimes (workloads that fit on-chip and workloads forced
//! through the DRAM roofline), `evaluate_point_factored` reproduces
//! `evaluate_point` byte for byte.

use bitwave_sweep::{
    build_portfolio, enumerate, evaluate_point, evaluate_point_factored, MenuKind, SweepConfig,
};
use proptest::prelude::*;

/// A single-point sweep configuration over one axis choice each, so the
/// candidate under test is exactly the generated hardware point.
fn single_point_config(
    lanes: usize,
    sync: usize,
    sram_kb: usize,
    dram_bits: usize,
    sram_bits: usize,
    menu: MenuKind,
    seed: u64,
) -> SweepConfig {
    let mut config = SweepConfig::tiny();
    config.lanes = vec![lanes];
    config.sync_lanes = vec![sync];
    config.weight_sram_kb = vec![sram_kb];
    config.activation_sram_kb = vec![sram_kb];
    config.dram_bandwidth_bits = vec![dram_bits];
    config.sram_bandwidth_bits = vec![sram_bits];
    config.menus = vec![menu];
    config.seed = seed;
    config.sample_cap = 1_000;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Factored ≡ full, byte for byte, on arbitrary candidates.  The SRAM
    /// axis deliberately straddles the fit boundary: 16 KiB forces layers
    /// through the constrained DRAM tier while 1024 KiB keeps the portfolio
    /// on-chip, so the re-pricing (fit check + DRAM traffic + roofline max)
    /// is exercised in both regimes.
    #[test]
    fn factored_evaluation_equals_full_evaluation(
        lanes_pow in 10u32..=13,   // 1024..=8192 lanes
        sync_pick in 0u8..2,       // 8 or 16 synced lanes
        sram_pick in 0u8..2,       // 16 KiB (DRAM-bound) or 1024 KiB (fits)
        dram_pick in 0u8..2,       // 32 or 128 bits/cycle
        sram_bw_pick in 0u8..2,    // 512 or 1024 bits/cycle
        menu_pick in 0u8..2,
        seed in 1u64..500,
    ) {
        let sync = [8usize, 16][sync_pick as usize];
        let sram_kb = [16usize, 1024][sram_pick as usize];
        let dram_bits = [32usize, 128][dram_pick as usize];
        let sram_bits = [512usize, 1024][sram_bw_pick as usize];
        let menu = [MenuKind::TableI, MenuKind::BitSim][menu_pick as usize];
        let config = single_point_config(
            1usize << lanes_pow, sync, sram_kb, dram_bits, sram_bits, menu, seed,
        );
        prop_assert_eq!(config.total_points(), 1);
        let portfolio = build_portfolio(&config).expect("portfolio builds");
        let point = enumerate(&config)[0];

        let full = evaluate_point(&point, &config, &portfolio);
        let factored = evaluate_point_factored(&point, &config, &portfolio);
        prop_assert_eq!(
            serde_json::to_string(&factored).unwrap(),
            serde_json::to_string(&full).unwrap(),
            "factored evaluation must reproduce the full path byte for byte"
        );
    }
}
