//! Sweep-level correctness properties: sharded execution is semantically
//! invisible (same front, byte for byte, for any worker count and steal
//! order), and crashed workers' claims are re-stolen without corrupting
//! the result set.

use bitwave_sweep::ledger::SweepLedger;
use bitwave_sweep::run::{assemble_report, run_sharded, run_with_progress};
use bitwave_sweep::SweepConfig;
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("bitwave-sweep-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A fast tiny configuration; `seed` perturbs the synthetic weights so the
/// property is not an artifact of one input.
fn fast_tiny(seed: u64) -> SweepConfig {
    let mut config = SweepConfig::tiny();
    config.sample_cap = 1_000;
    config.seed = seed;
    config
}

fn report_json(config: &SweepConfig, root: Option<&PathBuf>) -> String {
    let (report, _) =
        run_with_progress(config, root.map(PathBuf::as_path), |_| {}).expect("sweep runs");
    serde_json::to_string(&report).expect("report serializes")
}

/// A worker that claims a point and dies without publishing must not wedge
/// the sweep: after the claim TTL the point is stolen, every point lands,
/// and the final front is identical to an undisturbed single-process sweep.
#[test]
fn crashed_worker_claims_are_stolen_and_the_front_is_unchanged() {
    let mut config = fast_tiny(42);
    config.claim_ttl_ms = 120; // steal quickly; evaluation passes poll at 20ms
    let root = temp_root("crash");

    // Simulate the crash: a doomed worker wins claims on two points and
    // exits without computing or releasing them.
    let doomed = SweepLedger::open(&config, Some(&root)).unwrap();
    assert!(doomed.abandon_claim_for_test(0).unwrap().owned());
    assert!(doomed.abandon_claim_for_test(5).unwrap().owned());
    drop(doomed);

    let (report, stats) = run_with_progress(&config, Some(&root), |_| {}).unwrap();
    assert_eq!(
        stats.evaluated,
        config.total_points(),
        "every point is evaluated, including the crashed worker's"
    );
    assert!(
        stats.stolen >= 2,
        "both abandoned claims must be stolen, got {}",
        stats.stolen
    );

    let reference = report_json(&config, None);
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        reference,
        "crash recovery must not change the front"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A sweep interrupted mid-flight (some results published, some claims
/// abandoned) restarts warm: only the missing points are evaluated and the
/// assembled report matches a clean run byte-for-byte.
#[test]
fn interrupted_sweep_restarts_warm_and_completes_identically() {
    let mut config = fast_tiny(7);
    config.claim_ttl_ms = 120;
    let root = temp_root("restart");

    // First "process": completes three points, abandons a claim, crashes.
    {
        let ledger = SweepLedger::open(&config, Some(&root)).unwrap();
        let portfolio = bitwave_sweep::build_portfolio(&config).unwrap();
        let points = bitwave_sweep::enumerate(&config);
        for point in &points[0..3] {
            assert!(ledger.claim(point.index).unwrap().owned());
            let result = bitwave_sweep::evaluate_point(point, &config, &portfolio);
            ledger.publish(point.index, result);
        }
        assert!(ledger.abandon_claim_for_test(3).unwrap().owned());
    }

    let (report, stats) = run_with_progress(&config, Some(&root), |_| {}).unwrap();
    assert_eq!(stats.reused, 3, "published points are reused, not re-run");
    assert_eq!(stats.evaluated, config.total_points() - 3);
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        report_json(&config, None)
    );
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Sharded sweep ≡ sequential sweep: the same Pareto-front report,
    /// byte for byte, regardless of worker count and claim/steal
    /// interleaving.
    #[test]
    fn sharded_sweep_equals_sequential_sweep(seed in 1u64..500, workers in 2usize..=4) {
        let config = fast_tiny(seed);
        let sequential = report_json(&config, None);

        let root = temp_root(&format!("shard-{seed}-{workers}"));
        let stats = run_sharded(&config, &root, workers).expect("sharded sweep runs");
        let total_evaluated: usize = stats.iter().map(|s| s.evaluated).sum();
        prop_assert!(
            total_evaluated >= config.total_points(),
            "workers must cover the space (double-computes after steals allowed)"
        );
        let ledger = SweepLedger::open(&config, Some(&root)).unwrap();
        let sharded = assemble_report(&config, &ledger).expect("sweep is complete");
        prop_assert_eq!(serde_json::to_string(&sharded).unwrap(), sequential);
        let _ = std::fs::remove_dir_all(&root);
    }
}
