//! Sweep execution: the worker loop, sharding, progress streaming and the
//! final front report.
//!
//! Every worker runs the same loop over the full candidate enumeration:
//! *look up, else claim, else wait*.  A point already in the shared store
//! is taken as-is (warm restarts and other workers' results are
//! indistinguishable); an unclaimed point is claimed, evaluated and
//! published; a point held by a live peer is left alone and re-checked on
//! the next pass — unless the claim has expired, in which case it is
//! stolen.  The loop ends when every point has a result, so any number of
//! workers over one store root converge on one complete result set, and
//! the assembled [`FrontReport`] is byte-identical no matter how the work
//! was split.

use crate::config::{SweepConfig, SWEEP_SCHEMA_VERSION};
use crate::eval::{
    build_portfolio, evaluate_point, evaluate_point_factored, PointResult, PortfolioModel,
};
use crate::ledger::SweepLedger;
use crate::space::{enumerate, CandidatePoint};
use bitwave_core::pareto::{Direction, FrontAccumulator};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// The sweep's objective directions: `[EDP, energy, cycles, area]`, all
/// minimised.
pub const OBJECTIVES: [Direction; 4] = [Direction::Minimize; 4];

/// Delay between polling passes while waiting on points other workers hold.
const PASS_DELAY: Duration = Duration::from_millis(20);

/// Which evaluation path a worker runs per candidate.  Both produce
/// byte-identical [`PointResult`]s; the option exists so benches, CI and
/// debugging can pin the reference path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Full per-candidate evaluation through the memoizing engine.
    Full,
    /// Amortized path: factored compute groups + per-point re-pricing.
    #[default]
    Factored,
}

impl EvalMode {
    /// Parses a CLI name (`full` / `factored`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "full" => Some(EvalMode::Full),
            "factored" => Some(EvalMode::Factored),
            _ => None,
        }
    }
}

/// In-process evaluation options.  Deliberately **not** part of
/// [`SweepConfig`] (and therefore never part of the sweep digest): neither
/// knob can change a single result byte, only how fast results land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Candidate evaluations run concurrently inside this process.  Claimed
    /// points are batched up to this size and fanned out across scoped
    /// threads, order-preserving; `1` keeps the historical strictly
    /// sequential loop.  Composes with multi-process sharding — claims are
    /// still taken per point through the shared [`SweepLedger`].
    pub threads: usize,
    /// The evaluation path.
    pub mode: EvalMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            mode: EvalMode::Factored,
        }
    }
}

/// What one worker did during a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct WorkerStats {
    /// Points this worker evaluated itself.
    pub evaluated: usize,
    /// Points answered by the shared store (warm entries or peers' work).
    pub reused: usize,
    /// Claims won by stealing from an expired (crashed) holder.
    pub stolen: usize,
}

/// One front member in a streamed partial-front frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// Enumeration index.
    pub index: usize,
    /// Candidate label.
    pub label: String,
    /// Portfolio EDP.
    pub edp: f64,
    /// Portfolio energy (pJ).
    pub energy_pj: f64,
    /// Portfolio cycles.
    pub cycles: f64,
    /// Area (mm²).
    pub area_mm2: f64,
}

impl FrontPoint {
    fn of(result: &PointResult) -> Self {
        Self {
            index: result.index,
            label: result.label.clone(),
            edp: result.edp,
            energy_pj: result.total_energy_pj,
            cycles: result.total_cycles,
            area_mm2: result.area_mm2,
        }
    }
}

/// A streamed snapshot of the front while results are still landing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialFront {
    /// Results landed so far.
    pub completed: usize,
    /// Total candidate points.
    pub total: usize,
    /// Current non-dominated set, ascending by index.
    pub front: Vec<FrontPoint>,
}

/// The assembled sweep outcome.  Contains nothing volatile (no timings, no
/// per-worker attribution), so one completed sweep serializes to identical
/// bytes regardless of worker count, steal order or restarts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FrontReport {
    /// Result schema version.
    pub schema: u32,
    /// Sweep digest hex.
    pub sweep: String,
    /// The configuration that produced this report.
    pub config: SweepConfig,
    /// Total candidate points enumerated.
    pub total_points: usize,
    /// Points whose portfolio mapped successfully.
    pub feasible_points: usize,
    /// The Pareto-optimal candidates, ascending by index, with full
    /// per-model outcomes and instruction-memory menus.
    pub front: Vec<PointResult>,
}

impl FrontReport {
    /// The summary view of the front (what the partial frames stream).
    pub fn front_points(&self) -> Vec<FrontPoint> {
        self.front.iter().map(FrontPoint::of).collect()
    }
}

/// Lazily built portfolio: a fully warm sweep never pays for weight
/// generation and profiling.
struct LazyPortfolio<'a> {
    config: &'a SweepConfig,
    models: Option<Vec<Arc<PortfolioModel>>>,
}

impl<'a> LazyPortfolio<'a> {
    fn get(&mut self) -> io::Result<&[Arc<PortfolioModel>]> {
        if self.models.is_none() {
            self.models = Some(build_portfolio(self.config).map_err(io::Error::other)?);
        }
        Ok(self.models.as_deref().unwrap_or_default())
    }
}

/// Evaluates a batch of owned points, fanning out across scoped threads
/// when `opts.threads > 1`.  Order-preserving: results come back in batch
/// order, so downstream publication and progress streaming are
/// byte-identical to the sequential loop no matter the thread count.
fn evaluate_batch(
    points: &[&CandidatePoint],
    config: &SweepConfig,
    portfolio: &[Arc<PortfolioModel>],
    opts: EvalOptions,
) -> io::Result<Vec<PointResult>> {
    let eval = |point: &CandidatePoint| match opts.mode {
        EvalMode::Full => evaluate_point(point, config, portfolio),
        EvalMode::Factored => evaluate_point_factored(point, config, portfolio),
    };
    if opts.threads <= 1 || points.len() <= 1 {
        return Ok(points.iter().map(|p| eval(p)).collect());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .iter()
            .map(|point| scope.spawn(move || eval(point)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| io::Error::other("sweep evaluation thread panicked"))
            })
            .collect()
    })
}

/// The shared worker loop: drives `config`'s full enumeration to
/// completion against `ledger`, invoking `on_result` exactly once per
/// point (in arrival order) with each landed result.  Claimed points are
/// batched up to `opts.threads` and evaluated by [`evaluate_batch`];
/// results publish and stream in batch (= enumeration) order.
fn run_loop(
    config: &SweepConfig,
    ledger: &SweepLedger,
    opts: EvalOptions,
    mut on_result: impl FnMut(&Arc<PointResult>),
) -> io::Result<WorkerStats> {
    let points = enumerate(config);
    let mut portfolio = LazyPortfolio {
        config,
        models: None,
    };
    let mut stats = WorkerStats::default();
    let batch_cap = opts.threads.max(1);
    let mut pending: Vec<&CandidatePoint> = points.iter().collect();
    while !pending.is_empty() {
        let mut next = Vec::with_capacity(pending.len());
        let mut owned: Vec<&CandidatePoint> = Vec::with_capacity(batch_cap);
        for point in pending {
            if let Some(result) = ledger.result(point.index) {
                stats.reused += 1;
                on_result(&result);
                continue;
            }
            let outcome = ledger.claim(point.index)?;
            if outcome.owned() {
                if outcome == bitwave_store::ClaimOutcome::Stolen {
                    stats.stolen += 1;
                }
                owned.push(point);
                if owned.len() == batch_cap {
                    flush_batch(
                        &owned,
                        config,
                        ledger,
                        &mut portfolio,
                        opts,
                        &mut stats,
                        &mut on_result,
                    )?;
                    owned.clear();
                }
            } else {
                next.push(point);
            }
        }
        if !owned.is_empty() {
            flush_batch(
                &owned,
                config,
                ledger,
                &mut portfolio,
                opts,
                &mut stats,
                &mut on_result,
            )?;
        }
        pending = next;
        if !pending.is_empty() {
            std::thread::sleep(PASS_DELAY);
        }
    }
    Ok(stats)
}

/// Evaluates and publishes one batch of owned points in order.
fn flush_batch(
    owned: &[&CandidatePoint],
    config: &SweepConfig,
    ledger: &SweepLedger,
    portfolio: &mut LazyPortfolio<'_>,
    opts: EvalOptions,
    stats: &mut WorkerStats,
    on_result: &mut impl FnMut(&Arc<PointResult>),
) -> io::Result<()> {
    let results = evaluate_batch(owned, config, portfolio.get()?, opts)?;
    for (point, result) in owned.iter().zip(results) {
        let result = ledger.publish(point.index, result);
        stats.evaluated += 1;
        on_result(&result);
    }
    Ok(())
}

/// Runs one worker over a shared store root until the sweep is complete.
///
/// # Errors
///
/// Propagates ledger I/O and portfolio construction failures.
pub fn run_worker(config: &SweepConfig, root: &Path) -> io::Result<WorkerStats> {
    run_worker_with(config, root, EvalOptions::default())
}

/// [`run_worker`] with explicit [`EvalOptions`].
///
/// # Errors
///
/// Propagates ledger I/O and portfolio construction failures.
pub fn run_worker_with(
    config: &SweepConfig,
    root: &Path,
    opts: EvalOptions,
) -> io::Result<WorkerStats> {
    let ledger = SweepLedger::open(config, Some(root))?;
    run_loop(config, &ledger, opts, |_| {})
}

/// Runs `workers` in-process worker threads over one shared root and
/// returns their per-worker stats (index order).
///
/// # Errors
///
/// Propagates the first worker failure.
pub fn run_sharded(
    config: &SweepConfig,
    root: &Path,
    workers: usize,
) -> io::Result<Vec<WorkerStats>> {
    run_sharded_with(config, root, workers, EvalOptions::default())
}

/// [`run_sharded`] with explicit [`EvalOptions`] applied to every worker.
///
/// # Errors
///
/// Propagates the first worker failure.
pub fn run_sharded_with(
    config: &SweepConfig,
    root: &Path,
    workers: usize,
    opts: EvalOptions,
) -> io::Result<Vec<WorkerStats>> {
    let handles: Vec<_> = (0..workers.max(1))
        .map(|_| {
            let config = config.clone();
            let root = PathBuf::from(root);
            std::thread::spawn(move || run_worker_with(&config, &root, opts))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().map_err(|_| io::Error::other("worker panicked"))?)
        .collect()
}

/// Drives the sweep to completion (evaluating whatever is unclaimed) while
/// streaming a [`PartialFront`] snapshot after every landed result, then
/// assembles the final report.  With `root = None` the sweep runs entirely
/// in memory — the plain sequential path.
///
/// # Errors
///
/// Propagates ledger I/O and portfolio construction failures.
pub fn run_with_progress(
    config: &SweepConfig,
    root: Option<&Path>,
    progress: impl FnMut(&PartialFront),
) -> io::Result<(FrontReport, WorkerStats)> {
    run_with_progress_opts(config, root, EvalOptions::default(), progress)
}

/// [`run_with_progress`] with explicit [`EvalOptions`].
///
/// # Errors
///
/// Propagates ledger I/O and portfolio construction failures.
pub fn run_with_progress_opts(
    config: &SweepConfig,
    root: Option<&Path>,
    opts: EvalOptions,
    mut progress: impl FnMut(&PartialFront),
) -> io::Result<(FrontReport, WorkerStats)> {
    let ledger = SweepLedger::open(config, root)?;
    let total = config.total_points();
    let mut acc = FrontAccumulator::new(OBJECTIVES);
    let mut live: Vec<Option<Arc<PointResult>>> = vec![None; total];
    let mut completed = 0usize;
    let stats = run_loop(config, &ledger, opts, |result| {
        completed += 1;
        if result.feasible {
            acc.insert(result.objectives(), result.index);
        }
        live[result.index] = Some(Arc::clone(result));
        let front = acc
            .indices()
            .into_iter()
            .filter_map(|i| live[i].as_deref().map(FrontPoint::of))
            .collect();
        progress(&PartialFront {
            completed,
            total,
            front,
        });
    })?;
    let report = assemble_report(config, &ledger)
        .ok_or_else(|| io::Error::other("sweep completed but results are missing"))?;
    Ok((report, stats))
}

/// Assembles the final report from a **complete** result set; `None` while
/// any point is still missing.  Reads results in enumeration order, so the
/// report is identical no matter who computed what.
pub fn assemble_report(config: &SweepConfig, ledger: &SweepLedger) -> Option<FrontReport> {
    let total = config.total_points();
    let mut results = Vec::with_capacity(total);
    for index in 0..total {
        results.push(ledger.result(index)?);
    }
    let mut acc = FrontAccumulator::new(OBJECTIVES);
    let mut feasible = 0usize;
    for result in &results {
        if result.feasible {
            feasible += 1;
            acc.insert(result.objectives(), result.index);
        }
    }
    let front = acc
        .indices()
        .into_iter()
        .map(|i| (*results[i]).clone())
        .collect();
    Some(FrontReport {
        schema: SWEEP_SCHEMA_VERSION,
        sweep: ledger.sweep().to_string(),
        config: config.clone(),
        total_points: total,
        feasible_points: feasible,
        front,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("bitwave-sweep-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn fast_tiny() -> SweepConfig {
        let mut config = SweepConfig::tiny();
        config.sample_cap = 1_000;
        config
    }

    #[test]
    fn sequential_sweep_streams_monotonic_progress_and_a_final_front() {
        let config = fast_tiny();
        let mut frames: Vec<PartialFront> = Vec::new();
        let (report, stats) =
            run_with_progress(&config, None, |frame| frames.push(frame.clone())).unwrap();
        assert_eq!(stats.evaluated, config.total_points());
        assert_eq!(stats.reused, 0);
        assert_eq!(frames.len(), config.total_points());
        assert!(frames
            .windows(2)
            .all(|w| w[0].completed + 1 == w[1].completed));
        let last = frames.last().unwrap();
        assert_eq!(last.completed, last.total);
        assert_eq!(last.front, report.front_points());
        assert!(!report.front.is_empty());
        assert_eq!(report.total_points, config.total_points());
        assert_eq!(report.feasible_points, config.total_points());
        // The front is ascending by index and mutually non-dominated.
        assert!(report.front.windows(2).all(|w| w[0].index < w[1].index));
    }

    #[test]
    fn parallel_and_factored_runs_reproduce_the_sequential_report_byte_for_byte() {
        let config = fast_tiny();
        let full_seq = EvalOptions {
            threads: 1,
            mode: EvalMode::Full,
        };
        let full_par = EvalOptions {
            threads: 4,
            mode: EvalMode::Full,
        };
        let factored_par = EvalOptions {
            threads: 4,
            mode: EvalMode::Factored,
        };
        let (sequential, _) = run_with_progress_opts(&config, None, full_seq, |_| {}).unwrap();
        let (parallel, _) = run_with_progress_opts(&config, None, full_par, |_| {}).unwrap();
        let (factored, _) = run_with_progress_opts(&config, None, factored_par, |_| {}).unwrap();
        let expect = serde_json::to_string(&sequential).unwrap();
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            expect,
            "in-process parallel fan-out must not change a byte"
        );
        assert_eq!(
            serde_json::to_string(&factored).unwrap(),
            expect,
            "amortized factored evaluation must not change a byte"
        );
    }

    #[test]
    fn warm_rerun_reuses_every_point_and_replays_byte_identically() {
        let config = fast_tiny();
        let root = temp_root("warm");
        let (cold, cold_stats) = run_with_progress(&config, Some(&root), |_| {}).unwrap();
        assert_eq!(cold_stats.evaluated, config.total_points());
        let (warm, warm_stats) = run_with_progress(&config, Some(&root), |_| {}).unwrap();
        assert_eq!(warm_stats.evaluated, 0, "warm re-sweep recomputes nothing");
        assert_eq!(warm_stats.reused, config.total_points());
        assert_eq!(
            serde_json::to_string(&warm).unwrap(),
            serde_json::to_string(&cold).unwrap(),
            "replay must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
