//! The shared sweep ledger: content-addressed results plus claim files.
//!
//! Workers coordinate through a `bitwave-store` root shared on disk.  Each
//! candidate's [`PointResult`](crate::eval::PointResult) is a
//! content-addressed `"sweep"` entry keyed by `(sweep digest, index)`, so
//! a result computed by any worker (or a previous run — warm restart) is
//! visible to all.  Before computing, a worker must win the point's claim
//! in a [`ClaimLedger`] under `<root>/sweep-claims/<sweep>/`; stale claims
//! from crashed workers expire after the configured TTL and are re-stolen.
//! Results are deterministic, so the rare double-compute after a steal race
//! publishes identical bytes and is harmless.

use crate::config::SweepConfig;
use crate::eval::PointResult;
use bitwave_core::digest::Digest;
use bitwave_store::{ClaimLedger, ClaimOutcome, JsonCodec, StoreConfig, TieredStore};
use serde::Serialize;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Store operation namespace for sweep point results.
pub const SWEEP_OP: &str = "sweep";

/// Addresses one point of one sweep.
#[derive(Serialize)]
struct PointKey {
    sweep: String,
    index: usize,
}

/// A handle onto one sweep's shared state: the result store and (when a
/// root is given) the claim ledger.
pub struct SweepLedger {
    store: TieredStore<JsonCodec<PointResult>>,
    claims: Option<ClaimLedger>,
    sweep: String,
    /// Memoized per-index store keys — the digest of `(sweep, index)` never
    /// changes, so poll loops should not re-serialize it every tick.
    keys: Mutex<HashMap<usize, Digest>>,
    /// Results this handle has already observed.  Once a point has landed
    /// it is immutable (content-addressed), so a polling `--watch` loop
    /// answers landed indices from here with zero syscalls and only
    /// `stat`s the still-missing ones.
    seen: Mutex<HashMap<usize, Arc<PointResult>>>,
}

impl SweepLedger {
    /// Opens the ledger for `config`.  With a `root` the ledger is shared
    /// across processes (results persist, claims arbitrate); without one it
    /// is a private in-memory store — the plain sequential path.
    ///
    /// # Errors
    ///
    /// Propagates store/ledger directory creation failures.
    pub fn open(config: &SweepConfig, root: Option<&Path>) -> io::Result<Self> {
        let sweep = config.digest().to_hex();
        match root {
            Some(root) => {
                let store_config = StoreConfig::default()
                    .with_root(root)
                    .with_mem_entries(config.total_points().max(64));
                let store = TieredStore::new(SWEEP_OP, &store_config)?;
                let claims = ClaimLedger::open(
                    root.join("sweep-claims").join(&sweep),
                    Duration::from_millis(config.claim_ttl_ms),
                )?;
                Ok(Self {
                    store,
                    claims: Some(claims),
                    sweep,
                    keys: Mutex::new(HashMap::new()),
                    seen: Mutex::new(HashMap::new()),
                })
            }
            None => Ok(Self {
                store: TieredStore::memory_only(SWEEP_OP, config.total_points().max(64)),
                claims: None,
                sweep,
                keys: Mutex::new(HashMap::new()),
                seen: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The sweep's digest hex — its identity in the store.
    pub fn sweep(&self) -> &str {
        &self.sweep
    }

    /// The store key of point `index` (memoized per handle).
    pub fn key(&self, index: usize) -> Digest {
        if let Some(hit) = self.keys.lock().ok().and_then(|g| g.get(&index).copied()) {
            return hit;
        }
        let key = Digest::of_value(&PointKey {
            sweep: self.sweep.clone(),
            index,
        })
        .expect("point key is always serializable");
        if let Ok(mut guard) = self.keys.lock() {
            guard.insert(index, key);
        }
        key
    }

    /// Non-blocking result lookup.  An index this handle has already seen
    /// answers from its immutable-result cache without touching the store;
    /// an unseen index costs one `stat` (plus the verified read when the
    /// entry actually exists — memory, then shared disk).
    pub fn result(&self, index: usize) -> Option<Arc<PointResult>> {
        if let Some(hit) = self.seen.lock().ok().and_then(|g| g.get(&index).cloned()) {
            return Some(hit);
        }
        let key = self.key(index);
        if !self.store.contains(key) {
            return None;
        }
        let value = self.store.try_get(key).map(|(value, _)| value)?;
        if let Ok(mut guard) = self.seen.lock() {
            guard.insert(index, Arc::clone(&value));
        }
        Some(value)
    }

    /// Attempts to claim point `index` for computation.  Without a shared
    /// root there is no contention and the claim always succeeds.
    ///
    /// # Errors
    ///
    /// Propagates unexpected claim-file I/O errors.
    pub fn claim(&self, index: usize) -> io::Result<ClaimOutcome> {
        match &self.claims {
            Some(claims) => claims.try_claim(&format!("{index}")),
            None => Ok(ClaimOutcome::Claimed),
        }
    }

    /// Publishes a computed result and releases the point's claim.
    pub fn publish(&self, index: usize, result: PointResult) -> Arc<PointResult> {
        let (value, _) = self
            .store
            .get_or_compute(self.key(index), || Ok::<_, String>(result), |e| e)
            .unwrap_or_else(|_| unreachable!("sweep publish compute is infallible"));
        if let Some(claims) = &self.claims {
            claims.release(&format!("{index}"));
        }
        if let Ok(mut guard) = self.seen.lock() {
            guard.insert(index, Arc::clone(&value));
        }
        value
    }

    /// Test hook: abandon a claim on `index` without publishing — simulates
    /// a worker crash mid-computation.
    pub fn abandon_claim_for_test(&self, index: usize) -> io::Result<ClaimOutcome> {
        self.claim(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::enumerate;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("bitwave-sweep-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn synthetic_result(index: usize) -> PointResult {
        let config = SweepConfig::tiny();
        let point = enumerate(&config)[index];
        PointResult {
            index,
            label: point.label(),
            point,
            area_mm2: point.area_mm2(),
            feasible: true,
            error: None,
            models: Vec::new(),
            total_cycles: 1.0,
            total_energy_pj: 2.0,
            edp: 2.0,
            menu: Vec::new(),
        }
    }

    #[test]
    fn results_are_shared_across_ledger_handles() {
        let config = SweepConfig::tiny();
        let root = temp_root("share");
        let a = SweepLedger::open(&config, Some(&root)).unwrap();
        let b = SweepLedger::open(&config, Some(&root)).unwrap();
        assert!(a.result(0).is_none());
        a.publish(0, synthetic_result(0));
        let replayed = b.result(0).expect("second handle sees the disk entry");
        assert_eq!(replayed.index, 0);
        assert!(b.result(1).is_none(), "other points stay absent");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn claims_arbitrate_across_handles_and_release_on_publish() {
        let config = SweepConfig::tiny();
        let root = temp_root("claims");
        let a = SweepLedger::open(&config, Some(&root)).unwrap();
        let b = SweepLedger::open(&config, Some(&root)).unwrap();
        assert_eq!(a.claim(2).unwrap(), ClaimOutcome::Claimed);
        assert_eq!(b.claim(2).unwrap(), ClaimOutcome::Held);
        a.publish(2, synthetic_result(2));
        // Publishing released the claim; the point is answered by the store
        // so no one needs it, but a re-claim must not dead-lock.
        assert_eq!(b.claim(2).unwrap(), ClaimOutcome::Claimed);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn watch_polls_answer_seen_indices_without_reopening_entry_files() {
        let config = SweepConfig::tiny();
        let root = temp_root("seen");
        let a = SweepLedger::open(&config, Some(&root)).unwrap();
        a.publish(3, synthetic_result(3));
        assert!(a.result(3).is_some());
        // Remove the entry file behind the ledger's back: a handle that has
        // already observed the landed (immutable) result keeps answering
        // from its cache with zero syscalls...
        let path = root.join(SWEEP_OP).join(a.key(3).to_hex());
        std::fs::remove_file(&path).unwrap();
        assert!(a.result(3).is_some(), "seen cache answers without the file");
        // ...while a fresh handle only stats the missing entry and reports
        // it absent without attempting a read.
        let b = SweepLedger::open(&config, Some(&root)).unwrap();
        assert!(b.result(3).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn distinct_configs_do_not_share_results() {
        let root = temp_root("isolated");
        let tiny = SweepConfig::tiny();
        let mut other = tiny.clone();
        other.seed += 1;
        let a = SweepLedger::open(&tiny, Some(&root)).unwrap();
        let b = SweepLedger::open(&other, Some(&root)).unwrap();
        a.publish(0, synthetic_result(0));
        assert!(b.result(0).is_none(), "different sweep digest, no overlap");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn memory_only_ledger_always_claims() {
        let config = SweepConfig::tiny();
        let ledger = SweepLedger::open(&config, None).unwrap();
        assert_eq!(ledger.claim(0).unwrap(), ClaimOutcome::Claimed);
        assert_eq!(ledger.claim(0).unwrap(), ClaimOutcome::Claimed);
        ledger.publish(0, synthetic_result(0));
        assert!(ledger.result(0).is_some());
    }
}
