//! Candidate enumeration: hardware points and their SU menus.
//!
//! A candidate is one combination of array size, synchronisation
//! granularity, SRAM sizes, interface bandwidths and SU-menu family.  The
//! menu families are defined at the paper's 4096-lane scale and re-scaled
//! to each candidate's lane count by power-of-two factors (growing the
//! output-channel unrolling first, the way Table I's own SU1→SU4
//! progression trades `OXu` for `Ku`), so every candidate's menu saturates
//! its array.
//!
//! The area objective extrapolates the paper's Table III breakdown: SRAM
//! area scales with capacity, PE-array area with lane count, and the data
//! dispatcher with the number of independently scheduled lane groups
//! (`lanes / sync_lanes` — finer sync costs more dispatchers); the fetcher,
//! index parser and controller are treated as fixed.

use crate::config::{MenuKind, SweepConfig};
use bitwave_accel::area::BITWAVE_AREA_MM2;
use bitwave_accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave_dataflow::su::{bitwave_su, SpatialUnrolling, SuSet};
use bitwave_dataflow::DramSpec;
use serde::{Deserialize, Serialize};

/// One hardware candidate, identified by its enumeration `index` within a
/// sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidatePoint {
    /// Position in the deterministic enumeration order.
    pub index: usize,
    /// Peak bit-serial lanes.
    pub lanes: usize,
    /// Lanes sharing one column schedule.
    pub sync_lanes: usize,
    /// Weight-SRAM size (KiB).
    pub weight_sram_kb: usize,
    /// Activation-SRAM size (KiB).
    pub activation_sram_kb: usize,
    /// DRAM interface width (bits/cycle).
    pub dram_bandwidth_bits: usize,
    /// Operand-SRAM port width (bits/cycle).
    pub sram_bandwidth_bits: usize,
    /// SU menu family.
    pub menu: MenuKind,
}

/// Enumerates every candidate of `config` in deterministic nested-axis
/// order (lanes outermost, menu innermost) — the order every worker, the
/// claim ledger and the final report agree on.
pub fn enumerate(config: &SweepConfig) -> Vec<CandidatePoint> {
    let mut points = Vec::with_capacity(config.total_points());
    let mut index = 0;
    for &lanes in &config.lanes {
        for &sync_lanes in &config.sync_lanes {
            for &weight_sram_kb in &config.weight_sram_kb {
                for &activation_sram_kb in &config.activation_sram_kb {
                    for &dram_bandwidth_bits in &config.dram_bandwidth_bits {
                        for &sram_bandwidth_bits in &config.sram_bandwidth_bits {
                            for &menu in &config.menus {
                                points.push(CandidatePoint {
                                    index,
                                    lanes,
                                    sync_lanes,
                                    weight_sram_kb,
                                    activation_sram_kb,
                                    dram_bandwidth_bits,
                                    sram_bandwidth_bits,
                                    menu,
                                });
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    points
}

impl CandidatePoint {
    /// Stable human-readable label, e.g.
    /// `"BW[table1 4096L s8 w256K a256K]"`.
    pub fn label(&self) -> String {
        format!(
            "BW[{} {}L s{} w{}K a{}K]",
            self.menu.name(),
            self.lanes,
            self.sync_lanes,
            self.weight_sram_kb,
            self.activation_sram_kb
        )
    }

    /// Materialises the accelerator spec this point describes: the full
    /// BitWave optimisation stack on the candidate's hardware dimensions.
    pub fn spec(&self) -> AcceleratorSpec {
        let mut spec = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        spec.label = self.label();
        spec.su_set = menu(self.menu, self.lanes);
        spec.sync_lanes = self.sync_lanes;
        spec.dram_bandwidth_bits = self.dram_bandwidth_bits;
        spec.act_sram_bandwidth_bits = self.sram_bandwidth_bits;
        spec.weight_sram_bandwidth_bits = self.sram_bandwidth_bits;
        // The sweep's bandwidth axis is a *real* constraint: candidates run
        // under the roofline DRAM tier, so a narrow interface shows up as
        // memory-bound layers instead of a uniformly additive tax.
        spec.dram = DramSpec::constrained(self.dram_bandwidth_bits);
        spec
    }

    /// The area objective (mm²), extrapolated from Table III's breakdown at
    /// the paper's design point (4096 lanes, sync 8, 512 KiB total SRAM —
    /// exactly [`BITWAVE_AREA_MM2`]).
    pub fn area_mm2(&self) -> f64 {
        // Table III fractions: SRAM 55.08 %, PE array 24.7 %, dispatcher
        // 10.8 %; fetcher + index parser + controller (9.42 %) fixed.
        const SRAM: f64 = 0.5508;
        const PE_ARRAY: f64 = 0.247;
        const DISPATCHER: f64 = 0.108;
        const FIXED: f64 = 1.0 - SRAM - PE_ARRAY - DISPATCHER;
        let total_kb = (self.weight_sram_kb + self.activation_sram_kb) as f64;
        let groups = (self.lanes / self.sync_lanes.max(1)) as f64;
        BITWAVE_AREA_MM2
            * (SRAM * total_kb / 512.0
                + PE_ARRAY * self.lanes as f64 / 4096.0
                + DISPATCHER * groups / 512.0
                + FIXED)
    }
}

/// The BitSim exemplar's seven dataflow tuples
/// `(pe_dotprod_size, pe_array_height, pe_array_width)` mapped onto the SU
/// vocabulary as `(Cu, Ku, OXu)`, at the exemplar's native scale.
const BITSIM_TUPLES: [(&str, usize, usize, usize); 7] = [
    ("BS1", 8, 32, 16),
    ("BS2", 16, 32, 8),
    ("BS3", 32, 32, 4),
    ("BS4", 128, 8, 1),
    ("BS5", 16, 64, 1),
    ("BS6", 32, 32, 1),
    ("BS7", 16, 1, 16),
];

/// Builds the SU menu of one family scaled to `lanes`.
pub fn menu(kind: MenuKind, lanes: usize) -> SuSet {
    let (name, base): (String, Vec<SpatialUnrolling>) = match kind {
        MenuKind::TableI => (format!("BitWave-{lanes}"), bitwave_su::ALL.to_vec()),
        MenuKind::BitSim => (
            format!("BitSim-{lanes}"),
            BITSIM_TUPLES
                .iter()
                .map(|&(tag, c, k, ox)| named_su(tag, c, k, ox, 1))
                .collect(),
        ),
    };
    // Both families peak at 4096 lanes natively; scale every SU by the same
    // power-of-two factor so relative bandwidth trade-offs are preserved.
    let options = base
        .into_iter()
        .map(|su| scale_su(su, lanes, 4096))
        .collect();
    SuSet { name, options }
}

/// Scales `su` by the power-of-two factor `target/native`: growth doubles
/// `Ku` (or `Gu` for the depthwise shape); shrink halves the largest of
/// `Ku`/`OXu`/`Cu`/`Gu` first, keeping shapes as square as the menu allows.
/// The scaled SU gets a derived name (`"SU1@8192"`) unless unchanged.
fn scale_su(su: SpatialUnrolling, target: usize, native: usize) -> SpatialUnrolling {
    if target == native {
        return su;
    }
    let mut out = su;
    let mut scale = target as f64 / native as f64;
    while scale > 1.0 {
        if out.g > 1 {
            out.g *= 2;
        } else {
            out.k *= 2;
        }
        scale /= 2.0;
    }
    while scale < 1.0 {
        // Halve the largest divisible dimension; every menu dimension is a
        // power of two, so one of them always is.
        let dims = [out.k, out.ox, out.c, out.g];
        let max = *dims.iter().max().unwrap_or(&1);
        if max <= 1 {
            break;
        }
        if out.k == max {
            out.k /= 2;
        } else if out.ox == max {
            out.ox /= 2;
        } else if out.c == max {
            out.c /= 2;
        } else {
            out.g /= 2;
        }
        scale *= 2.0;
    }
    named_su(
        &format!("{}@{target}", su.name),
        out.c.max(1),
        out.k.max(1),
        out.ox.max(1),
        out.g.max(1),
    )
}

/// Builds an SU with a runtime-derived name.  `SpatialUnrolling::name` is a
/// `&'static str`, so the name goes through the crate's deserializer, whose
/// intern pool leaks each distinct menu name exactly once (the sweep's name
/// vocabulary is a few dozen strings).
fn named_su(name: &str, c: usize, k: usize, ox: usize, g: usize) -> SpatialUnrolling {
    let json = format!(
        "{{\"name\":\"{name}\",\"c\":{c},\"k\":{k},\"ox\":{ox},\"oy\":1,\"fx\":1,\"fy\":1,\"g\":{g}}}"
    );
    serde_json::from_str(&json).expect("menu SU json is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_dense_and_deterministic() {
        let config = SweepConfig::tiny();
        let points = enumerate(&config);
        assert_eq!(points.len(), config.total_points());
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        assert_eq!(points, enumerate(&config));
        // Menu is the innermost axis.
        assert_eq!(points[0].menu, MenuKind::TableI);
        assert_eq!(points[1].menu, MenuKind::BitSim);
        assert_eq!(points[0].lanes, points[1].lanes);
    }

    #[test]
    fn native_scale_menus_keep_the_paper_shapes() {
        let table1 = menu(MenuKind::TableI, 4096);
        assert_eq!(table1.options.len(), 7);
        assert_eq!(table1.peak_parallelism(), 4096);
        assert_eq!(table1.options[0], bitwave_su::SU1);
        let bitsim = menu(MenuKind::BitSim, 4096);
        assert_eq!(bitsim.options.len(), 7);
        assert_eq!(bitsim.peak_parallelism(), 4096);
        // BitSim tuple parallelisms: 3×4096, 3×1024, 1×256.
        let par: Vec<usize> = bitsim
            .options
            .iter()
            .map(SpatialUnrolling::parallelism)
            .collect();
        assert_eq!(par, vec![4096, 4096, 4096, 1024, 1024, 1024, 256]);
    }

    #[test]
    fn scaled_menus_track_the_lane_budget() {
        for lanes in [1024, 2048, 8192] {
            for kind in [MenuKind::TableI, MenuKind::BitSim] {
                let set = menu(kind, lanes);
                assert_eq!(
                    set.peak_parallelism(),
                    lanes,
                    "{} menu must peak at {lanes}",
                    set.name
                );
            }
        }
        // Scaled SUs carry derived names; repeated construction interns to
        // one allocation so menus stay cheap to rebuild.
        let a = menu(MenuKind::TableI, 8192).options[0];
        let b = menu(MenuKind::TableI, 8192).options[0];
        assert_eq!(a.name, "SU1@8192");
        assert!(std::ptr::eq(a.name, b.name));
    }

    #[test]
    fn paper_design_point_reproduces_published_area() {
        let point = CandidatePoint {
            index: 0,
            lanes: 4096,
            sync_lanes: 8,
            weight_sram_kb: 256,
            activation_sram_kb: 256,
            dram_bandwidth_bits: 64,
            sram_bandwidth_bits: 1024,
            menu: MenuKind::TableI,
        };
        assert!((point.area_mm2() - BITWAVE_AREA_MM2).abs() < 1e-9);
        // Monotonicity along each axis.
        let mut bigger = point;
        bigger.lanes = 8192;
        assert!(bigger.area_mm2() > point.area_mm2());
        let mut finer = point;
        finer.sync_lanes = 1;
        assert!(finer.area_mm2() > point.area_mm2());
        let mut more_sram = point;
        more_sram.weight_sram_kb = 1024;
        assert!(more_sram.area_mm2() > point.area_mm2());
    }

    #[test]
    fn spec_reflects_every_axis() {
        let point = CandidatePoint {
            index: 3,
            lanes: 8192,
            sync_lanes: 16,
            weight_sram_kb: 512,
            activation_sram_kb: 128,
            dram_bandwidth_bits: 128,
            sram_bandwidth_bits: 2048,
            menu: MenuKind::BitSim,
        };
        let spec = point.spec();
        assert_eq!(spec.su_set.peak_parallelism(), 8192);
        assert_eq!(spec.sync_lanes, 16);
        assert_eq!(spec.dram_bandwidth_bits, 128);
        assert_eq!(spec.act_sram_bandwidth_bits, 2048);
        assert_eq!(spec.weight_sram_bandwidth_bits, 2048);
        assert!(spec.label.contains("bitsim"));
        assert!(spec.bitwave_opts.dynamic_dataflow);
        // The bandwidth axis is load-bearing: candidates run constrained.
        assert_eq!(spec.dram, DramSpec::constrained(128));
    }
}
