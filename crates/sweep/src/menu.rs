//! Table-I-style instruction-memory menu export.
//!
//! Each Pareto-optimal candidate ships the SU menu its runtime dispatcher
//! would hold in instruction memory: one row per SU with the unrolling
//! dimensions and the weight/activation bandwidth columns of the paper's
//! Table I.

use bitwave_dataflow::su::SuSet;
use serde::{Deserialize, Serialize};

/// One instruction-memory menu row (one selectable SU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MenuRow {
    /// SU name (`"SU1"`, `"BS3@8192"`, …).
    pub name: String,
    /// Parallel input channels (`Cu`).
    pub c: usize,
    /// Parallel output channels (`Ku`).
    pub k: usize,
    /// Parallel output columns (`OXu`).
    pub ox: usize,
    /// Parallel channel groups (`Gu`, depthwise shapes).
    pub g: usize,
    /// Total parallel lanes.
    pub parallelism: usize,
    /// Weight bandwidth (bit/cycle, bit-serial streaming) — Table I "W BW".
    pub weight_bw_bits: usize,
    /// Activation bandwidth (bit/cycle, 8-bit operands) — Table I "Act BW".
    pub act_bw_bits: usize,
}

/// Renders an SU set as menu rows, in the set's (instruction-memory) order.
pub fn menu_rows(set: &SuSet) -> Vec<MenuRow> {
    set.options
        .iter()
        .map(|su| MenuRow {
            name: su.name.to_string(),
            c: su.c,
            k: su.k,
            ox: su.ox,
            g: su.g,
            parallelism: su.parallelism(),
            weight_bw_bits: su.weight_bits_per_cycle_bit_serial(),
            act_bw_bits: su.activation_bits_per_cycle(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_menu_reproduces_the_paper_columns() {
        let rows = menu_rows(&SuSet::bitwave());
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].name, "SU1");
        assert_eq!(rows[0].weight_bw_bits, 256);
        assert_eq!(rows[0].act_bw_bits, 1024);
        assert_eq!(rows[3].weight_bw_bits, 1024);
        assert_eq!(rows[3].act_bw_bits, 64);
        assert_eq!(rows[6].parallelism, 128);
    }
}
