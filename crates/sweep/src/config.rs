//! Sweep configuration: the hardware axes, the workload portfolio, and the
//! per-layer mapping space each candidate is searched with.
//!
//! A configuration fully determines the candidate enumeration order and
//! every evaluation input, so its [digest](SweepConfig::digest) addresses
//! the sweep's results in the shared store: two processes with the same
//! configuration cooperate on one result set, and a changed configuration
//! starts a fresh one.

use bitwave_core::digest::Digest;
use bitwave_dse::SearchSpace;
use serde::{Deserialize, Serialize};

/// Version stamp mixed into every sweep digest; bump when the candidate
/// enumeration, the evaluation semantics, or the result schema changes so
/// stale persisted results can never replay as current ones.  Version 2:
/// candidates evaluate under the constrained DRAM roofline tier (the
/// bandwidth axis became a real per-layer `max(compute, dram)` constraint
/// instead of an additive term), so version-1 results must not replay.
pub const SWEEP_SCHEMA_VERSION: u32 = 2;

/// Which SU menu family a candidate ships in its instruction memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MenuKind {
    /// The paper's Table I seven-SU menu (SU1–SU7).
    TableI,
    /// The BitSim exemplar's seven-entry dataflow tuple list
    /// (`(pe_dotprod_size, pe_array_height, pe_array_width)`).
    BitSim,
}

impl MenuKind {
    /// Short stable name used in labels and exports.
    pub fn name(self) -> &'static str {
        match self {
            MenuKind::TableI => "table1",
            MenuKind::BitSim => "bitsim",
        }
    }

    /// Parses a [`MenuKind::name`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "table1" => Some(MenuKind::TableI),
            "bitsim" => Some(MenuKind::BitSim),
            _ => None,
        }
    }
}

/// The whole-accelerator sweep configuration.  The cross product of the
/// hardware axes (times the menu list) is the candidate space; every
/// candidate is evaluated against every portfolio model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Peak bit-serial lane counts (the paper's array is 4096 = 512 BCEs ×
    /// 8 lanes).  Power-of-two values; SU menus scale to each.
    pub lanes: Vec<usize>,
    /// Lane-synchronisation granularities (lanes sharing one column
    /// schedule; the paper's dispatcher syncs 8).
    pub sync_lanes: Vec<usize>,
    /// Weight-SRAM sizes in KiB.
    pub weight_sram_kb: Vec<usize>,
    /// Activation-SRAM sizes in KiB.
    pub activation_sram_kb: Vec<usize>,
    /// DRAM interface widths in bits/cycle.
    pub dram_bandwidth_bits: Vec<usize>,
    /// On-chip SRAM port widths in bits/cycle (applied to both operand
    /// SRAMs).
    pub sram_bandwidth_bits: Vec<usize>,
    /// SU menu families to try.
    pub menus: Vec<MenuKind>,
    /// Workload portfolio: registry model names resolved via
    /// `bitwave_dnn::models::by_name`.
    pub portfolio: Vec<String>,
    /// RNG seed for the synthetic weights.
    pub seed: u64,
    /// Per-layer weight sampling cap for the sparsity profiles.
    pub sample_cap: usize,
    /// Claim time-to-live in milliseconds: a worker that holds a claim
    /// longer than this without finishing is presumed crashed and its point
    /// is re-stolen.  **Not** part of the sweep identity.
    pub claim_ttl_ms: u64,
    /// The per-layer mapping space each candidate is searched with.
    pub space: SearchSpace,
}

/// The digest-relevant view of a configuration: everything except
/// operational knobs (`claim_ttl_ms`) that cannot change results.  Owned
/// (the vendored serde derive has no lifetime support); digesting clones a
/// handful of small vectors once per sweep.
#[derive(Serialize)]
struct SweepIdentity {
    schema: u32,
    lanes: Vec<usize>,
    sync_lanes: Vec<usize>,
    weight_sram_kb: Vec<usize>,
    activation_sram_kb: Vec<usize>,
    dram_bandwidth_bits: Vec<usize>,
    sram_bandwidth_bits: Vec<usize>,
    menus: Vec<MenuKind>,
    portfolio: Vec<String>,
    seed: u64,
    sample_cap: usize,
    space: SearchSpace,
}

impl SweepConfig {
    /// The **tiny** space: 8 points over one small model — CI smoke runs,
    /// crash-recovery tests and the sharded≡sequential property test.
    pub fn tiny() -> Self {
        Self {
            lanes: vec![4096, 8192],
            sync_lanes: vec![8, 16],
            weight_sram_kb: vec![256],
            activation_sram_kb: vec![256],
            dram_bandwidth_bits: vec![64],
            sram_bandwidth_bits: vec![1024],
            menus: vec![MenuKind::TableI, MenuKind::BitSim],
            portfolio: vec!["cnn-lstm".to_string()],
            seed: 42,
            sample_cap: 2_000,
            claim_ttl_ms: 30_000,
            space: SearchSpace {
                min_fill: 0.25,
                tile_factors: vec![1],
                include_su_set: true,
                max_front: 4,
                max_parallelism: None,
            },
        }
    }

    /// The **small** space: 24 points over a two-model portfolio — the
    /// `bench_sweep` gates.
    pub fn small() -> Self {
        Self {
            lanes: vec![2048, 4096, 8192],
            sync_lanes: vec![8, 16],
            weight_sram_kb: vec![256, 512],
            activation_sram_kb: vec![256],
            dram_bandwidth_bits: vec![64],
            sram_bandwidth_bits: vec![1024],
            menus: vec![MenuKind::TableI, MenuKind::BitSim],
            portfolio: vec!["resnet18".to_string(), "cnn-lstm".to_string()],
            seed: 42,
            sample_cap: 4_000,
            claim_ttl_ms: 30_000,
            space: SearchSpace {
                min_fill: 0.25,
                tile_factors: vec![1, 2],
                include_su_set: true,
                max_front: 8,
                max_parallelism: None,
            },
        }
    }

    /// The **full** space: ~10⁴ points over the four-model portfolio — the
    /// overnight coordinator run the CLI defaults to documenting.
    pub fn full() -> Self {
        Self {
            lanes: vec![1024, 2048, 4096, 8192],
            sync_lanes: vec![1, 4, 8, 16, 32, 64],
            weight_sram_kb: vec![64, 128, 256, 512, 1024],
            activation_sram_kb: vec![64, 128, 256, 512, 1024],
            dram_bandwidth_bits: vec![32, 64, 128],
            sram_bandwidth_bits: vec![512, 1024, 2048],
            menus: vec![MenuKind::TableI, MenuKind::BitSim],
            portfolio: vec![
                "resnet18".to_string(),
                "mobilenet-v2".to_string(),
                "cnn-lstm".to_string(),
                "bert-base".to_string(),
            ],
            seed: 42,
            sample_cap: 20_000,
            claim_ttl_ms: 300_000,
            space: SearchSpace::default(),
        }
    }

    /// Resolves a preset by name (`tiny` / `small` / `full`).
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "tiny" => Some(Self::tiny()),
            "small" => Some(Self::small()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// Number of candidate points (the cross product of every axis).
    pub fn total_points(&self) -> usize {
        self.lanes.len()
            * self.sync_lanes.len()
            * self.weight_sram_kb.len()
            * self.activation_sram_kb.len()
            * self.dram_bandwidth_bits.len()
            * self.sram_bandwidth_bits.len()
            * self.menus.len()
    }

    /// Content digest of everything that determines results — the sweep's
    /// identity in the shared store and the `/v1/design` replay key.
    pub fn digest(&self) -> Digest {
        Digest::of_value(&SweepIdentity {
            schema: SWEEP_SCHEMA_VERSION,
            lanes: self.lanes.clone(),
            sync_lanes: self.sync_lanes.clone(),
            weight_sram_kb: self.weight_sram_kb.clone(),
            activation_sram_kb: self.activation_sram_kb.clone(),
            dram_bandwidth_bits: self.dram_bandwidth_bits.clone(),
            sram_bandwidth_bits: self.sram_bandwidth_bits.clone(),
            menus: self.menus.clone(),
            portfolio: self.portfolio.clone(),
            seed: self.seed,
            sample_cap: self.sample_cap,
            space: self.space.clone(),
        })
        .expect("sweep identity is always serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes() {
        assert_eq!(SweepConfig::tiny().total_points(), 8);
        assert_eq!(SweepConfig::small().total_points(), 24);
        let full = SweepConfig::full().total_points();
        assert!(
            (10_000..100_000).contains(&full),
            "full preset must land in the 10^4–10^5 band, got {full}"
        );
    }

    #[test]
    fn digest_ignores_operational_knobs_only() {
        let base = SweepConfig::tiny();
        let mut ttl = base.clone();
        ttl.claim_ttl_ms += 1;
        assert_eq!(base.digest(), ttl.digest(), "TTL cannot change results");
        let mut seed = base.clone();
        seed.seed += 1;
        assert_ne!(base.digest(), seed.digest());
        let mut space = base.clone();
        space.space.max_front += 1;
        assert_ne!(base.digest(), space.digest());
    }

    #[test]
    fn config_roundtrips_through_json() {
        let config = SweepConfig::small();
        let json = serde_json::to_string(&config).unwrap();
        let back: SweepConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.digest(), config.digest());
    }

    #[test]
    fn menu_names_roundtrip() {
        for menu in [MenuKind::TableI, MenuKind::BitSim] {
            assert_eq!(MenuKind::parse(menu.name()), Some(menu));
        }
        assert_eq!(MenuKind::parse("nope"), None);
    }
}
