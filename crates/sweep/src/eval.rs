//! Candidate evaluation: one hardware point against the whole workload
//! portfolio, through the existing per-layer design-space search and the
//! Eq. 1–5 cost stack.
//!
//! Two amortization layers make the sweep cheap without changing a single
//! output byte:
//!
//! * **Portfolio sharing** — sparsity profiles and synthetic weights depend
//!   only on `(model, seed, sample_cap)`, so [`build_portfolio`] serves
//!   each model from a process-wide `Arc` store: every candidate, worker
//!   thread and serve request prices the same profiled portfolio.
//! * **Factored groups** — candidates that differ only along the
//!   SRAM-size / DRAM-bandwidth axes share identical compute-side costs,
//!   so [`evaluate_point_factored`] factors each portfolio model once per
//!   `(lanes, menu, bandwidth, bit-class)` group
//!   ([`bitwave_dse::factor_network`]) and re-prices the factored searches
//!   per point — bit-identical to [`evaluate_point`], which remains the
//!   reference path.

use crate::config::SweepConfig;
use crate::menu::{menu_rows, MenuRow};
use crate::space::CandidatePoint;
use bitwave::context::ExperimentContext;
use bitwave_accel::sparsity::LayerSparsityProfile;
use bitwave_accel::{bits_per_mac_class, EnergyModel};
use bitwave_core::digest::Digest;
use bitwave_dataflow::MemoryHierarchy;
use bitwave_dnn::models::{by_name, NetworkSpec};
use bitwave_dse::{factor_network, DseEngine, DseError, FactoredNetworkSearch};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The pre-computed, hardware-independent inputs of one portfolio model:
/// the network shape and its per-layer sparsity profiles.  Profiles depend
/// only on (model, seed, sample cap), so one portfolio serves every
/// candidate a worker evaluates.
#[derive(Debug)]
pub struct PortfolioModel {
    /// The network.
    pub network: NetworkSpec,
    /// Per-layer sparsity profiles aligned with `network.layers`.
    pub profiles: Vec<LayerSparsityProfile>,
}

/// Process-wide portfolio store keyed by `(model, seed, sample_cap)`.
/// Bounded: on overflow the whole map is dropped (entries are rebuildable
/// and real sweeps cycle through a handful of models).
static PORTFOLIO_STORE: OnceLock<Mutex<HashMap<String, Arc<PortfolioModel>>>> = OnceLock::new();
static PROFILE_REUSE: AtomicU64 = AtomicU64::new(0);
const PORTFOLIO_CACHE_CAP: usize = 32;

/// Number of portfolio models served from the process-wide profile store
/// instead of being re-generated and re-profiled (the
/// `bitwave_sweep_profile_reuse_total` metric).
pub fn profile_reuse_total() -> u64 {
    PROFILE_REUSE.load(Ordering::Relaxed)
}

fn portfolio_model(
    name: &str,
    seed: u64,
    sample_cap: usize,
) -> Result<Arc<PortfolioModel>, String> {
    let key = format!("{name}|{seed}|{sample_cap}");
    let store = PORTFOLIO_STORE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = store.lock().ok().and_then(|g| g.get(&key).cloned()) {
        PROFILE_REUSE.fetch_add(1, Ordering::Relaxed);
        return Ok(hit);
    }
    // Build outside the lock; a racing duplicate build produces identical
    // content and the first insert wins.
    let ctx = ExperimentContext::default()
        .with_seed(seed)
        .with_sample_cap(sample_cap);
    let network = by_name(name).map_err(|e| format!("unknown portfolio model `{name}`: {e}"))?;
    let weights = ctx.weights(&network);
    let profiles = ctx
        .profiles(&network, &weights)
        .map_err(|e| format!("profiling {name}: {e}"))?;
    let model = Arc::new(PortfolioModel { network, profiles });
    if let Ok(mut guard) = store.lock() {
        if guard.len() >= PORTFOLIO_CACHE_CAP {
            guard.clear();
        }
        return Ok(Arc::clone(guard.entry(key).or_insert(model)));
    }
    Ok(model)
}

/// Builds the portfolio, sharing each model's profiles through the
/// process-wide store — weight generation and profiling run once per
/// `(model, seed, sample_cap)` no matter how many candidates, worker
/// threads or serve requests price against it.
///
/// # Errors
///
/// Returns a message naming the unknown model or the profiling failure.
pub fn build_portfolio(config: &SweepConfig) -> Result<Vec<Arc<PortfolioModel>>, String> {
    config
        .portfolio
        .iter()
        .map(|name| portfolio_model(name, config.seed, config.sample_cap))
        .collect()
}

/// One factored compute group: each portfolio model's outcome of
/// [`factor_network`] under the group's representative accelerator spec.
struct GroupEntry {
    models: Vec<Result<FactoredNetworkSearch, DseError>>,
}

struct GroupState {
    map: HashMap<String, Arc<OnceLock<Arc<GroupEntry>>>>,
    order: VecDeque<String>,
}

/// FIFO-bounded, single-flight cache of factored compute groups.  A sweep
/// visits its `(lanes, menu, bandwidth, bit-class)` sub-grids in
/// enumeration order, so a small window holds every live group.
pub struct EvalEngine {
    groups: Mutex<GroupState>,
}

const GROUP_CACHE_CAP: usize = 8;

impl EvalEngine {
    fn new() -> Self {
        Self {
            groups: Mutex::new(GroupState {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Drops every cached group — benches use this to measure cold
    /// factoring without a fresh process.
    pub fn clear(&self) {
        let mut state = self
            .groups
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.map.clear();
        state.order.clear();
    }

    /// Cached groups currently held.
    pub fn groups_held(&self) -> usize {
        self.groups.lock().map(|state| state.map.len()).unwrap_or(0)
    }

    fn group(&self, key: String, build: impl FnOnce() -> GroupEntry) -> Arc<GroupEntry> {
        let slot = {
            let mut state = self
                .groups
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match state.map.get(&key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    if state.order.len() >= GROUP_CACHE_CAP {
                        if let Some(evicted) = state.order.pop_front() {
                            state.map.remove(&evicted);
                        }
                    }
                    let slot = Arc::new(OnceLock::new());
                    state.map.insert(key.clone(), Arc::clone(&slot));
                    state.order.push_back(key);
                    slot
                }
            }
        };
        // Single-flight: concurrent worker threads hitting one cold group
        // block here while the first caller factors it.
        Arc::clone(slot.get_or_init(|| Arc::new(build())))
    }
}

/// The process-wide [`EvalEngine`].
pub fn global_eval_engine() -> &'static EvalEngine {
    static ENGINE: OnceLock<EvalEngine> = OnceLock::new();
    ENGINE.get_or_init(EvalEngine::new)
}

/// One model's outcome on one candidate (searched mappings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOutcome {
    /// Model name.
    pub model: String,
    /// Σ total cycles under the searched mappings.
    pub cycles: f64,
    /// Σ energy (pJ) under the searched mappings.
    pub energy_pj: f64,
    /// Network EDP (`cycles × energy`).
    pub edp: f64,
}

/// The persisted result of evaluating one candidate point — the store
/// entry the sharded sweep coordinates on, so it carries everything the
/// final report needs (no re-evaluation on assembly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointResult {
    /// Enumeration index within the sweep.
    pub index: usize,
    /// Candidate label.
    pub label: String,
    /// The hardware point.
    pub point: CandidatePoint,
    /// Extrapolated area (mm²).
    pub area_mm2: f64,
    /// Whether every portfolio model mapped onto this hardware.  An
    /// infeasible point records its first error and stays off the front.
    pub feasible: bool,
    /// First mapping error for infeasible points.
    pub error: Option<String>,
    /// Per-model outcomes in portfolio order (empty when infeasible).
    pub models: Vec<ModelOutcome>,
    /// Σ cycles across the portfolio.
    pub total_cycles: f64,
    /// Σ energy across the portfolio (pJ).
    pub total_energy_pj: f64,
    /// Portfolio EDP: Σ per-model EDP (each model runs as its own
    /// workload, so EDPs add rather than multiply).
    pub edp: f64,
    /// Table-I-style instruction-memory menu of this candidate.
    pub menu: Vec<MenuRow>,
}

impl PointResult {
    /// The sweep's objective vector: `[EDP, energy, cycles, area]`, all
    /// minimised.
    pub fn objectives(&self) -> [f64; 4] {
        [
            self.edp,
            self.total_energy_pj,
            self.total_cycles,
            self.area_mm2,
        ]
    }
}

/// The point's memory hierarchy (its SRAM axes over the shared defaults).
fn point_memory(point: &CandidatePoint) -> MemoryHierarchy {
    MemoryHierarchy {
        weight_sram_bytes: point.weight_sram_kb * 1024,
        activation_sram_bytes: point.activation_sram_kb * 1024,
        ..MemoryHierarchy::bitwave_default()
    }
}

/// Assembles the shared tail of both evaluation paths.
fn assemble_result(
    point: &CandidatePoint,
    spec: &bitwave_accel::AcceleratorSpec,
    mut models: Vec<ModelOutcome>,
    error: Option<String>,
) -> PointResult {
    let feasible = error.is_none();
    if !feasible {
        models.clear();
    }
    let total_cycles: f64 = models.iter().map(|m| m.cycles).sum();
    let total_energy_pj: f64 = models.iter().map(|m| m.energy_pj).sum();
    let edp: f64 = models.iter().map(|m| m.edp).sum();
    PointResult {
        index: point.index,
        label: point.label(),
        point: *point,
        area_mm2: point.area_mm2(),
        feasible,
        error,
        models,
        total_cycles,
        total_energy_pj,
        edp,
        menu: menu_rows(&spec.su_set),
    }
}

/// Evaluates one candidate against the portfolio — the full per-candidate
/// reference path.  Deterministic: same point + same config ⇒ identical
/// result, on any worker.
pub fn evaluate_point(
    point: &CandidatePoint,
    config: &SweepConfig,
    portfolio: &[Arc<PortfolioModel>],
) -> PointResult {
    let spec = point.spec();
    let memory = point_memory(point);
    let engine =
        DseEngine::new(memory, EnergyModel::finfet_16nm()).with_space(config.space.clone());

    let mut models = Vec::with_capacity(portfolio.len());
    let mut error = None;
    for model in portfolio {
        match engine.search_network_sequential(&spec, &model.network, &model.profiles) {
            Ok(search) => models.push(ModelOutcome {
                model: model.network.name.clone(),
                cycles: search.searched_total_cycles,
                energy_pj: search.searched_energy_pj,
                edp: search.searched_edp,
            }),
            Err(e) => {
                error = Some(format!("{}: {e}", model.network.name));
                break;
            }
        }
    }
    assemble_result(point, &spec, models, error)
}

/// The compute-group key: everything the factoring depends on, nothing the
/// per-point re-pricing covers (SRAM sizes, DRAM axes).  `bits_per_mac_class`
/// folds sync granularities that share one bits-per-MAC statistic, so e.g.
/// the `small` preset's 24 points collapse into 6 factored groups.
fn group_key(
    point: &CandidatePoint,
    config: &SweepConfig,
    spec: &bitwave_accel::AcceleratorSpec,
) -> String {
    let space_hex = Digest::of_value(&config.space)
        .map(|d| d.to_hex())
        .unwrap_or_else(|_| format!("{:?}", config.space));
    format!(
        "{}|{:?}|{}|{}|{}|{}|{}",
        point.lanes,
        point.menu,
        point.sram_bandwidth_bits,
        bits_per_mac_class(spec),
        config.seed,
        config.sample_cap,
        space_hex,
    ) + "|"
        + &config.portfolio.join(",")
}

/// Evaluates one candidate through the amortized factored path: the
/// portfolio's compute parts are factored once per compute group (shared
/// process-wide) and only the cheap memory re-pricing runs per point.
/// Bit-identical to [`evaluate_point`] — `bench_sweep`, the sweep property
/// tests and CI all assert the byte equality.
pub fn evaluate_point_factored(
    point: &CandidatePoint,
    config: &SweepConfig,
    portfolio: &[Arc<PortfolioModel>],
) -> PointResult {
    let spec = point.spec();
    let memory = point_memory(point);
    let energy = EnergyModel::finfet_16nm();
    let entry = global_eval_engine().group(group_key(point, config, &spec), || GroupEntry {
        models: portfolio
            .iter()
            .map(|m| factor_network(&spec, &m.network, &m.profiles, &energy, &config.space))
            .collect(),
    });

    let mut models = Vec::with_capacity(portfolio.len());
    let mut error = None;
    for (model, factored) in portfolio.iter().zip(&entry.models) {
        let outcome = factored
            .as_ref()
            .map_err(DseError::clone)
            .and_then(|f| f.reprice(&spec, &memory, &energy, &config.space));
        match outcome {
            Ok(search) => models.push(ModelOutcome {
                model: model.network.name.clone(),
                cycles: search.searched_total_cycles,
                energy_pj: search.searched_energy_pj,
                edp: search.searched_edp,
            }),
            Err(e) => {
                error = Some(format!("{}: {e}", model.network.name));
                break;
            }
        }
    }
    assemble_result(point, &spec, models, error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::enumerate;

    #[test]
    fn unknown_models_fail_portfolio_construction() {
        let mut config = SweepConfig::tiny();
        config.portfolio = vec!["not-a-model".to_string()];
        let err = build_portfolio(&config).unwrap_err();
        assert!(err.contains("not-a-model"));
    }

    #[test]
    fn portfolio_models_are_shared_across_builds() {
        let config = SweepConfig::tiny();
        let first = build_portfolio(&config).unwrap();
        let before = profile_reuse_total();
        let second = build_portfolio(&config).unwrap();
        assert!(Arc::ptr_eq(&first[0], &second[0]));
        assert!(profile_reuse_total() > before);
        // A different seed is a different portfolio entry.
        let mut other = config.clone();
        other.seed += 1;
        let third = build_portfolio(&other).unwrap();
        assert!(!Arc::ptr_eq(&first[0], &third[0]));
    }

    #[test]
    fn evaluation_is_deterministic_and_feasible_on_the_tiny_space() {
        let config = SweepConfig::tiny();
        let portfolio = build_portfolio(&config).unwrap();
        let point = enumerate(&config)[0];
        let a = evaluate_point(&point, &config, &portfolio);
        let b = evaluate_point(&point, &config, &portfolio);
        assert_eq!(a, b);
        assert!(a.feasible, "paper-scale point must map: {:?}", a.error);
        assert_eq!(a.models.len(), config.portfolio.len());
        assert!(a.edp > 0.0);
        assert_eq!(a.menu.len(), 7);
        let json = serde_json::to_string(&a).unwrap();
        let back: PointResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn factored_evaluation_reproduces_the_full_path_byte_for_byte() {
        let config = SweepConfig::tiny();
        let portfolio = build_portfolio(&config).unwrap();
        for point in enumerate(&config) {
            let full = evaluate_point(&point, &config, &portfolio);
            let factored = evaluate_point_factored(&point, &config, &portfolio);
            assert_eq!(factored, full, "{}", point.label());
            assert_eq!(
                serde_json::to_string(&factored).unwrap(),
                serde_json::to_string(&full).unwrap(),
                "{}: factored result must serialize byte-identically",
                point.label()
            );
        }
        // The tiny preset's 8 points share (lanes × menu) compute groups.
        assert!(global_eval_engine().groups_held() >= 1);
    }
}
