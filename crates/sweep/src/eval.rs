//! Candidate evaluation: one hardware point against the whole workload
//! portfolio, through the existing per-layer design-space search and the
//! Eq. 1–5 cost stack.

use crate::config::SweepConfig;
use crate::menu::{menu_rows, MenuRow};
use crate::space::CandidatePoint;
use bitwave::context::ExperimentContext;
use bitwave_accel::sparsity::LayerSparsityProfile;
use bitwave_dataflow::MemoryHierarchy;
use bitwave_dnn::models::{by_name, NetworkSpec};
use bitwave_dse::DseEngine;
use serde::{Deserialize, Serialize};

/// The pre-computed, hardware-independent inputs of one portfolio model:
/// the network shape and its per-layer sparsity profiles.  Profiles depend
/// only on (model, seed, sample cap), so one portfolio serves every
/// candidate a worker evaluates.
#[derive(Debug)]
pub struct PortfolioModel {
    /// The network.
    pub network: NetworkSpec,
    /// Per-layer sparsity profiles aligned with `network.layers`.
    pub profiles: Vec<LayerSparsityProfile>,
}

/// Builds the portfolio (generating synthetic weights and profiling each
/// layer once per model).
///
/// # Errors
///
/// Returns a message naming the unknown model or the profiling failure.
pub fn build_portfolio(config: &SweepConfig) -> Result<Vec<PortfolioModel>, String> {
    let ctx = ExperimentContext::default()
        .with_seed(config.seed)
        .with_sample_cap(config.sample_cap);
    config
        .portfolio
        .iter()
        .map(|name| {
            let network =
                by_name(name).map_err(|e| format!("unknown portfolio model `{name}`: {e}"))?;
            let weights = ctx.weights(&network);
            let profiles = ctx
                .profiles(&network, &weights)
                .map_err(|e| format!("profiling {name}: {e}"))?;
            Ok(PortfolioModel { network, profiles })
        })
        .collect()
}

/// One model's outcome on one candidate (searched mappings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOutcome {
    /// Model name.
    pub model: String,
    /// Σ total cycles under the searched mappings.
    pub cycles: f64,
    /// Σ energy (pJ) under the searched mappings.
    pub energy_pj: f64,
    /// Network EDP (`cycles × energy`).
    pub edp: f64,
}

/// The persisted result of evaluating one candidate point — the store
/// entry the sharded sweep coordinates on, so it carries everything the
/// final report needs (no re-evaluation on assembly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointResult {
    /// Enumeration index within the sweep.
    pub index: usize,
    /// Candidate label.
    pub label: String,
    /// The hardware point.
    pub point: CandidatePoint,
    /// Extrapolated area (mm²).
    pub area_mm2: f64,
    /// Whether every portfolio model mapped onto this hardware.  An
    /// infeasible point records its first error and stays off the front.
    pub feasible: bool,
    /// First mapping error for infeasible points.
    pub error: Option<String>,
    /// Per-model outcomes in portfolio order (empty when infeasible).
    pub models: Vec<ModelOutcome>,
    /// Σ cycles across the portfolio.
    pub total_cycles: f64,
    /// Σ energy across the portfolio (pJ).
    pub total_energy_pj: f64,
    /// Portfolio EDP: Σ per-model EDP (each model runs as its own
    /// workload, so EDPs add rather than multiply).
    pub edp: f64,
    /// Table-I-style instruction-memory menu of this candidate.
    pub menu: Vec<MenuRow>,
}

impl PointResult {
    /// The sweep's objective vector: `[EDP, energy, cycles, area]`, all
    /// minimised.
    pub fn objectives(&self) -> [f64; 4] {
        [
            self.edp,
            self.total_energy_pj,
            self.total_cycles,
            self.area_mm2,
        ]
    }
}

/// Evaluates one candidate against the portfolio.  Deterministic: same
/// point + same config ⇒ identical result, on any worker.
pub fn evaluate_point(
    point: &CandidatePoint,
    config: &SweepConfig,
    portfolio: &[PortfolioModel],
) -> PointResult {
    let spec = point.spec();
    let memory = MemoryHierarchy {
        weight_sram_bytes: point.weight_sram_kb * 1024,
        activation_sram_bytes: point.activation_sram_kb * 1024,
        ..MemoryHierarchy::bitwave_default()
    };
    let engine = DseEngine::new(memory, bitwave_accel::EnergyModel::finfet_16nm())
        .with_space(config.space.clone());

    let mut models = Vec::with_capacity(portfolio.len());
    let mut error = None;
    for model in portfolio {
        match engine.search_network_sequential(&spec, &model.network, &model.profiles) {
            Ok(search) => models.push(ModelOutcome {
                model: model.network.name.clone(),
                cycles: search.searched_total_cycles,
                energy_pj: search.searched_energy_pj,
                edp: search.searched_edp,
            }),
            Err(e) => {
                error = Some(format!("{}: {e}", model.network.name));
                break;
            }
        }
    }
    let feasible = error.is_none();
    if !feasible {
        models.clear();
    }
    let total_cycles: f64 = models.iter().map(|m| m.cycles).sum();
    let total_energy_pj: f64 = models.iter().map(|m| m.energy_pj).sum();
    let edp: f64 = models.iter().map(|m| m.edp).sum();
    PointResult {
        index: point.index,
        label: point.label(),
        point: *point,
        area_mm2: point.area_mm2(),
        feasible,
        error,
        models,
        total_cycles,
        total_energy_pj,
        edp,
        menu: menu_rows(&spec.su_set),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::enumerate;

    #[test]
    fn unknown_models_fail_portfolio_construction() {
        let mut config = SweepConfig::tiny();
        config.portfolio = vec!["not-a-model".to_string()];
        let err = build_portfolio(&config).unwrap_err();
        assert!(err.contains("not-a-model"));
    }

    #[test]
    fn evaluation_is_deterministic_and_feasible_on_the_tiny_space() {
        let config = SweepConfig::tiny();
        let portfolio = build_portfolio(&config).unwrap();
        let point = enumerate(&config)[0];
        let a = evaluate_point(&point, &config, &portfolio);
        let b = evaluate_point(&point, &config, &portfolio);
        assert_eq!(a, b);
        assert!(a.feasible, "paper-scale point must map: {:?}", a.error);
        assert_eq!(a.models.len(), config.portfolio.len());
        assert!(a.edp > 0.0);
        assert_eq!(a.menu.len(), 7);
        let json = serde_json::to_string(&a).unwrap();
        let back: PointResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
