//! The `bitwave-sweep` binary: coordinator and worker modes of the sharded
//! whole-accelerator hardware sweep.
//!
//! ```bash
//! # Coordinator: run the tiny space with 2 in-process workers, print the
//! # final front report as JSON.
//! bitwave-sweep --store-root /tmp/sweep --space tiny --workers 2
//!
//! # Extra worker processes against the same root (any number, any time —
//! # they cooperate through claim files and re-steal crashed peers' work):
//! bitwave-sweep --store-root /tmp/sweep --space tiny --worker
//! ```
//!
//! The coordinator drives the sweep to completion itself (`--workers N`
//! spawns N−1 extra in-process workers alongside it), streams partial-front
//! lines to stderr with `--watch`, writes the final [`FrontReport`] JSON to
//! stdout (or `--out FILE`), and `--menus FILE` exports the
//! instruction-memory menu of every front member.

use bitwave_sweep::run::{
    run_with_progress_opts, run_worker_with, EvalMode, EvalOptions, FrontReport,
};
use bitwave_sweep::{MenuRow, SweepConfig};
use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bitwave-sweep --store-root DIR [--space tiny|small|full] \
                     [--config FILE] [--portfolio a,b,...] [--seed N] [--sample-cap N] \
                     [--ttl-ms N] [--worker] [--workers N] [--threads N] \
                     [--eval full|factored] [--watch] [--out FILE] [--menus FILE]\n\
                     \n\
                     Whole-accelerator hardware design-space sweep, sharded across \
                     any number of worker processes coordinating through one shared \
                     --store-root.  Default mode is the coordinator: it works the \
                     sweep to completion (spawning N-1 extra in-process workers with \
                     --workers N), then prints the final Pareto-front report as JSON. \
                     --worker runs one worker pass and exits (start any number \
                     against the same root; crashed workers' claims expire after \
                     --ttl-ms and are re-stolen).  --config FILE loads a full \
                     SweepConfig JSON instead of a preset; --portfolio/--seed/\
                     --sample-cap/--ttl-ms override either.  --threads N fans \
                     candidate evaluations across N scoped threads per worker and \
                     --eval pins the evaluation path (both byte-neutral: any \
                     combination reproduces the sequential full-path report \
                     exactly).  --watch streams one partial-front JSON line to \
                     stderr per landed result.";

/// One front member's instruction-memory menu (`--menus` export row).
#[derive(Serialize)]
struct MenuExport {
    index: usize,
    label: String,
    menu: Vec<MenuRow>,
}

struct Cli {
    config: SweepConfig,
    store_root: Option<PathBuf>,
    worker: bool,
    workers: usize,
    eval: EvalOptions,
    watch: bool,
    out: Option<PathBuf>,
    menus: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        config: SweepConfig::tiny(),
        store_root: None,
        worker: false,
        workers: 1,
        eval: EvalOptions::default(),
        watch: false,
        out: None,
        menus: None,
    };
    let mut i = 0usize;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--worker" => {
                cli.worker = true;
                i += 1;
                continue;
            }
            "--watch" => {
                cli.watch = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}\n{USAGE}"))?;
        let parse_u64 = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("{flag} expects a non-negative integer, got `{value}`"))
        };
        match flag {
            "--store-root" => cli.store_root = Some(PathBuf::from(value)),
            "--space" => {
                cli.config = SweepConfig::preset(value)
                    .ok_or_else(|| format!("unknown --space `{value}` (tiny|small|full)"))?;
            }
            "--config" => {
                let text = std::fs::read_to_string(value)
                    .map_err(|e| format!("reading --config {value}: {e}"))?;
                cli.config = serde_json::from_str(&text)
                    .map_err(|e| format!("parsing --config {value}: {e}"))?;
            }
            "--portfolio" => {
                cli.config.portfolio = value.split(',').map(str::to_string).collect();
            }
            "--seed" => cli.config.seed = parse_u64()?,
            "--sample-cap" => cli.config.sample_cap = parse_u64()? as usize,
            "--ttl-ms" => cli.config.claim_ttl_ms = parse_u64()?.max(1),
            "--workers" => cli.workers = (parse_u64()? as usize).max(1),
            "--threads" => cli.eval.threads = (parse_u64()? as usize).max(1),
            "--eval" => {
                cli.eval.mode = EvalMode::parse(value)
                    .ok_or_else(|| format!("unknown --eval `{value}` (full|factored)"))?;
            }
            "--out" => cli.out = Some(PathBuf::from(value)),
            "--menus" => cli.menus = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        i += 2;
    }
    if cli.store_root.is_none() && (cli.worker || cli.workers > 1) {
        return Err(format!(
            "--worker/--workers need a shared --store-root\n{USAGE}"
        ));
    }
    Ok(cli)
}

fn render_report(report: &FrontReport) -> String {
    let mut json = serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_string());
    json.push('\n');
    json
}

fn run(cli: Cli) -> Result<(), String> {
    let total = cli.config.total_points();
    let sweep = cli.config.digest().to_hex();
    if cli.worker {
        let root = cli.store_root.as_deref().expect("checked in parse_args");
        let stats = run_worker_with(&cli.config, root, cli.eval)
            .map_err(|e| format!("worker failed: {e}"))?;
        println!(
            "worker done: sweep {sweep} evaluated {} reused {} stolen {} of {total}",
            stats.evaluated, stats.reused, stats.stolen
        );
        return Ok(());
    }
    eprintln!("sweep {sweep}: {total} points, {} workers", cli.workers);
    // Extra in-process workers alongside the coordinator's own loop.
    let extra: Vec<_> = (1..cli.workers)
        .map(|_| {
            let config = cli.config.clone();
            let root = cli.store_root.clone().expect("checked in parse_args");
            let eval = cli.eval;
            std::thread::spawn(move || run_worker_with(&config, &root, eval))
        })
        .collect();
    let watch = cli.watch;
    let (report, stats) =
        run_with_progress_opts(&cli.config, cli.store_root.as_deref(), cli.eval, |frame| {
            if watch {
                if let Ok(line) = serde_json::to_string(frame) {
                    eprintln!("{line}");
                }
            }
        })
        .map_err(|e| format!("sweep failed: {e}"))?;
    for handle in extra {
        handle
            .join()
            .map_err(|_| "worker thread panicked".to_string())?
            .map_err(|e| format!("worker failed: {e}"))?;
    }
    eprintln!(
        "coordinator: evaluated {} reused {} stolen {}; front {} of {} feasible",
        stats.evaluated,
        stats.reused,
        stats.stolen,
        report.front.len(),
        report.feasible_points
    );
    let rendered = render_report(&report);
    match &cli.out {
        Some(path) => std::fs::write(path, &rendered)
            .map_err(|e| format!("writing --out {}: {e}", path.display()))?,
        None => {
            let mut stdout = std::io::stdout();
            stdout
                .write_all(rendered.as_bytes())
                .map_err(|e| format!("writing report: {e}"))?;
        }
    }
    if let Some(path) = &cli.menus {
        let menus: Vec<MenuExport> = report
            .front
            .iter()
            .map(|r| MenuExport {
                index: r.index,
                label: r.label.clone(),
                menu: r.menu.clone(),
            })
            .collect();
        let mut text =
            serde_json::to_string_pretty(&menus).map_err(|e| format!("rendering --menus: {e}"))?;
        text.push('\n');
        std::fs::write(path, text)
            .map_err(|e| format!("writing --menus {}: {e}", path.display()))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
