//! # bitwave-sweep
//!
//! **Whole-accelerator hardware design-space exploration** with sharded
//! multi-process execution.
//!
//! The paper hand-picks its hardware (Table I: a 4096-lane bit-serial
//! array, an 8-lane sync dispatcher, 2×256 KiB SRAM and a seven-SU menu);
//! this crate searches that choice.  A [`config::SweepConfig`] spans the
//! cross product of array size, sync granularity, SRAM sizes, interface
//! bandwidths and SU-menu family; every candidate is materialised as a
//! full [`bitwave_accel::spec::AcceleratorSpec`] and evaluated against a
//! workload *portfolio* through the existing `bitwave-dse` per-layer
//! search and Eq. 1–5 cost stack.  Candidates are pruned to a 4-objective
//! Pareto front (EDP, energy, cycles, area) with
//! [`bitwave_core::pareto::FrontAccumulator`].
//!
//! Execution shards across worker **processes** coordinating through a
//! shared `bitwave-store` root: each point's result is a content-addressed
//! store entry, and a TTL-expiring claim file arbitrates who computes it
//! ([`bitwave_store::ClaimLedger`]).  Workers crash-recover (stale claims
//! are stolen), restart warm (published results are reused), and any
//! worker count produces a byte-identical [`run::FrontReport`].
//!
//! Inside each process, evaluation is **amortized and factored**
//! ([`eval`]): workload sparsity profiles are built once per portfolio
//! entry and shared as `Arc`s, per-candidate network searches are factored
//! into compute groups re-priced per memory point
//! ([`bitwave_dse::factor_network`]), and claimed points fan out across
//! scoped threads ([`run::EvalOptions`]) — all byte-identical to the
//! historical sequential full-evaluation loop.
//!
//! Surfaces: the `bitwave-sweep` CLI (coordinator and `--worker` modes),
//! `POST /v1/design` on `bitwave-serve` (streams partial fronts), and a
//! Table-I-style instruction-memory [`menu`] export per front member.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod eval;
pub mod ledger;
pub mod menu;
pub mod run;
pub mod space;

pub use config::{MenuKind, SweepConfig, SWEEP_SCHEMA_VERSION};
pub use eval::{
    build_portfolio, evaluate_point, evaluate_point_factored, global_eval_engine,
    profile_reuse_total, EvalEngine, ModelOutcome, PointResult,
};
pub use ledger::SweepLedger;
pub use menu::{menu_rows, MenuRow};
pub use run::{
    assemble_report, run_sharded, run_sharded_with, run_with_progress, run_with_progress_opts,
    run_worker, run_worker_with, EvalMode, EvalOptions, FrontPoint, FrontReport, PartialFront,
    WorkerStats, OBJECTIVES,
};
pub use space::{enumerate, CandidatePoint};
