//! PE-array utilisation analysis (Fig. 9).
//!
//! Fig. 9 of the paper shows that no single fixed spatial unrolling keeps a
//! large bit-serial array (4096 1b×8b lanes) above 80 % utilisation across
//! early layers, late layers, depthwise and pointwise convolutions — the
//! motivation for BitWave's dynamic dataflow.  These helpers compute the
//! utilisation of a layer under an SU and the effective MACs per cycle that
//! the accelerator models (Eq. 2) consume.

use crate::su::{SpatialUnrolling, SuSet};
use bitwave_dnn::layer::{LayerSpec, LoopDims};
use serde::{Deserialize, Serialize};

/// Spatial utilisation (0.0–1.0) of a layer under one SU (layer-kind aware:
/// depthwise layers cannot fill `Cu`/`Ku` lanes, see
/// [`SpatialUnrolling::utilization_for`]).
pub fn spatial_utilization(layer: &LayerSpec, su: &SpatialUnrolling) -> f64 {
    su.utilization_for(layer)
}

/// Effective MAC lanes per cycle of a layer under one SU: the SU's raw
/// parallelism scaled by its utilisation on this layer.
pub fn effective_macs_per_cycle(dims: &LoopDims, su: &SpatialUnrolling) -> f64 {
    su.parallelism() as f64 * su.utilization(dims)
}

/// The best utilisation achievable for a layer across a set of selectable
/// SUs, together with the chosen SU (dynamic-dataflow machines pick per
/// layer; fixed machines have a single option).
pub fn best_utilization(dims: &LoopDims, set: &SuSet) -> (SpatialUnrolling, f64) {
    let mut best = set.options[0];
    let mut best_util = 0.0f64;
    for &su in &set.options {
        let u = su.utilization(dims);
        if u > best_util {
            best_util = u;
            best = su;
        }
    }
    (best, best_util)
}

/// One row of the Fig. 9 utilisation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// Workload case label ("early layer", "late layer", "Dwcv", "Pwcv").
    pub case: String,
    /// SU name.
    pub su: String,
    /// Array size in MAC lanes.
    pub array_lanes: usize,
    /// Utilisation in 0.0–1.0.
    pub utilization: f64,
}

/// Evaluates a list of `(case label, layer)` pairs against a list of SUs,
/// producing the full Fig. 9 matrix.
pub fn utilization_matrix(
    cases: &[(&str, &LayerSpec)],
    sus: &[SpatialUnrolling],
) -> Vec<UtilizationRow> {
    let mut rows = Vec::with_capacity(cases.len() * sus.len());
    for (label, layer) in cases {
        for su in sus {
            rows.push(UtilizationRow {
                case: (*label).to_string(),
                su: su.name.to_string(),
                array_lanes: su.parallelism(),
                utilization: su.utilization_for(layer),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::su::{baseline_su, bitwave_su};
    use bitwave_dnn::models::{mobilenet_v2, resnet18};

    #[test]
    fn effective_macs_scale_with_utilization() {
        let net = resnet18();
        let layer = net.layer("layer4.1.conv2").unwrap();
        let su = bitwave_su::SU3;
        let macs = effective_macs_per_cycle(&layer.dims, &su);
        assert!((macs - 4096.0 * su.utilization(&layer.dims)).abs() < 1e-9);
        assert!(macs > 0.0);
    }

    #[test]
    fn dynamic_set_beats_any_fixed_su_on_mixed_workloads() {
        // Averaged over the four Fig. 9 workload cases, BitWave's selectable
        // set must beat every single fixed SU.
        let resnet = resnet18();
        let mobile = mobilenet_v2();
        let early = resnet.layer("conv1").unwrap();
        let late = resnet.layer("layer4.1.conv2").unwrap();
        let dw = mobile
            .layers
            .iter()
            .find(|l| l.kind.is_depthwise())
            .unwrap();
        let pw = mobile
            .layers
            .iter()
            .find(|l| l.name.ends_with("expand"))
            .unwrap();
        let cases = [early, late, dw, pw];

        let set = SuSet::bitwave();
        let dynamic_mean: f64 = cases
            .iter()
            .map(|l| best_utilization(&l.dims, &set).1)
            .sum::<f64>()
            / cases.len() as f64;

        for su in bitwave_su::ALL {
            let fixed_mean: f64 =
                cases.iter().map(|l| su.utilization(&l.dims)).sum::<f64>() / cases.len() as f64;
            assert!(
                dynamic_mean >= fixed_mean - 1e-12,
                "dynamic ({dynamic_mean:.3}) must not lose to fixed {} ({fixed_mean:.3})",
                su.name
            );
        }
        assert!(
            dynamic_mean > 0.55,
            "dynamic mean utilisation {dynamic_mean:.3}"
        );
    }

    #[test]
    fn no_fixed_su_exceeds_80_percent_everywhere() {
        // The observation motivating Fig. 9.
        let resnet = resnet18();
        let mobile = mobilenet_v2();
        let cases = [
            resnet.layer("conv1").unwrap(),
            resnet.layer("layer4.1.conv2").unwrap(),
            mobile
                .layers
                .iter()
                .find(|l| l.kind.is_depthwise())
                .unwrap(),
            mobile
                .layers
                .iter()
                .find(|l| l.name.ends_with("expand"))
                .unwrap(),
        ];
        let fixed_4096 = [
            baseline_su::XY_4096,
            baseline_su::CK_4096,
            baseline_su::XFX_4096,
        ];
        for su in fixed_4096 {
            let min_util = cases
                .iter()
                .map(|l| su.utilization(&l.dims))
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_util < 0.8,
                "fixed SU {} unexpectedly exceeds 80% on every case",
                su.name
            );
        }
    }

    #[test]
    fn matrix_has_one_row_per_case_su_pair() {
        let resnet = resnet18();
        let early = resnet.layer("conv1").unwrap();
        let late = resnet.layer("layer4.1.conv2").unwrap();
        let rows = utilization_matrix(
            &[("early", early), ("late", late)],
            &[baseline_su::XY_4096, baseline_su::CK_4096],
        );
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.utilization)));
        assert_eq!(rows[0].case, "early");
        assert_eq!(rows[0].array_lanes, 4096);
    }
}
