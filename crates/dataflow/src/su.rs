//! Spatial unrolling (SU) configurations.
//!
//! A spatial unrolling states how many elements of each loop dimension are
//! processed in parallel per clock cycle (Section II-A).  BitWave supports
//! the seven configurations of Table I, selected per layer at runtime; the
//! dense baseline of Fig. 13 uses `[Ku = 64, Cu = 64]`; the comparison
//! accelerators use their published fixed mappings.
//!
//! For bit-serial machines the weight-bit loop `Bw` is unrolled temporally,
//! so the *spatial* product of an SU counts 1-bit multipliers; a bit-parallel
//! machine's SU product counts full 8×8 multipliers.

use bitwave_dnn::layer::{LayerSpec, LoopDims};
use serde::{Deserialize, Serialize};

/// One spatial-unrolling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct SpatialUnrolling {
    /// Short name ("SU1", "Dense64x64", …).
    pub name: &'static str,
    /// Parallel input channels per cycle (`Cu`).
    pub c: usize,
    /// Parallel output channels per cycle (`Ku`).
    pub k: usize,
    /// Parallel output columns per cycle (`OXu`).
    pub ox: usize,
    /// Parallel output rows per cycle (`OYu`).
    pub oy: usize,
    /// Parallel kernel columns per cycle (`FXu`).
    pub fx: usize,
    /// Parallel kernel rows per cycle (`FYu`).
    pub fy: usize,
    /// Parallel group-dimension lanes (`Gu`, only used by the depthwise
    /// dataflow SU7 which parallelises over channels with `C = 1`).
    pub g: usize,
}

impl SpatialUnrolling {
    /// A named SU with the given `[Cu, OXu, Ku]` triple and all other
    /// dimensions at 1 (the shape of Table I's SU1–SU6).
    pub const fn cxk(name: &'static str, c: usize, ox: usize, k: usize) -> Self {
        Self {
            name,
            c,
            k,
            ox,
            oy: 1,
            fx: 1,
            fy: 1,
            g: 1,
        }
    }

    /// Total number of parallel MAC lanes of this SU.
    pub fn parallelism(&self) -> usize {
        self.c * self.k * self.ox * self.oy * self.fx * self.fy * self.g
    }

    /// Weight bandwidth demand in operand elements per cycle
    /// (`Cu·Ku·FXu·FYu` distinct weights are consumed each cycle; the
    /// depthwise SU consumes `Gu` weights).
    pub fn weight_elements_per_cycle(&self) -> usize {
        self.c * self.k * self.fx * self.fy * self.g
    }

    /// Activation bandwidth demand in operand elements per cycle
    /// (`Cu·OXu·OYu·FXu·FYu·Gu` distinct activations per cycle).
    pub fn activation_elements_per_cycle(&self) -> usize {
        self.c * self.ox * self.oy * self.fx * self.fy * self.g
    }

    /// Weight bandwidth in bits/cycle for a bit-serial machine that streams
    /// one weight bit-column per cycle (Table I's "W BW" column).
    pub fn weight_bits_per_cycle_bit_serial(&self) -> usize {
        self.weight_elements_per_cycle()
    }

    /// Activation bandwidth in bits/cycle for 8-bit activations
    /// (Table I's "Act BW" column).
    pub fn activation_bits_per_cycle(&self) -> usize {
        self.activation_elements_per_cycle() * 8
    }

    /// Spatial utilisation of a layer under this SU, taking the layer kind
    /// into account.
    ///
    /// For depthwise convolutions the output-channel and input-channel loops
    /// are *coupled* (output channel `k` only reads input channel `k`), so an
    /// SU cannot fill its `Cu` and `Ku` lanes independently: at most
    /// `max(Cu, Ku, Gu)` lanes can be mapped onto the channel dimension (the
    /// "diagonal" of the Cu×Ku unrolling), and the remaining lanes idle.
    /// This is why Fig. 9's "Dwcv" case collapses for every generic SU and
    /// why Table I provides the dedicated SU7.
    pub fn utilization_for(&self, layer: &LayerSpec) -> f64 {
        let dims = &layer.dims;
        if layer.kind.is_depthwise() {
            let usable_channel_unroll = self.c.max(self.k).max(self.g);
            let channel = dim_utilization(dims.k.max(1), usable_channel_unroll);
            let spatial = dim_utilization(dims.ox.max(1) * dims.b.max(1), self.ox)
                * dim_utilization(dims.oy.max(1), self.oy)
                * dim_utilization(dims.fx.max(1), self.fx)
                * dim_utilization(dims.fy.max(1), self.fy);
            let idle_fraction = usable_channel_unroll as f64 / (self.c * self.k * self.g) as f64;
            channel * spatial * idle_fraction
        } else {
            self.utilization(dims)
        }
    }

    /// Spatial utilisation of a plain loop nest under this SU: the fraction
    /// of the PE array doing useful work, limited by how well each loop
    /// dimension divides into its unrolling factor.
    pub fn utilization(&self, dims: &LoopDims) -> f64 {
        dim_utilization(dims.c.max(1), self.c)
            * dim_utilization(dims.k.max(1), self.k)
            * dim_utilization(dims.ox.max(1) * dims.b.max(1), self.ox)
            * dim_utilization(dims.oy.max(1), self.oy)
            * dim_utilization(dims.fx.max(1), self.fx)
            * dim_utilization(dims.fy.max(1), self.fy)
            * group_utilization(dims, self.g)
    }
}

/// `SpatialUnrolling::name` is a `&'static str` (the named configurations
/// are compile-time constants), so deserialization — needed when persisted
/// DSE search results are read back from a `bitwave-store` disk tier —
/// resolves names through a small process-wide intern pool.  Each distinct
/// name is leaked once; the pool is capped as a guard against pathological
/// inputs, beyond which unknown names collapse to the generated-candidate
/// placeholder `"DSE"` (named SUs are a fixed, tiny vocabulary in practice).
fn intern_su_name(name: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    const POOL_CAP: usize = 1024;
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut pool = pool
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = pool.iter().find(|n| ***n == *name) {
        return existing;
    }
    if pool.len() >= POOL_CAP {
        return "DSE";
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    pool.push(leaked);
    leaked
}

impl Deserialize for SpatialUnrolling {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let dim = |field: &str| -> Result<usize, serde::Error> {
            let v = value
                .get(field)
                .ok_or_else(|| serde::Error::custom("missing field").at(field))?;
            usize::from_value(v).map_err(|e| e.at(field))
        };
        let name = value
            .get("name")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| serde::Error::custom("expected string").at("name"))?;
        Ok(Self {
            name: intern_su_name(name),
            c: dim("c")?,
            k: dim("k")?,
            ox: dim("ox")?,
            oy: dim("oy")?,
            fx: dim("fx")?,
            fy: dim("fy")?,
            g: dim("g")?,
        })
    }
}

/// Utilisation of one loop dimension of size `dim` unrolled `unroll` ways:
/// `dim / (ceil(dim/unroll) * unroll)`.
fn dim_utilization(dim: usize, unroll: usize) -> f64 {
    if unroll <= 1 {
        return 1.0;
    }
    let passes = dim.div_ceil(unroll);
    dim as f64 / (passes * unroll) as f64
}

/// SU7 parallelises the channel dimension of depthwise layers (where `C = 1`
/// per group but `K` channels exist); for other SUs `g = 1` and this is 1.0.
fn group_utilization(dims: &LoopDims, g: usize) -> f64 {
    if g <= 1 {
        1.0
    } else {
        dim_utilization(dims.k.max(1), g)
    }
}

/// The BitWave SU set of Table I.
pub mod bitwave_su {
    use super::SpatialUnrolling;

    /// SU1: `[Cu=8, OXu=16, Ku=32]`.
    pub const SU1: SpatialUnrolling = SpatialUnrolling::cxk("SU1", 8, 16, 32);
    /// SU2: `[Cu=16, OXu=8, Ku=32]`.
    pub const SU2: SpatialUnrolling = SpatialUnrolling::cxk("SU2", 16, 8, 32);
    /// SU3: `[Cu=32, OXu=4, Ku=32]`.
    pub const SU3: SpatialUnrolling = SpatialUnrolling::cxk("SU3", 32, 4, 32);
    /// SU4: `[Cu=8, OXu=1, Ku=128]`.
    pub const SU4: SpatialUnrolling = SpatialUnrolling::cxk("SU4", 8, 1, 128);
    /// SU5: `[Cu=16, OXu=1, Ku=64]`.
    pub const SU5: SpatialUnrolling = SpatialUnrolling::cxk("SU5", 16, 1, 64);
    /// SU6: `[Cu=32, OXu=1, Ku=32]`.
    pub const SU6: SpatialUnrolling = SpatialUnrolling::cxk("SU6", 32, 1, 32);
    /// SU7 (depthwise): `[Gu=64, OXu=2, Ku=1]`.
    pub const SU7: SpatialUnrolling = SpatialUnrolling {
        name: "SU7",
        c: 1,
        k: 1,
        ox: 2,
        oy: 1,
        fx: 1,
        fy: 1,
        g: 64,
    };

    /// All seven BitWave SUs in Table I order.
    pub const ALL: [SpatialUnrolling; 7] = [SU1, SU2, SU3, SU4, SU5, SU6, SU7];
}

/// Fixed SUs used by the baselines of Fig. 9 / Fig. 12 / Fig. 13.
pub mod baseline_su {
    use super::SpatialUnrolling;

    /// The dense reference mapping of Fig. 13 (`[Ku = 64, Cu = 64]`).
    pub const DENSE_64X64: SpatialUnrolling = SpatialUnrolling::cxk("Dense64x64", 64, 1, 64);

    /// An output-map-parallel (XY) mapping over a 4096-lane bit-serial array.
    pub const XY_4096: SpatialUnrolling = SpatialUnrolling {
        name: "XY-4096",
        c: 1,
        k: 16,
        ox: 16,
        oy: 16,
        fx: 1,
        fy: 1,
        g: 1,
    };
    /// A channel-parallel (CK) mapping over a 4096-lane bit-serial array.
    pub const CK_4096: SpatialUnrolling = SpatialUnrolling::cxk("CK-4096", 64, 1, 64);
    /// A kernel-column-parallel (XFx) mapping over a 4096-lane array.
    pub const XFX_4096: SpatialUnrolling = SpatialUnrolling {
        name: "XFx-4096",
        c: 8,
        k: 32,
        ox: 16,
        oy: 1,
        fx: 1,
        fy: 1,
        g: 1,
    };

    /// XY mapping scaled to a 512-PE bit-parallel array.
    pub const XY_512: SpatialUnrolling = SpatialUnrolling {
        name: "XY-512",
        c: 1,
        k: 8,
        ox: 8,
        oy: 8,
        fx: 1,
        fy: 1,
        g: 1,
    };
    /// CK mapping scaled to a 512-PE bit-parallel array.
    pub const CK_512: SpatialUnrolling = SpatialUnrolling::cxk("CK-512", 32, 1, 16);
    /// XFx mapping scaled to a 512-PE bit-parallel array.
    pub const XFX_512: SpatialUnrolling = SpatialUnrolling {
        name: "XFx-512",
        c: 4,
        k: 16,
        ox: 8,
        oy: 1,
        fx: 1,
        fy: 1,
        g: 1,
    };
}

/// A named set of selectable SUs (one per accelerator).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SuSet {
    /// Name of the set ("BitWave", "Dense", …).
    pub name: String,
    /// The selectable configurations; dynamic-dataflow machines list several,
    /// fixed-dataflow machines exactly one.
    pub options: Vec<SpatialUnrolling>,
}

impl SuSet {
    /// BitWave's dynamic dataflow set (Table I).
    pub fn bitwave() -> Self {
        Self {
            name: "BitWave".to_string(),
            options: bitwave_su::ALL.to_vec(),
        }
    }

    /// A single fixed SU.
    pub fn fixed(su: SpatialUnrolling) -> Self {
        Self {
            name: su.name.to_string(),
            options: vec![su],
        }
    }

    /// The dense `[Ku=64, Cu=64]` reference set.
    pub fn dense() -> Self {
        Self::fixed(baseline_su::DENSE_64X64)
    }

    /// Largest parallelism across the set's options.
    pub fn peak_parallelism(&self) -> usize {
        self.options
            .iter()
            .map(SpatialUnrolling::parallelism)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_dims(c: usize, k: usize, ox: usize) -> LoopDims {
        LoopDims {
            b: 1,
            k,
            c,
            oy: ox,
            ox,
            fy: 3,
            fx: 3,
        }
    }

    #[test]
    fn table1_su_parallelism_matches_bandwidth_profile() {
        // SU1-SU3 drive the full 4096-multiplier array (512 BCEs × 8 lanes);
        // SU4-SU6 trade array occupancy for weight bandwidth on matmul-style
        // layers (Cu·OXu·Ku = 1024); the depthwise SU7 keeps 128 lanes busy.
        use bitwave_su::*;
        for su in [SU1, SU2, SU3] {
            assert_eq!(
                su.parallelism(),
                4096,
                "{} should use the full array",
                su.name
            );
        }
        for su in [SU4, SU5, SU6] {
            assert_eq!(su.parallelism(), 1024, "{} parallelism", su.name);
        }
        assert_eq!(SU7.parallelism(), 128);
    }

    #[test]
    fn table1_bandwidths_match_paper() {
        use bitwave_su::*;
        // Table I: W BW (bit/cycle) and Act BW (bit/cycle).
        assert_eq!(SU1.weight_bits_per_cycle_bit_serial(), 256);
        assert_eq!(SU1.activation_bits_per_cycle(), 1024);
        assert_eq!(SU2.weight_bits_per_cycle_bit_serial(), 512);
        assert_eq!(SU2.activation_bits_per_cycle(), 1024);
        assert_eq!(SU3.weight_bits_per_cycle_bit_serial(), 1024);
        assert_eq!(SU3.activation_bits_per_cycle(), 1024);
        assert_eq!(SU4.weight_bits_per_cycle_bit_serial(), 1024);
        assert_eq!(SU4.activation_bits_per_cycle(), 64);
        assert_eq!(SU5.weight_bits_per_cycle_bit_serial(), 1024);
        assert_eq!(SU5.activation_bits_per_cycle(), 128);
        assert_eq!(SU6.weight_bits_per_cycle_bit_serial(), 1024);
        assert_eq!(SU6.activation_bits_per_cycle(), 256);
        assert_eq!(SU7.weight_bits_per_cycle_bit_serial(), 64);
        assert_eq!(SU7.activation_bits_per_cycle(), 1024);
    }

    #[test]
    fn spatial_unrollings_roundtrip_through_json_byte_identically() {
        // Persistence of DSE results depends on SUs deserializing (the name
        // is interned back to a `&'static str`) and re-serializing to the
        // exact bytes the original produced.
        let named = bitwave_su::SU7;
        let generated = SpatialUnrolling {
            name: "DSE",
            c: 8,
            k: 32,
            ox: 16,
            oy: 1,
            fx: 1,
            fy: 1,
            g: 1,
        };
        for su in [named, generated, baseline_su::XY_4096] {
            let json = serde_json::to_string(&su).unwrap();
            let back: SpatialUnrolling = serde_json::from_str(&json).unwrap();
            assert_eq!(back, su);
            assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
        // Interning maps repeated names onto one static allocation.
        let a: SpatialUnrolling =
            serde_json::from_str(&serde_json::to_string(&named).unwrap()).unwrap();
        let b: SpatialUnrolling =
            serde_json::from_str(&serde_json::to_string(&named).unwrap()).unwrap();
        assert!(std::ptr::eq(a.name, b.name));
        // Malformed values are rejected, not panicked on.
        assert!(serde_json::from_str::<SpatialUnrolling>("{\"name\":\"X\"}").is_err());
        assert!(serde_json::from_str::<SpatialUnrolling>("[1,2]").is_err());
    }

    #[test]
    fn dim_utilization_basics() {
        assert_eq!(dim_utilization(64, 1), 1.0);
        assert_eq!(dim_utilization(64, 32), 1.0);
        assert!((dim_utilization(3, 8) - 3.0 / 8.0).abs() < 1e-12);
        // 65 over 32 lanes needs 3 passes of 32: 65/96.
        assert!((dim_utilization(65, 32) - 65.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn early_layer_prefers_xy_parallel_su() {
        // ResNet18 conv1-like layer: wide feature map, only 3 input channels.
        let dims = LoopDims {
            b: 1,
            k: 64,
            c: 3,
            oy: 112,
            ox: 112,
            fy: 7,
            fx: 7,
        };
        let su1 = bitwave_su::SU1.utilization(&dims); // Cu=8 wastes 5/8 of C lanes
        let su4 = bitwave_su::SU4.utilization(&dims);
        assert!(su1 < 0.5);
        assert!(su4 < 0.5);
        // An output-map parallel mapping keeps the array busier for this shape.
        let xy = baseline_su::XY_4096.utilization(&dims);
        assert!(xy > su1);
    }

    #[test]
    fn deep_layer_prefers_ck_parallel_su() {
        // ResNet18 last conv: 512 channels in and out, 7x7 map.
        let dims = conv_dims(512, 512, 7);
        let ck = baseline_su::CK_4096.utilization(&dims);
        let xy = baseline_su::XY_4096.utilization(&dims);
        assert!(
            ck > xy,
            "CK ({ck:.2}) should beat XY ({xy:.2}) on deep layers"
        );
        // BitWave's SU3 also fits this shape well.
        assert!(bitwave_su::SU3.utilization(&dims) > 0.8);
    }

    #[test]
    fn depthwise_layer_needs_su7() {
        // MobileNetV2 dwconv: C=1 per output channel.
        let dims = LoopDims {
            b: 1,
            k: 96,
            c: 1,
            oy: 56,
            ox: 56,
            fy: 3,
            fx: 3,
        };
        let su1 = bitwave_su::SU1.utilization(&dims);
        let su7 = bitwave_su::SU7.utilization(&dims);
        assert!(
            su7 > 5.0 * su1,
            "SU7 ({su7:.3}) must far exceed SU1 ({su1:.3})"
        );
    }

    #[test]
    fn larger_arrays_are_harder_to_fill() {
        // The same mapping style on a 4096-lane array utilises the array no
        // better than on a 512-PE array (Fig. 9's observation).
        let dims = conv_dims(64, 64, 14);
        let big = baseline_su::CK_4096.utilization(&dims);
        let small = baseline_su::CK_512.utilization(&dims);
        assert!(small >= big);
    }

    #[test]
    fn su_set_constructors() {
        let bw = SuSet::bitwave();
        assert_eq!(bw.options.len(), 7);
        assert_eq!(bw.peak_parallelism(), 4096);
        let dense = SuSet::dense();
        assert_eq!(dense.options.len(), 1);
        assert_eq!(dense.peak_parallelism(), 4096);
        let fixed = SuSet::fixed(baseline_su::XY_512);
        assert_eq!(fixed.name, "XY-512");
        assert_eq!(fixed.peak_parallelism(), 512);
    }

    #[test]
    fn utilization_is_in_unit_interval() {
        let dims = conv_dims(129, 65, 13);
        for su in bitwave_su::ALL {
            let u = su.utilization(&dims);
            assert!((0.0..=1.0).contains(&u), "{}: {u}", su.name);
        }
    }
}
