//! # bitwave-dataflow
//!
//! The dataflow / mapping substrate of the BitWave (HPCA 2024) reproduction:
//! a ZigZag-style analytical model of how a layer's loop nest maps onto a
//! spatially-unrolled PE array with a register / SRAM / DRAM memory
//! hierarchy.
//!
//! * [`su`] — spatial-unrolling configurations, including BitWave's seven
//!   dynamic dataflows of Table I, the dense baseline `[Ku=64, Cu=64]`, and
//!   the fixed mappings used by the SotA comparison accelerators.
//! * [`utilization`] — spatial (PE-array) utilisation of a layer under an
//!   SU (Fig. 9) and the resulting effective MACs/cycle.
//! * [`memory`] — the SRAM/DRAM hierarchy parameters shared by all modelled
//!   accelerators (Section V-B "a common SRAM-DRAM memory hierarchy").
//! * [`activity`] — the Table II activity counts (`N_DRAM`, `N_SRAM`,
//!   `N_reg`, `N_mac`, `N_mac,cycle`) derived analytically per layer.
//! * [`dram`] — the DRAM tier: burst-quantised timing, per-operand traffic
//!   and refetch accounting (the BitSim `_check_layer_mem_size` /
//!   `_calc_num_mem_refetch` logic) behind the per-layer roofline
//!   `max(cycle_compute, cycle_dram)`.
//! * [`mapping`] — per-layer SU selection for dynamic-dataflow accelerators
//!   (BitWave, HUAA), mirroring the offline ZigZag search the paper uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod dram;
pub mod mapping;
pub mod memory;
pub mod su;
pub mod utilization;

pub use activity::{dram_reads, dram_reads_auto, ActivityCounts, TemporalMapping, TilingOrder};
pub use dram::{DramSpec, DramTraffic, LayerFootprint, MemoryBoundedness};
pub use mapping::{
    map_network, select_spatial_unrolling, MappingDecision, MappingError, MappingPolicy,
};
pub use memory::MemoryHierarchy;
pub use su::{SpatialUnrolling, SuSet};
pub use utilization::{effective_macs_per_cycle, spatial_utilization};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::activity::{ActivityCounts, TemporalMapping, TilingOrder};
    pub use crate::dram::{DramSpec, DramTraffic, LayerFootprint, MemoryBoundedness};
    pub use crate::mapping::{
        map_network, select_spatial_unrolling, MappingDecision, MappingError, MappingPolicy,
    };
    pub use crate::memory::MemoryHierarchy;
    pub use crate::su::{SpatialUnrolling, SuSet};
    pub use crate::utilization::{effective_macs_per_cycle, spatial_utilization};
}
