//! Per-layer spatial-unrolling selection.
//!
//! BitWave (and HUAA) choose a spatial unrolling per layer offline with the
//! ZigZag design-space exploration and store the decision in the instruction
//! memory (Section IV-C).  Two selection modes exist:
//!
//! * [`MappingPolicy::Heuristic`] — the one-shot criterion the paper
//!   motivates with Fig. 9, implemented by [`select_spatial_unrolling`]:
//!   maximise the effective MAC lanes per cycle (array parallelism ×
//!   utilisation), and among equally-fast options prefer the one with the
//!   lower weight bandwidth demand (smaller `Cu·Ku`), which reduces SRAM
//!   pressure.
//! * [`MappingPolicy::Searched`] — a full per-layer design-space search over
//!   enumerated SU factorizations, loop orders and tile sizes, implemented
//!   by the `bitwave-dse` crate on top of this module's types.
//!
//! Selection is fallible: an empty SU set or a degenerate (zero-dimension)
//! layer is a configuration error surfaced as a typed [`MappingError`]
//! instead of a panic or a silent fallback.

use crate::activity::TemporalMapping;
use crate::su::{SpatialUnrolling, SuSet};
use bitwave_dnn::layer::LayerSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the map stage picks a layer's spatial unrolling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// The one-shot Fig. 9 heuristic over the accelerator's fixed SU set
    /// (the default; reproduces the paper's reported configuration).
    #[default]
    Heuristic,
    /// Per-layer design-space exploration (`bitwave-dse`): enumerate SU
    /// factorizations / loop orders / tile sizes within the PE-array bounds,
    /// evaluate each on the analytical cost model and pick the minimum-EDP
    /// mapping.
    Searched,
}

impl MappingPolicy {
    /// Parses a case-insensitive policy name (`"heuristic"` / `"searched"`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "heuristic" => Some(MappingPolicy::Heuristic),
            "searched" => Some(MappingPolicy::Searched),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            MappingPolicy::Heuristic => "heuristic",
            MappingPolicy::Searched => "searched",
        }
    }
}

/// A mapping request that cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MappingError {
    /// The accelerator's SU set has no options to choose from.
    EmptySuSet {
        /// Name of the offending SU set.
        set: String,
    },
    /// A layer has a zero-sized loop dimension, so no spatial unrolling can
    /// do useful work on it.
    DegenerateLayer {
        /// The offending layer name.
        layer: String,
        /// The zero-sized loop dimension.
        dim: &'static str,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::EmptySuSet { set } => {
                write!(f, "SU set `{set}` has no spatial unrollings to select from")
            }
            MappingError::DegenerateLayer { layer, dim } => {
                write!(
                    f,
                    "layer `{layer}` has a zero-sized `{dim}` loop dimension and cannot be mapped"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// Validates that every loop dimension of `layer` is non-zero.
///
/// # Errors
///
/// Returns [`MappingError::DegenerateLayer`] naming the first zero dimension.
pub fn validate_layer_dims(layer: &LayerSpec) -> Result<(), MappingError> {
    let dims = &layer.dims;
    let axes: [(&'static str, usize); 7] = [
        ("b", dims.b),
        ("k", dims.k),
        ("c", dims.c),
        ("oy", dims.oy),
        ("ox", dims.ox),
        ("fy", dims.fy),
        ("fx", dims.fx),
    ];
    for (dim, size) in axes {
        if size == 0 {
            return Err(MappingError::DegenerateLayer {
                layer: layer.name.clone(),
                dim,
            });
        }
    }
    Ok(())
}

/// The mapping decision for one layer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MappingDecision {
    /// Layer name.
    pub layer: String,
    /// The chosen spatial unrolling.
    pub su: SpatialUnrolling,
    /// Display label of the choice: the SU's own name for set members,
    /// a generated `DSE[..]` descriptor for searched factorizations.
    pub label: String,
    /// Explicit temporal mapping (loop order + tile factor) chosen by a
    /// design-space search; `None` lets the activity model pick its default
    /// (cheapest) tiling order.
    pub temporal: Option<TemporalMapping>,
    /// PE-array utilisation achieved by the choice.
    pub utilization: f64,
    /// Effective MAC lanes per cycle (`parallelism × utilisation`).
    pub effective_macs_per_cycle: f64,
}

/// Selects the best SU of `set` for `layer` under the Fig. 9 heuristic.
///
/// # Errors
///
/// Returns [`MappingError::EmptySuSet`] when `set.options` is empty and
/// [`MappingError::DegenerateLayer`] when a loop dimension of `layer` is
/// zero.
pub fn select_spatial_unrolling(
    layer: &LayerSpec,
    set: &SuSet,
) -> Result<MappingDecision, MappingError> {
    validate_layer_dims(layer)?;
    let Some(&first) = set.options.first() else {
        return Err(MappingError::EmptySuSet {
            set: set.name.clone(),
        });
    };
    let mut best = first;
    let mut best_rate = f64::NEG_INFINITY;
    for &su in &set.options {
        let rate = su.parallelism() as f64 * su.utilization_for(layer);
        let better = rate > best_rate + 1e-9
            || (rate > best_rate - 1e-9
                && su.weight_elements_per_cycle() < best.weight_elements_per_cycle());
        if better {
            best = su;
            best_rate = rate;
        }
    }
    Ok(MappingDecision {
        layer: layer.name.clone(),
        su: best,
        label: best.name.to_string(),
        temporal: None,
        utilization: best.utilization_for(layer),
        effective_macs_per_cycle: best_rate,
    })
}

/// Maps every layer of a network onto the SU set, returning one decision per
/// layer in execution order.
///
/// # Errors
///
/// Propagates the first [`MappingError`] (empty SU set or degenerate layer).
pub fn map_network(
    layers: &[LayerSpec],
    set: &SuSet,
) -> Result<Vec<MappingDecision>, MappingError> {
    layers
        .iter()
        .map(|layer| select_spatial_unrolling(layer, set))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::su::bitwave_su;
    use bitwave_dnn::models::{mobilenet_v2, resnet18};

    #[test]
    fn depthwise_layers_never_map_worse_than_su7() {
        // The dedicated SU7 is the depthwise fallback of Table I; the mapper
        // must never pick anything slower than it for a depthwise layer.
        let net = mobilenet_v2();
        let dw = net.layers.iter().find(|l| l.kind.is_depthwise()).unwrap();
        let decision = select_spatial_unrolling(dw, &SuSet::bitwave()).unwrap();
        let su7_rate = bitwave_su::SU7.parallelism() as f64 * bitwave_su::SU7.utilization_for(dw);
        assert!(decision.effective_macs_per_cycle >= su7_rate - 1e-9);
        // A depthwise layer still cannot come close to filling the array.
        assert!(decision.utilization < 0.5, "got {}", decision.utilization);
    }

    #[test]
    fn deep_layers_select_channel_parallel_su() {
        let net = resnet18();
        let late = net.layer("layer4.1.conv2").unwrap();
        let decision = select_spatial_unrolling(late, &SuSet::bitwave()).unwrap();
        assert!(decision.utilization > 0.8, "got {}", decision.utilization);
        assert!(
            decision.su.c >= 8 && decision.su.k >= 32,
            "expected a CK-parallel SU, got {}",
            decision.su.name
        );
    }

    #[test]
    fn fixed_set_always_returns_its_only_option() {
        let net = resnet18();
        let set = SuSet::dense();
        for layer in &net.layers {
            let d = select_spatial_unrolling(layer, &set).unwrap();
            assert_eq!(d.su.name, "Dense64x64");
            assert_eq!(d.label, "Dense64x64");
            assert_eq!(d.temporal, None, "heuristic decisions use auto tiling");
        }
    }

    #[test]
    fn mapping_covers_every_layer_in_order() {
        let net = resnet18();
        let decisions = map_network(&net.layers, &SuSet::bitwave()).unwrap();
        assert_eq!(decisions.len(), net.layers.len());
        for (d, l) in decisions.iter().zip(&net.layers) {
            assert_eq!(d.layer, l.name);
            assert!((0.0..=1.0).contains(&d.utilization));
            assert!(d.effective_macs_per_cycle <= 4096.0 + 1e-9);
        }
    }

    #[test]
    fn dynamic_mapping_improves_mean_utilization_over_dense() {
        let net = mobilenet_v2();
        let dynamic = map_network(&net.layers, &SuSet::bitwave()).unwrap();
        let dense = map_network(&net.layers, &SuSet::dense()).unwrap();
        let mean_util =
            |d: &[MappingDecision]| d.iter().map(|x| x.utilization).sum::<f64>() / d.len() as f64;
        let mean_rate = |d: &[MappingDecision]| {
            d.iter().map(|x| x.effective_macs_per_cycle).sum::<f64>() / d.len() as f64
        };
        // The Fig. 13 story: MobileNetV2 gains the most from dynamic dataflow,
        // both in raw array occupancy and (more strongly) in effective MAC
        // throughput.
        assert!(
            mean_util(&dynamic) > 1.2 * mean_util(&dense),
            "dynamic util {:.3} vs dense {:.3}",
            mean_util(&dynamic),
            mean_util(&dense)
        );
        assert!(
            mean_rate(&dynamic) > 1.2 * mean_rate(&dense),
            "dynamic rate {:.0} vs dense {:.0}",
            mean_rate(&dynamic),
            mean_rate(&dense)
        );
    }

    #[test]
    fn tie_break_prefers_lower_weight_bandwidth() {
        // A pointwise layer with plenty of channels keeps several SUs equally
        // fast; the tie-break should then pick the lowest weight bandwidth.
        let net = mobilenet_v2();
        let pw = net
            .layers
            .iter()
            .find(|l| l.name.ends_with("project") && l.dims.k >= 32)
            .unwrap();
        let decision = select_spatial_unrolling(pw, &SuSet::bitwave()).unwrap();
        let best_bw = decision.su.weight_elements_per_cycle();
        for su in bitwave_su::ALL {
            let rate = su.parallelism() as f64 * su.utilization_for(pw);
            if (rate - decision.effective_macs_per_cycle).abs() < 1e-9 {
                assert!(best_bw <= su.weight_elements_per_cycle());
            }
        }
    }

    #[test]
    fn empty_su_set_is_a_typed_error() {
        let net = resnet18();
        let empty = SuSet {
            name: "Hollow".to_string(),
            options: Vec::new(),
        };
        let err = select_spatial_unrolling(&net.layers[0], &empty).unwrap_err();
        assert_eq!(
            err,
            MappingError::EmptySuSet {
                set: "Hollow".to_string()
            }
        );
        assert!(err.to_string().contains("Hollow"));
        let err = map_network(&net.layers, &empty).unwrap_err();
        assert!(matches!(err, MappingError::EmptySuSet { .. }));
    }

    #[test]
    fn zero_dimension_layer_is_a_typed_error() {
        let net = resnet18();
        let mut layer = net.layers[0].clone();
        layer.dims.c = 0;
        let err = select_spatial_unrolling(&layer, &SuSet::bitwave()).unwrap_err();
        assert_eq!(
            err,
            MappingError::DegenerateLayer {
                layer: layer.name.clone(),
                dim: "c"
            }
        );
        assert!(err.to_string().contains("zero-sized"));
        assert!(validate_layer_dims(&net.layers[0]).is_ok());
    }

    #[test]
    fn policy_parses_case_insensitively() {
        assert_eq!(
            MappingPolicy::parse("Heuristic"),
            Some(MappingPolicy::Heuristic)
        );
        assert_eq!(
            MappingPolicy::parse(" SEARCHED "),
            Some(MappingPolicy::Searched)
        );
        assert_eq!(MappingPolicy::parse("random"), None);
        assert_eq!(MappingPolicy::default(), MappingPolicy::Heuristic);
        assert_eq!(MappingPolicy::Searched.as_str(), "searched");
    }
}
