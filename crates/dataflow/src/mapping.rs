//! Per-layer spatial-unrolling selection.
//!
//! BitWave (and HUAA) choose a spatial unrolling per layer offline with the
//! ZigZag design-space exploration and store the decision in the instruction
//! memory (Section IV-C).  The selection criterion reproduced here is the
//! one the paper motivates with Fig. 9: maximise the effective MAC lanes per
//! cycle (array parallelism × utilisation), and among equally-fast options
//! prefer the one with the lower weight bandwidth demand (smaller `Cu·Ku`),
//! which reduces SRAM pressure.

use crate::su::{SpatialUnrolling, SuSet};
use bitwave_dnn::layer::LayerSpec;
use serde::Serialize;

/// The mapping decision for one layer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MappingDecision {
    /// Layer name.
    pub layer: String,
    /// The chosen spatial unrolling.
    pub su: SpatialUnrolling,
    /// PE-array utilisation achieved by the choice.
    pub utilization: f64,
    /// Effective MAC lanes per cycle (`parallelism × utilisation`).
    pub effective_macs_per_cycle: f64,
}

/// Selects the best SU of `set` for `layer`.
///
/// # Panics
///
/// Panics if `set.options` is empty.
pub fn select_spatial_unrolling(layer: &LayerSpec, set: &SuSet) -> MappingDecision {
    assert!(
        !set.options.is_empty(),
        "SU set must contain at least one option"
    );
    let mut best = set.options[0];
    let mut best_rate = f64::NEG_INFINITY;
    for &su in &set.options {
        let rate = su.parallelism() as f64 * su.utilization_for(layer);
        let better = rate > best_rate + 1e-9
            || (rate > best_rate - 1e-9
                && su.weight_elements_per_cycle() < best.weight_elements_per_cycle());
        if better {
            best = su;
            best_rate = rate;
        }
    }
    MappingDecision {
        layer: layer.name.clone(),
        su: best,
        utilization: best.utilization_for(layer),
        effective_macs_per_cycle: best_rate,
    }
}

/// Maps every layer of a network onto the SU set, returning one decision per
/// layer in execution order.
pub fn map_network(layers: &[LayerSpec], set: &SuSet) -> Vec<MappingDecision> {
    layers
        .iter()
        .map(|layer| select_spatial_unrolling(layer, set))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::su::bitwave_su;
    use bitwave_dnn::models::{mobilenet_v2, resnet18};

    #[test]
    fn depthwise_layers_never_map_worse_than_su7() {
        // The dedicated SU7 is the depthwise fallback of Table I; the mapper
        // must never pick anything slower than it for a depthwise layer.
        let net = mobilenet_v2();
        let dw = net.layers.iter().find(|l| l.kind.is_depthwise()).unwrap();
        let decision = select_spatial_unrolling(dw, &SuSet::bitwave());
        let su7_rate = bitwave_su::SU7.parallelism() as f64 * bitwave_su::SU7.utilization_for(dw);
        assert!(decision.effective_macs_per_cycle >= su7_rate - 1e-9);
        // A depthwise layer still cannot come close to filling the array.
        assert!(decision.utilization < 0.5, "got {}", decision.utilization);
    }

    #[test]
    fn deep_layers_select_channel_parallel_su() {
        let net = resnet18();
        let late = net.layer("layer4.1.conv2").unwrap();
        let decision = select_spatial_unrolling(late, &SuSet::bitwave());
        assert!(decision.utilization > 0.8, "got {}", decision.utilization);
        assert!(
            decision.su.c >= 8 && decision.su.k >= 32,
            "expected a CK-parallel SU, got {}",
            decision.su.name
        );
    }

    #[test]
    fn fixed_set_always_returns_its_only_option() {
        let net = resnet18();
        let set = SuSet::dense();
        for layer in &net.layers {
            let d = select_spatial_unrolling(layer, &set);
            assert_eq!(d.su.name, "Dense64x64");
        }
    }

    #[test]
    fn mapping_covers_every_layer_in_order() {
        let net = resnet18();
        let decisions = map_network(&net.layers, &SuSet::bitwave());
        assert_eq!(decisions.len(), net.layers.len());
        for (d, l) in decisions.iter().zip(&net.layers) {
            assert_eq!(d.layer, l.name);
            assert!((0.0..=1.0).contains(&d.utilization));
            assert!(d.effective_macs_per_cycle <= 4096.0 + 1e-9);
        }
    }

    #[test]
    fn dynamic_mapping_improves_mean_utilization_over_dense() {
        let net = mobilenet_v2();
        let dynamic = map_network(&net.layers, &SuSet::bitwave());
        let dense = map_network(&net.layers, &SuSet::dense());
        let mean_util =
            |d: &[MappingDecision]| d.iter().map(|x| x.utilization).sum::<f64>() / d.len() as f64;
        let mean_rate = |d: &[MappingDecision]| {
            d.iter().map(|x| x.effective_macs_per_cycle).sum::<f64>() / d.len() as f64
        };
        // The Fig. 13 story: MobileNetV2 gains the most from dynamic dataflow,
        // both in raw array occupancy and (more strongly) in effective MAC
        // throughput.
        assert!(
            mean_util(&dynamic) > 1.2 * mean_util(&dense),
            "dynamic util {:.3} vs dense {:.3}",
            mean_util(&dynamic),
            mean_util(&dense)
        );
        assert!(
            mean_rate(&dynamic) > 1.2 * mean_rate(&dense),
            "dynamic rate {:.0} vs dense {:.0}",
            mean_rate(&dynamic),
            mean_rate(&dense)
        );
    }

    #[test]
    fn tie_break_prefers_lower_weight_bandwidth() {
        // A pointwise layer with plenty of channels keeps several SUs equally
        // fast; the tie-break should then pick the lowest weight bandwidth.
        let net = mobilenet_v2();
        let pw = net
            .layers
            .iter()
            .find(|l| l.name.ends_with("project") && l.dims.k >= 32)
            .unwrap();
        let decision = select_spatial_unrolling(pw, &SuSet::bitwave());
        let best_bw = decision.su.weight_elements_per_cycle();
        for su in bitwave_su::ALL {
            let rate = su.parallelism() as f64 * su.utilization_for(pw);
            if (rate - decision.effective_macs_per_cycle).abs() < 1e-9 {
                assert!(best_bw <= su.weight_elements_per_cycle());
            }
        }
    }
}
