//! The shared memory hierarchy of the modelled accelerators.
//!
//! Section V-B models every accelerator with "an equivalent number of
//! processing elements and memory hierarchy": on-chip weight and activation
//! SRAM backed by off-chip DRAM, plus the PE-local registers.  BitWave's
//! implementation uses 256 KB of weight SRAM and 256 KB of activation SRAM
//! (Section V-A1); the same capacities are applied to the baselines.

use serde::{Deserialize, Serialize};

/// Capacities of the register / SRAM / DRAM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    /// On-chip weight SRAM capacity in bytes.
    pub weight_sram_bytes: usize,
    /// On-chip activation SRAM capacity in bytes.
    pub activation_sram_bytes: usize,
    /// DRAM interface width in bits per access (one burst beat).
    pub dram_word_bits: usize,
    /// SRAM word width in bits per access.
    pub sram_word_bits: usize,
}

impl MemoryHierarchy {
    /// The BitWave configuration: 256 KB + 256 KB SRAM, 64-bit SRAM words
    /// (the packed segments of Fig. 10), 64-bit DRAM beats.
    pub fn bitwave_default() -> Self {
        Self {
            weight_sram_bytes: 256 * 1024,
            activation_sram_bytes: 256 * 1024,
            dram_word_bits: 64,
            sram_word_bits: 64,
        }
    }

    /// Total on-chip SRAM in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.weight_sram_bytes + self.activation_sram_bytes
    }

    /// Whether a weight working set of `bytes` fits the weight SRAM.
    pub fn weights_fit(&self, bytes: usize) -> bool {
        bytes <= self.weight_sram_bytes
    }

    /// Whether input + output activations of `bytes` fit the activation SRAM.
    pub fn activations_fit(&self, bytes: usize) -> bool {
        bytes <= self.activation_sram_bytes
    }

    /// Number of weight tiles needed when a weight working set of `bytes`
    /// must be streamed through the weight SRAM (1 when it fits).
    pub fn weight_tiles(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.weight_sram_bytes).max(1)
    }

    /// Number of activation tiles needed for an activation working set of
    /// `bytes` (1 when it fits).
    pub fn activation_tiles(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.activation_sram_bytes).max(1)
    }
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        Self::bitwave_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_capacities() {
        let m = MemoryHierarchy::bitwave_default();
        assert_eq!(m.total_sram_bytes(), 512 * 1024);
        assert_eq!(m.dram_word_bits, 64);
    }

    #[test]
    fn fit_checks() {
        let m = MemoryHierarchy::bitwave_default();
        assert!(m.weights_fit(100 * 1024));
        assert!(!m.weights_fit(300 * 1024));
        assert!(m.activations_fit(256 * 1024));
        assert!(!m.activations_fit(256 * 1024 + 1));
    }

    #[test]
    fn tile_counts() {
        let m = MemoryHierarchy::bitwave_default();
        assert_eq!(m.weight_tiles(0), 1);
        assert_eq!(m.weight_tiles(256 * 1024), 1);
        assert_eq!(m.weight_tiles(256 * 1024 + 1), 2);
        assert_eq!(m.activation_tiles(1024 * 1024), 4);
    }
}
