//! The DRAM tier: timing model, per-operand traffic and refetch accounting.
//!
//! The Eq. 1–5 cost stack models the PE array and the on-chip SRAMs; this
//! module adds the off-chip tier the BitSim exemplar models with
//! `_check_layer_mem_size` / `_calc_num_mem_refetch`: a [`DramSpec`] turns
//! byte traffic into burst-quantised DRAM cycles, and [`DramTraffic`]
//! derives the per-operand traffic — including the refetch multipliers that
//! appear when a layer's weight or activation working set exceeds its SRAM —
//! from the same tile arithmetic [`crate::activity::ActivityCounts`] uses,
//! so the two views of the memory system can never drift apart.
//!
//! A layer's total latency under a constrained DRAM tier is the roofline
//! `max(cycle_compute, cycle_dram)` (compute and DRAM transfers overlap
//! through double buffering, exactly as BitSim sums
//! `max(cycle_layer_compute, cycle_layer_dram)` per layer); the default
//! [`DramSpec::unconstrained`] tier keeps the legacy additive Eq. 5
//! behaviour byte-identical.

use crate::activity::{TemporalMapping, TilingOrder};
use crate::memory::MemoryHierarchy;
use bitwave_dnn::layer::LayerSpec;
use serde::{Deserialize, Serialize};

/// Default DRAM burst length in bytes (a 64-byte burst: 8 beats of the
/// 64-bit interface of [`MemoryHierarchy::bitwave_default`]).
pub const DEFAULT_BURST_BYTES: usize = 64;

/// The DRAM interface of one accelerator configuration.
///
/// `bandwidth_bits: None` is the **unconstrained** default: the memory
/// model keeps its legacy additive DRAM term and reports no boundedness —
/// existing reports stay byte-identical.  A constrained tier
/// ([`DramSpec::constrained`]) switches the layer total to the roofline
/// `max(compute, dram)` with burst-quantised DRAM cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramSpec {
    /// Sustained DRAM bandwidth in bits per compute cycle; `None` models an
    /// effectively infinite interface (the compute-only legacy behaviour).
    pub bandwidth_bits: Option<usize>,
    /// Burst length in bytes: every transfer is rounded up to whole bursts.
    pub burst_bytes: usize,
}

impl DramSpec {
    /// The unconstrained default tier (legacy compute-only behaviour).
    pub fn unconstrained() -> Self {
        Self {
            bandwidth_bits: None,
            burst_bytes: DEFAULT_BURST_BYTES,
        }
    }

    /// A constrained tier sustaining `bandwidth_bits` bits per cycle with
    /// the default burst length.
    pub fn constrained(bandwidth_bits: usize) -> Self {
        Self {
            bandwidth_bits: Some(bandwidth_bits.max(1)),
            burst_bytes: DEFAULT_BURST_BYTES,
        }
    }

    /// Replaces the burst length.
    pub fn with_burst(mut self, burst_bytes: usize) -> Self {
        self.burst_bytes = burst_bytes.max(1);
        self
    }

    /// Whether the tier actually limits bandwidth.
    pub fn is_constrained(&self) -> bool {
        self.bandwidth_bits.is_some()
    }

    /// Rounds a transfer of `bytes` up to whole bursts.
    pub fn burst_quantize(&self, bytes: f64) -> f64 {
        let burst = self.burst_bytes.max(1) as f64;
        (bytes / burst).ceil().max(0.0) * burst
    }

    /// DRAM cycles needed to move `bytes` (burst-quantised); 0 for the
    /// unconstrained tier.
    pub fn cycles_for_bytes(&self, bytes: f64) -> f64 {
        match self.bandwidth_bits {
            None => 0.0,
            Some(bw) => self.burst_quantize(bytes) * 8.0 / bw.max(1) as f64,
        }
    }
}

impl Default for DramSpec {
    fn default() -> Self {
        Self::unconstrained()
    }
}

/// Per-operand DRAM working set of one layer in bytes (Int8 operands: one
/// byte per element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerFootprint {
    /// Weight tensor bytes.
    pub weight_bytes: usize,
    /// Input activation bytes (including the halo a convolution reads).
    pub input_bytes: usize,
    /// Output activation bytes.
    pub output_bytes: usize,
}

impl LayerFootprint {
    /// The footprint of one layer's loop nest.
    pub fn of_layer(layer: &LayerSpec) -> Self {
        Self {
            weight_bytes: layer.dims.weight_count() as usize,
            input_bytes: layer.dims.input_count() as usize,
            output_bytes: layer.dims.output_count() as usize,
        }
    }

    /// Bytes competing for the activation SRAM (inputs + outputs).
    pub fn activation_bytes(&self) -> usize {
        self.input_bytes + self.output_bytes
    }

    /// The BitSim `_check_layer_mem_size` check: which operands fit their
    /// SRAM outright (no refetch needed).
    pub fn fit(&self, memory: &MemoryHierarchy) -> FitCheck {
        FitCheck {
            weights_fit: memory.weights_fit(self.weight_bytes),
            activations_fit: memory.activations_fit(self.activation_bytes()),
        }
    }
}

/// Which operands of a layer fit their on-chip SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FitCheck {
    /// The whole weight tensor fits the weight SRAM.
    pub weights_fit: bool,
    /// Inputs + outputs fit the activation SRAM.
    pub activations_fit: bool,
}

/// How often each operand is streamed from DRAM under one temporal mapping —
/// the BitSim `_calc_num_mem_refetch` accounting.  A count of 1 means the
/// operand enters the chip exactly once; higher counts are refetches forced
/// by the resident operand's tile count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefetchCounts {
    /// Tiles the resident operand is cut into (capacity-forced count times
    /// the mapping's `tile_factor`).
    pub resident_tiles: u64,
    /// Times the weight tensor is streamed from DRAM.
    pub weight_fetches: u64,
    /// Times the input activations are streamed from DRAM.
    pub act_fetches: u64,
}

/// Per-operand DRAM traffic of one layer under one temporal mapping, before
/// weight compression (compression scales the weight stream downstream, in
/// the Eq. 3 stage of the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Weight bytes read from DRAM (refetches included).
    pub read_weight_bytes: u64,
    /// Activation bytes read from DRAM (refetches included).
    pub read_act_bytes: u64,
    /// Output bytes written back to DRAM.
    pub write_bytes: u64,
    /// The refetch accounting behind the read totals.
    pub refetch: RefetchCounts,
}

impl DramTraffic {
    /// Derives the traffic of `footprint` under `temporal`, mirroring the
    /// tile arithmetic of [`crate::activity::ActivityCounts::analyze_with`]
    /// exactly (the coherence is pinned by tests): the resident operand is
    /// cut into capacity-forced tiles and streamed once, the other operand
    /// is re-streamed once per resident tile.
    pub fn analyze(
        footprint: &LayerFootprint,
        memory: &MemoryHierarchy,
        temporal: TemporalMapping,
    ) -> Self {
        let factor = temporal.tile_factor.max(1) as u64;
        let (resident_tiles, weight_fetches, act_fetches) = match temporal.order {
            TilingOrder::WeightOuter => {
                let tiles = memory.weight_tiles(footprint.weight_bytes) as u64 * factor;
                (tiles, 1, tiles)
            }
            TilingOrder::ActivationOuter => {
                let tiles = memory.activation_tiles(footprint.activation_bytes()) as u64 * factor;
                (tiles, tiles, 1)
            }
        };
        Self {
            read_weight_bytes: footprint.weight_bytes as u64 * weight_fetches,
            read_act_bytes: footprint.input_bytes as u64 * act_fetches,
            write_bytes: footprint.output_bytes as u64,
            refetch: RefetchCounts {
                resident_tiles,
                weight_fetches,
                act_fetches,
            },
        }
    }

    /// Derives the traffic under the cheaper of the two tiling orders — the
    /// choice [`crate::activity::ActivityCounts::analyze`] makes.
    pub fn analyze_cheapest(footprint: &LayerFootprint, memory: &MemoryHierarchy) -> Self {
        let wo = Self::analyze(
            footprint,
            memory,
            TemporalMapping::natural(TilingOrder::WeightOuter),
        );
        let ao = Self::analyze(
            footprint,
            memory,
            TemporalMapping::natural(TilingOrder::ActivationOuter),
        );
        if wo.read_weight_bytes + wo.read_act_bytes <= ao.read_weight_bytes + ao.read_act_bytes {
            wo
        } else {
            ao
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.read_weight_bytes + self.read_act_bytes + self.write_bytes
    }
}

/// The compute-vs-memory verdict of one layer under a constrained DRAM
/// tier: both sides of the roofline `total = max(compute, dram)`, the stall
/// the slower side causes, and the refetch counts behind the DRAM side.
/// Only layers evaluated under a [constrained](DramSpec::constrained) tier
/// carry one; reports omit the field entirely at the unconstrained default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBoundedness {
    /// True when the DRAM side of the roofline dominates the layer.
    pub memory_bound: bool,
    /// Cycles of the compute (on-chip) side of the roofline: Eq. 5's
    /// overlapped compute/SRAM/register term plus the output write-back.
    pub compute_side_cycles: f64,
    /// Cycles of the DRAM side: burst-quantised traffic over bandwidth.
    pub dram_cycles: f64,
    /// Cycles the PE array stalls waiting on DRAM
    /// (`max(0, dram - compute_side)`).
    pub dram_stall_cycles: f64,
    /// Stall cycles as a fraction of the layer total.
    pub dram_stall_fraction: f64,
    /// DRAM traffic in bytes (compression-adjusted, refetches included).
    pub dram_bytes: f64,
    /// Times the weight tensor is streamed from DRAM.
    pub weight_fetches: u64,
    /// Times the input activations are streamed from DRAM.
    pub act_fetches: u64,
}

impl MemoryBoundedness {
    /// Builds the verdict from the two roofline sides.
    pub fn from_roofline(
        compute_side_cycles: f64,
        dram_cycles: f64,
        dram_bytes: f64,
        weight_fetches: u64,
        act_fetches: u64,
    ) -> Self {
        let total = compute_side_cycles.max(dram_cycles);
        let stall = (dram_cycles - compute_side_cycles).max(0.0);
        Self {
            memory_bound: dram_cycles > compute_side_cycles,
            compute_side_cycles,
            dram_cycles,
            dram_stall_cycles: stall,
            dram_stall_fraction: if total > 0.0 { stall / total } else { 0.0 },
            dram_bytes,
            weight_fetches,
            act_fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityCounts;
    use crate::su::bitwave_su;

    fn memory(weight_sram: usize, act_sram: usize) -> MemoryHierarchy {
        MemoryHierarchy {
            weight_sram_bytes: weight_sram,
            activation_sram_bytes: act_sram,
            dram_word_bits: 64,
            sram_word_bits: 64,
        }
    }

    #[test]
    fn unconstrained_tier_costs_nothing() {
        let dram = DramSpec::default();
        assert!(!dram.is_constrained());
        assert_eq!(dram.cycles_for_bytes(1e9), 0.0);
        assert_eq!(dram, DramSpec::unconstrained());
    }

    #[test]
    fn constrained_cycles_are_burst_quantised() {
        let dram = DramSpec::constrained(64);
        assert!(dram.is_constrained());
        // 64-byte burst at 64 bits/cycle: one burst = 8 cycles.
        assert_eq!(dram.cycles_for_bytes(1.0), 8.0);
        assert_eq!(dram.cycles_for_bytes(64.0), 8.0);
        assert_eq!(dram.cycles_for_bytes(65.0), 16.0);
        assert_eq!(dram.cycles_for_bytes(0.0), 0.0);
        // A wider interface moves the same bursts in fewer cycles.
        assert_eq!(DramSpec::constrained(128).cycles_for_bytes(65.0), 8.0);
        // A finer burst wastes less on the tail.
        assert_eq!(
            DramSpec::constrained(64)
                .with_burst(1)
                .cycles_for_bytes(65.0),
            65.0 * 8.0 / 64.0
        );
    }

    #[test]
    fn fit_check_matches_the_hierarchy() {
        let fp = LayerFootprint {
            weight_bytes: 1000,
            input_bytes: 300,
            output_bytes: 200,
        };
        let fit = fp.fit(&memory(1024, 512));
        assert!(fit.weights_fit);
        assert!(fit.activations_fit);
        let fit = fp.fit(&memory(999, 499));
        assert!(!fit.weights_fit);
        assert!(!fit.activations_fit);
        // Exactly at capacity still fits (<=, one tile, no refetch).
        let fit = fp.fit(&memory(1000, 500));
        assert!(fit.weights_fit && fit.activations_fit);
    }

    #[test]
    fn zero_size_layers_produce_no_traffic_and_one_tile() {
        let fp = LayerFootprint {
            weight_bytes: 0,
            input_bytes: 0,
            output_bytes: 0,
        };
        for order in [TilingOrder::WeightOuter, TilingOrder::ActivationOuter] {
            let t = DramTraffic::analyze(&fp, &memory(1024, 1024), TemporalMapping::natural(order));
            assert_eq!(t.total_bytes(), 0);
            assert_eq!(t.refetch.resident_tiles, 1);
            assert_eq!(t.refetch.weight_fetches.min(t.refetch.act_fetches), 1);
        }
    }

    #[test]
    fn tiles_exactly_at_capacity_need_no_refetch() {
        let fp = LayerFootprint {
            weight_bytes: 4096,
            input_bytes: 2048,
            output_bytes: 2048,
        };
        let mem = memory(4096, 4096);
        let wo = DramTraffic::analyze(
            &fp,
            &mem,
            TemporalMapping::natural(TilingOrder::WeightOuter),
        );
        assert_eq!(wo.refetch.resident_tiles, 1);
        assert_eq!(wo.read_act_bytes, 2048);
        // One byte over the edge doubles the resident tile count.
        let mem = memory(4095, 4096);
        let wo = DramTraffic::analyze(
            &fp,
            &mem,
            TemporalMapping::natural(TilingOrder::WeightOuter),
        );
        assert_eq!(wo.refetch.resident_tiles, 2);
        assert_eq!(wo.read_act_bytes, 2 * 2048);
        assert_eq!(
            wo.read_weight_bytes, 4096,
            "resident operand still streams once"
        );
    }

    #[test]
    fn traffic_is_coherent_with_activity_counts() {
        // The module promises byte-level agreement with ActivityCounts for
        // every order × tile factor, including the depthwise Gu×OXu shape.
        let conv = LayerSpec::conv2d("c", 64, 128, 3, 1, 1, 56, 0.5);
        let depthwise = LayerSpec::depthwise("dw", 384, 3, 1, 1, 14, 0.5);
        let linear = LayerSpec::linear("fc", 4096, 1000, 1, 0.5);
        let mem = memory(16 * 1024, 8 * 1024);
        for layer in [&conv, &depthwise, &linear] {
            let su = if layer.kind.is_depthwise() {
                bitwave_su::SU7
            } else {
                bitwave_su::SU1
            };
            let fp = LayerFootprint::of_layer(layer);
            for order in [TilingOrder::WeightOuter, TilingOrder::ActivationOuter] {
                for tile_factor in [1, 2, 5] {
                    let temporal = TemporalMapping { order, tile_factor };
                    let counts = ActivityCounts::analyze_with(layer, &su, &mem, temporal);
                    let traffic = DramTraffic::analyze(&fp, &mem, temporal);
                    assert_eq!(
                        traffic.read_weight_bytes, counts.dram_read_weight,
                        "{}",
                        layer.name
                    );
                    assert_eq!(
                        traffic.read_act_bytes, counts.dram_read_act,
                        "{}",
                        layer.name
                    );
                    assert_eq!(traffic.write_bytes, counts.dram_write_act, "{}", layer.name);
                }
            }
            let auto = ActivityCounts::analyze(layer, &su, &mem);
            let cheapest = DramTraffic::analyze_cheapest(&fp, &mem);
            assert_eq!(
                cheapest.read_weight_bytes + cheapest.read_act_bytes,
                auto.dram_read_weight + auto.dram_read_act,
                "{}",
                layer.name
            );
        }
    }

    #[test]
    fn depthwise_footprint_counts_per_channel_kernels() {
        // Depthwise Gu×OXu shape: K channels of FX×FY kernels, C = 1.
        let layer = LayerSpec::depthwise("dw", 384, 3, 1, 1, 14, 0.5);
        let fp = LayerFootprint::of_layer(&layer);
        assert_eq!(fp.weight_bytes, 384 * 3 * 3);
        assert!(fp.input_bytes > 0 && fp.output_bytes > 0);
        // Small enough to fit the paper-default SRAM: exactly one fetch each.
        let t = DramTraffic::analyze_cheapest(&fp, &MemoryHierarchy::bitwave_default());
        assert_eq!(t.refetch.weight_fetches, 1);
        assert_eq!(t.refetch.act_fetches, 1);
    }

    #[test]
    fn shrinking_sram_never_decreases_refetches() {
        let fp = LayerFootprint {
            weight_bytes: 100_000,
            input_bytes: 40_000,
            output_bytes: 20_000,
        };
        let mut previous = 0u64;
        for shift in 0..8 {
            let mem = memory((128 * 1024) >> shift, (64 * 1024) >> shift);
            let t = DramTraffic::analyze(
                &fp,
                &mem,
                TemporalMapping::natural(TilingOrder::WeightOuter),
            );
            assert!(
                t.refetch.act_fetches >= previous,
                "halving SRAM must not reduce refetches"
            );
            previous = t.refetch.act_fetches;
        }
    }

    #[test]
    fn boundedness_verdict_splits_the_roofline() {
        let b = MemoryBoundedness::from_roofline(100.0, 250.0, 2000.0, 1, 3);
        assert!(b.memory_bound);
        assert_eq!(b.dram_stall_cycles, 150.0);
        assert!((b.dram_stall_fraction - 0.6).abs() < 1e-12);
        let c = MemoryBoundedness::from_roofline(100.0, 40.0, 320.0, 1, 1);
        assert!(!c.memory_bound);
        assert_eq!(c.dram_stall_cycles, 0.0);
        assert_eq!(c.dram_stall_fraction, 0.0);
        let z = MemoryBoundedness::from_roofline(0.0, 0.0, 0.0, 0, 0);
        assert_eq!(z.dram_stall_fraction, 0.0);
    }

    #[test]
    fn dram_spec_serialization_roundtrips() {
        for dram in [
            DramSpec::unconstrained(),
            DramSpec::constrained(64),
            DramSpec::constrained(8).with_burst(32),
        ] {
            let json = serde_json::to_string(&dram).unwrap();
            let back: DramSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, dram);
        }
        // A missing bandwidth field deserializes to the unconstrained tier.
        let back: DramSpec = serde_json::from_str(r#"{"burst_bytes":64}"#).unwrap();
        assert_eq!(back, DramSpec::unconstrained());
    }
}
