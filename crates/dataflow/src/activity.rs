//! Table II activity counts.
//!
//! For every accelerator–layer pair, STEP 1 of the paper's modelling flow
//! extracts dense operational activity counts from ZigZag: the number of MAC
//! operations, the effective MACs per cycle under the chosen spatial
//! unrolling, and the read/write counts at every memory level.  This module
//! computes those counts analytically with an output-stationary dataflow and
//! the shared SRAM–DRAM hierarchy of [`crate::memory::MemoryHierarchy`]:
//!
//! * Weights and activations each enter the chip at least once.  If one
//!   operand's working set exceeds its SRAM, the other operand has to be
//!   re-streamed once per tile; the model evaluates both tiling orders
//!   (weight-outer and activation-outer) and keeps the cheaper one, which is
//!   the decision ZigZag's temporal-mapping search would make.
//! * On-chip, a weight SRAM read is spatially reused across the unrolled
//!   output positions (`OXu·OYu`), an activation SRAM read across the
//!   unrolled output channels (`Ku`); outputs are accumulated in PE-local
//!   registers and written to SRAM once (output stationary).

use crate::memory::MemoryHierarchy;
use crate::su::SpatialUnrolling;
use bitwave_dnn::layer::LayerSpec;
use serde::{Deserialize, Serialize};

/// Which operand stays resident in its SRAM tile by tile while the other is
/// re-streamed from DRAM — the temporal loop order of the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TilingOrder {
    /// Weights are resident tile by tile; activations are re-read once per
    /// weight tile.
    WeightOuter,
    /// Activations are resident tile by tile; weights are re-read once per
    /// activation tile.
    ActivationOuter,
}

impl TilingOrder {
    /// Short display tag (`wo` / `ao`).
    pub fn tag(self) -> &'static str {
        match self {
            TilingOrder::WeightOuter => "wo",
            TilingOrder::ActivationOuter => "ao",
        }
    }
}

/// An explicit temporal mapping: the tiling (loop) order plus a tile-count
/// multiplier on top of the minimum the SRAM capacity forces.  A design-space
/// search enumerates these alongside spatial unrollings; `tile_factor = 1`
/// with the cheaper order reproduces what [`ActivityCounts::analyze`] picks
/// automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TemporalMapping {
    /// The tiling order.
    pub order: TilingOrder,
    /// Multiplier on the capacity-forced tile count of the resident operand
    /// (1 = the natural tiling; larger factors cut tiles finer and re-stream
    /// the other operand more often).
    pub tile_factor: usize,
}

impl TemporalMapping {
    /// The natural tiling under the given order (capacity-forced tile count,
    /// no extra subdivision).
    pub fn natural(order: TilingOrder) -> Self {
        Self {
            order,
            tile_factor: 1,
        }
    }
}

/// Dense (sparsity-unaware) activity counts of one layer on one accelerator
/// configuration — the reproduction of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Total MAC operations (`N_mac`).
    pub macs: u64,
    /// Effective MACs per cycle under the chosen SU (`N_mac,cycle`).
    pub macs_per_cycle: f64,
    /// Off-chip activation reads in elements (`N_DRAM read,a`).
    pub dram_read_act: u64,
    /// Off-chip weight reads in elements (`N_DRAM read,w`).
    pub dram_read_weight: u64,
    /// Off-chip activation writes in elements (`N_DRAM write,a`).
    pub dram_write_act: u64,
    /// On-chip input-activation SRAM reads (`N_SRAM read-input`).
    pub sram_read_input: u64,
    /// On-chip weight SRAM reads (`N_SRAM read-weight`).
    pub sram_read_weight: u64,
    /// On-chip output SRAM writes (`N_SRAM write-output`).
    pub sram_write_output: u64,
    /// On-chip input SRAM fills from DRAM (`N_SRAM write-input`).
    pub sram_write_input: u64,
    /// On-chip weight SRAM fills from DRAM (`N_SRAM write-weight`).
    pub sram_write_weight: u64,
    /// PE register-file reads (`N_reg read`).
    pub reg_read: u64,
    /// PE register-file writes (`N_reg write`).
    pub reg_write: u64,
}

/// Off-chip read counts `(dram_read_weight, dram_read_act)` of one layer
/// under an explicit temporal mapping — the **only** part of
/// [`ActivityCounts`] that depends on the memory hierarchy.  Exposed
/// separately so a factored cost model can re-price just the DRAM axes of
/// a mapping whose compute side is already known.
pub fn dram_reads(
    weight_count: u64,
    input_count: u64,
    output_count: u64,
    memory: &MemoryHierarchy,
    temporal: TemporalMapping,
) -> (u64, u64) {
    let factor = temporal.tile_factor.max(1) as u64;
    match temporal.order {
        // Weights resident tile by tile, activations re-streamed once per
        // weight tile.
        TilingOrder::WeightOuter => {
            let weight_tiles = memory.weight_tiles(weight_count as usize) as u64 * factor;
            (weight_count, input_count * weight_tiles)
        }
        // Activations resident tile by tile, weights re-streamed once per
        // activation tile.
        TilingOrder::ActivationOuter => {
            let act_tiles =
                memory.activation_tiles((input_count + output_count) as usize) as u64 * factor;
            (weight_count * act_tiles, input_count)
        }
    }
}

/// [`dram_reads`] under the automatic cheapest-order choice: both natural
/// tiling orders are priced and the one with less total off-chip read
/// traffic wins (ties go to weight-outer) — exactly the decision
/// [`ActivityCounts::analyze`] makes.
pub fn dram_reads_auto(
    weight_count: u64,
    input_count: u64,
    output_count: u64,
    memory: &MemoryHierarchy,
) -> (u64, u64) {
    let wo = dram_reads(
        weight_count,
        input_count,
        output_count,
        memory,
        TemporalMapping::natural(TilingOrder::WeightOuter),
    );
    let ao = dram_reads(
        weight_count,
        input_count,
        output_count,
        memory,
        TemporalMapping::natural(TilingOrder::ActivationOuter),
    );
    if wo.0 + wo.1 <= ao.0 + ao.1 {
        wo
    } else {
        ao
    }
}

impl ActivityCounts {
    /// Analyses one layer under one spatial unrolling and memory hierarchy,
    /// letting the model pick the cheaper tiling order (the decision
    /// ZigZag's temporal-mapping search would make).
    pub fn analyze(layer: &LayerSpec, su: &SpatialUnrolling, memory: &MemoryHierarchy) -> Self {
        let dims = &layer.dims;
        let (dram_read_weight, dram_read_act) = dram_reads_auto(
            dims.weight_count(),
            dims.input_count(),
            dims.output_count(),
            memory,
        );
        Self::assemble(layer, su, dram_read_weight, dram_read_act)
    }

    /// Analyses one layer under an **explicit** temporal mapping instead of
    /// the automatic cheapest-order choice — the entry point the dataflow
    /// design-space exploration enumerates loop orders and tile sizes with.
    pub fn analyze_with(
        layer: &LayerSpec,
        su: &SpatialUnrolling,
        memory: &MemoryHierarchy,
        temporal: TemporalMapping,
    ) -> Self {
        let dims = &layer.dims;
        let (dram_read_weight, dram_read_act) = dram_reads(
            dims.weight_count(),
            dims.input_count(),
            dims.output_count(),
            memory,
            temporal,
        );
        Self::assemble(layer, su, dram_read_weight, dram_read_act)
    }

    /// The memory-hierarchy-**independent** activity counts of one layer
    /// under one spatial unrolling, with the DRAM read counts left at zero.
    /// A factored cost model computes these once per `(layer, SU)` and
    /// fills the DRAM axes in per memory configuration via [`dram_reads`] /
    /// [`dram_reads_auto`]; the zeros here are placeholders, never totals.
    pub fn analyze_spatial(layer: &LayerSpec, su: &SpatialUnrolling) -> Self {
        Self::assemble(layer, su, 0, 0)
    }

    /// Everything except the DRAM read decision: MAC counts, spatial SRAM
    /// reuse and register activity, with the given off-chip reads slotted
    /// into the DRAM axes (and their mirrored SRAM fill counts).
    fn assemble(
        layer: &LayerSpec,
        su: &SpatialUnrolling,
        dram_read_weight: u64,
        dram_read_act: u64,
    ) -> Self {
        let dims = &layer.dims;
        let macs = dims.macs();
        let utilization = su.utilization(dims);
        let macs_per_cycle = (su.parallelism() as f64 * utilization).max(1.0);

        let dram_write_act = dims.output_count();

        // Spatial reuse on chip.
        let weight_reuse = (su.ox * su.oy).max(1) as u64;
        let input_reuse = su.k.max(1) as u64;
        let sram_read_weight = macs / weight_reuse;
        let sram_read_input = macs / input_reuse;
        let sram_write_output = dims.output_count();
        let sram_write_input = dram_read_act;
        let sram_write_weight = dram_read_weight;

        // Output-stationary accumulation: one register read + write per MAC.
        let reg_read = macs;
        let reg_write = macs;

        Self {
            macs,
            macs_per_cycle,
            dram_read_act,
            dram_read_weight,
            dram_write_act,
            sram_read_input,
            sram_read_weight,
            sram_write_output,
            sram_write_input,
            sram_write_weight,
            reg_read,
            reg_write,
        }
    }

    /// Dense compute cycles implied by the counts (`N_mac / N_mac,cycle`),
    /// before any sparsity skipping.
    pub fn dense_compute_cycles(&self) -> f64 {
        self.macs as f64 / self.macs_per_cycle
    }

    /// Total DRAM traffic in elements.
    pub fn dram_total(&self) -> u64 {
        self.dram_read_act + self.dram_read_weight + self.dram_write_act
    }

    /// Element-wise sum of two activity counts (for network-level totals).
    pub fn accumulate(&self, other: &ActivityCounts) -> ActivityCounts {
        ActivityCounts {
            macs: self.macs + other.macs,
            // Aggregate throughput is defined by total MACs over total cycles.
            macs_per_cycle: {
                let cycles = self.dense_compute_cycles() + other.dense_compute_cycles();
                if cycles > 0.0 {
                    (self.macs + other.macs) as f64 / cycles
                } else {
                    self.macs_per_cycle
                }
            },
            dram_read_act: self.dram_read_act + other.dram_read_act,
            dram_read_weight: self.dram_read_weight + other.dram_read_weight,
            dram_write_act: self.dram_write_act + other.dram_write_act,
            sram_read_input: self.sram_read_input + other.sram_read_input,
            sram_read_weight: self.sram_read_weight + other.sram_read_weight,
            sram_write_output: self.sram_write_output + other.sram_write_output,
            sram_write_input: self.sram_write_input + other.sram_write_input,
            sram_write_weight: self.sram_write_weight + other.sram_write_weight,
            reg_read: self.reg_read + other.reg_read,
            reg_write: self.reg_write + other.reg_write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::su::{baseline_su, bitwave_su};
    use bitwave_dnn::models::{bert_base, resnet18};

    #[test]
    fn small_layer_reads_each_operand_once() {
        let net = resnet18();
        let layer = net.layer("layer1.0.conv1").unwrap(); // 36,864 weights, fits SRAM
        let counts =
            ActivityCounts::analyze(layer, &bitwave_su::SU1, &MemoryHierarchy::bitwave_default());
        assert_eq!(counts.dram_read_weight, layer.dims.weight_count());
        assert_eq!(counts.dram_read_act, layer.dims.input_count());
        assert_eq!(counts.dram_write_act, layer.dims.output_count());
        assert_eq!(counts.macs, layer.macs());
    }

    #[test]
    fn oversized_weights_force_extra_traffic_on_one_operand() {
        let net = bert_base();
        let layer = net.layer("bert.encoder.layer.0.intermediate").unwrap(); // 2.36 MB of weights
        let counts =
            ActivityCounts::analyze(layer, &bitwave_su::SU6, &MemoryHierarchy::bitwave_default());
        // With only 4 tokens the activations are tiny, so the model should
        // keep weights streaming once and never re-read them.
        assert_eq!(counts.dram_read_weight, layer.dims.weight_count());
        assert!(counts.dram_read_act >= layer.dims.input_count());
    }

    #[test]
    fn sram_reads_account_for_spatial_reuse() {
        let net = resnet18();
        let layer = net.layer("layer2.0.conv2").unwrap();
        let su = bitwave_su::SU1; // OXu=16, Ku=32
        let counts = ActivityCounts::analyze(layer, &su, &MemoryHierarchy::bitwave_default());
        assert_eq!(counts.sram_read_weight, layer.macs() / 16);
        assert_eq!(counts.sram_read_input, layer.macs() / 32);
        assert_eq!(counts.sram_write_output, layer.dims.output_count());
    }

    #[test]
    fn dense_cycles_scale_inversely_with_utilization() {
        let net = resnet18();
        let layer = net.layer("conv1").unwrap(); // only 3 input channels
        let mem = MemoryHierarchy::bitwave_default();
        let low_util = ActivityCounts::analyze(layer, &bitwave_su::SU3, &mem); // Cu=32 badly used
        let high_util = ActivityCounts::analyze(layer, &baseline_su::XY_4096, &mem);
        assert!(low_util.dense_compute_cycles() > high_util.dense_compute_cycles());
    }

    #[test]
    fn accumulate_sums_counts_and_averages_throughput() {
        let net = resnet18();
        let mem = MemoryHierarchy::bitwave_default();
        let a =
            ActivityCounts::analyze(net.layer("layer1.0.conv1").unwrap(), &bitwave_su::SU1, &mem);
        let b =
            ActivityCounts::analyze(net.layer("layer1.0.conv2").unwrap(), &bitwave_su::SU1, &mem);
        let total = a.accumulate(&b);
        assert_eq!(total.macs, a.macs + b.macs);
        assert_eq!(total.dram_total(), a.dram_total() + b.dram_total());
        let expected_cycles = a.dense_compute_cycles() + b.dense_compute_cycles();
        assert!((total.dense_compute_cycles() - expected_cycles).abs() / expected_cycles < 1e-9);
    }

    #[test]
    fn analyze_picks_the_cheaper_explicit_order() {
        let net = bert_base();
        let mem = MemoryHierarchy::bitwave_default();
        for layer in &net.layers {
            let auto = ActivityCounts::analyze(layer, &bitwave_su::SU6, &mem);
            let wo = ActivityCounts::analyze_with(
                layer,
                &bitwave_su::SU6,
                &mem,
                TemporalMapping::natural(TilingOrder::WeightOuter),
            );
            let ao = ActivityCounts::analyze_with(
                layer,
                &bitwave_su::SU6,
                &mem,
                TemporalMapping::natural(TilingOrder::ActivationOuter),
            );
            let cheaper = if wo.dram_read_weight + wo.dram_read_act
                <= ao.dram_read_weight + ao.dram_read_act
            {
                wo
            } else {
                ao
            };
            assert_eq!(auto, cheaper, "{}", layer.name);
        }
    }

    #[test]
    fn extra_tile_factors_only_add_dram_traffic() {
        let net = bert_base();
        let layer = net.layer("bert.encoder.layer.0.intermediate").unwrap();
        let mem = MemoryHierarchy::bitwave_default();
        for order in [TilingOrder::WeightOuter, TilingOrder::ActivationOuter] {
            let natural = ActivityCounts::analyze_with(
                layer,
                &bitwave_su::SU6,
                &mem,
                TemporalMapping::natural(order),
            );
            let finer = ActivityCounts::analyze_with(
                layer,
                &bitwave_su::SU6,
                &mem,
                TemporalMapping {
                    order,
                    tile_factor: 4,
                },
            );
            assert!(finer.dram_total() >= natural.dram_total());
            assert!(finer.dram_total() > natural.dram_total() || layer.dims.weight_count() == 0);
            assert_eq!(finer.macs, natural.macs);
        }
        assert_eq!(TilingOrder::WeightOuter.tag(), "wo");
        assert_eq!(TilingOrder::ActivationOuter.tag(), "ao");
    }

    #[test]
    fn split_dram_reads_match_the_full_analysis() {
        let net = bert_base();
        let mem = MemoryHierarchy::bitwave_default();
        for layer in &net.layers {
            let dims = &layer.dims;
            let auto = ActivityCounts::analyze(layer, &bitwave_su::SU6, &mem);
            assert_eq!(
                dram_reads_auto(
                    dims.weight_count(),
                    dims.input_count(),
                    dims.output_count(),
                    &mem
                ),
                (auto.dram_read_weight, auto.dram_read_act),
                "{}",
                layer.name
            );
            for order in [TilingOrder::WeightOuter, TilingOrder::ActivationOuter] {
                let temporal = TemporalMapping {
                    order,
                    tile_factor: 3,
                };
                let full = ActivityCounts::analyze_with(layer, &bitwave_su::SU6, &mem, temporal);
                let spatial = ActivityCounts::analyze_spatial(layer, &bitwave_su::SU6);
                let (w, a) = dram_reads(
                    dims.weight_count(),
                    dims.input_count(),
                    dims.output_count(),
                    &mem,
                    temporal,
                );
                assert_eq!((full.dram_read_weight, full.dram_read_act), (w, a));
                // The spatial part is everything except the DRAM axes and
                // their mirrored SRAM fills.
                assert_eq!(spatial.macs, full.macs);
                assert_eq!(spatial.sram_read_weight, full.sram_read_weight);
                assert_eq!(spatial.sram_read_input, full.sram_read_input);
                assert_eq!(spatial.sram_write_output, full.sram_write_output);
                assert_eq!(spatial.dram_write_act, full.dram_write_act);
                assert_eq!(spatial.dram_read_weight, 0);
                assert_eq!(spatial.dram_read_act, 0);
            }
        }
    }

    #[test]
    fn register_activity_tracks_macs() {
        let net = resnet18();
        let layer = net.layer("fc").unwrap();
        let counts =
            ActivityCounts::analyze(layer, &bitwave_su::SU6, &MemoryHierarchy::bitwave_default());
        assert_eq!(counts.reg_read, layer.macs());
        assert_eq!(counts.reg_write, layer.macs());
    }
}
