//! Property tests pinning the monotonicity of the DRAM refetch accounting:
//! shrinking either on-chip SRAM can never *decrease* the number of DRAM
//! refetches or the total DRAM traffic of a layer, for any layer shape and
//! either tiling order.  This is the invariant the memory-bound DSE relies
//! on — a smaller chip can only pay more at the DRAM interface.

use bitwave_dataflow::activity::{TemporalMapping, TilingOrder};
use bitwave_dataflow::{DramSpec, DramTraffic, LayerFootprint, MemoryHierarchy};
use bitwave_dnn::layer::LayerSpec;
use proptest::prelude::*;

fn memory(weight_sram: usize, act_sram: usize) -> MemoryHierarchy {
    MemoryHierarchy {
        weight_sram_bytes: weight_sram,
        activation_sram_bytes: act_sram,
        dram_word_bits: 64,
        sram_word_bits: 64,
    }
}

/// One of the three layer families the cost model distinguishes, with
/// proptest-driven shape parameters (depthwise exercises the Gu×OXu shape).
fn synth_layer(kind: u8, channels: usize, hw: usize) -> LayerSpec {
    match kind {
        0 => LayerSpec::conv2d("c", channels, channels * 2, 3, 1, 1, hw, 0.5),
        1 => LayerSpec::depthwise("dw", channels * 8, 3, 1, 1, hw, 0.5),
        _ => LayerSpec::linear("fc", channels * 64, channels * 16, 1, 0.5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shrinking either SRAM never decreases refetch counts or total DRAM
    /// bytes, under both tiling orders and the cheapest-order choice.
    #[test]
    fn shrinking_sram_is_monotone(
        kind in 0u8..3,
        channels in 1usize..96,
        hw in 1usize..40,
        weight_sram in 64usize..64 * 1024,
        act_sram in 64usize..64 * 1024,
        tile_factor in 1usize..4,
    ) {
        let layer = synth_layer(kind, channels, hw);
        let fp = LayerFootprint::of_layer(&layer);
        let large = memory(weight_sram * 2, act_sram * 2);
        let small = memory(weight_sram, act_sram);
        for order in [TilingOrder::WeightOuter, TilingOrder::ActivationOuter] {
            let temporal = TemporalMapping { order, tile_factor };
            let before = DramTraffic::analyze(&fp, &large, temporal);
            let after = DramTraffic::analyze(&fp, &small, temporal);
            prop_assert!(after.refetch.resident_tiles >= before.refetch.resident_tiles);
            prop_assert!(after.refetch.weight_fetches >= before.refetch.weight_fetches);
            prop_assert!(after.refetch.act_fetches >= before.refetch.act_fetches);
            prop_assert!(after.total_bytes() >= before.total_bytes());
        }
        let before = DramTraffic::analyze_cheapest(&fp, &large);
        let after = DramTraffic::analyze_cheapest(&fp, &small);
        prop_assert!(after.total_bytes() >= before.total_bytes());
    }

    /// Every operand is streamed at least once (no layer with a non-empty
    /// footprint gets free DRAM traffic), and write-back traffic never
    /// depends on the SRAM sizing.
    #[test]
    fn traffic_lower_bounds_hold(
        kind in 0u8..3,
        channels in 1usize..96,
        hw in 1usize..40,
        weight_sram in 64usize..64 * 1024,
        act_sram in 64usize..64 * 1024,
    ) {
        let layer = synth_layer(kind, channels, hw);
        let fp = LayerFootprint::of_layer(&layer);
        let mem = memory(weight_sram, act_sram);
        for order in [TilingOrder::WeightOuter, TilingOrder::ActivationOuter] {
            let t = DramTraffic::analyze(&fp, &mem, TemporalMapping::natural(order));
            prop_assert!(t.read_weight_bytes >= fp.weight_bytes as u64);
            prop_assert!(t.read_act_bytes >= fp.input_bytes as u64);
            prop_assert_eq!(t.write_bytes, fp.output_bytes as u64);
            prop_assert!(t.refetch.weight_fetches >= 1);
            prop_assert!(t.refetch.act_fetches >= 1);
        }
    }

    /// DRAM cycles are monotone in traffic and anti-monotone in bandwidth,
    /// and burst quantisation only ever rounds up.
    #[test]
    fn dram_cycles_are_monotone_in_bytes_and_bandwidth(
        bytes in 0u32..1_000_000,
        extra in 0u32..1_000_000,
        bandwidth in 1usize..2048,
        burst in 1usize..512,
    ) {
        let spec = DramSpec::constrained(bandwidth).with_burst(burst);
        let base = spec.cycles_for_bytes(f64::from(bytes));
        prop_assert!(spec.cycles_for_bytes(f64::from(bytes + extra)) >= base);
        let wider = DramSpec::constrained(bandwidth * 2).with_burst(burst);
        prop_assert!(wider.cycles_for_bytes(f64::from(bytes)) <= base);
        prop_assert!(spec.burst_quantize(f64::from(bytes)) >= f64::from(bytes));
        prop_assert_eq!(DramSpec::unconstrained().cycles_for_bytes(f64::from(bytes)), 0.0);
    }
}
