//! Process-wide deep-copy accounting for quantised weight tensors.
//!
//! Every `QuantTensor::clone()` — the only way a weight payload is duplicated
//! wholesale — bumps a global counter.  Benches and tests snapshot the counter
//! around a code path to assert its copy behaviour; `bench_pipeline` gates on
//! **zero** deep copies during pipeline job planning and parallel dispatch.
//!
//! Constructing fresh tensors (weight generation, Bit-Flip reassembly, PTQ
//! re-quantisation) is *not* counted: those allocate genuinely new data and
//! are the analysis work itself, not avoidable duplication.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Serialises tests/benches that assert **exact** counter deltas.
///
/// The counter is process-global, and `cargo test` runs a binary's tests on
/// parallel threads: without mutual exclusion, a counted clone in one test
/// can land between another test's snapshot and its assertion.  Hold the
/// returned guard for the whole snapshot→assert window.
pub fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Total number of `QuantTensor` deep copies performed by this process.
pub fn deep_copies() -> u64 {
    DEEP_COPIES.load(Ordering::Relaxed)
}

/// Records one deep copy (called from `QuantTensor::clone`).
pub(crate) fn record_deep_copy() {
    DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the copy counter; [`CopyCounter::delta`] reports how many deep
/// copies happened since the snapshot was taken.
#[derive(Debug, Clone, Copy)]
pub struct CopyCounter {
    at: u64,
}

impl CopyCounter {
    /// Takes a snapshot of the current counter.
    pub fn snapshot() -> Self {
        Self { at: deep_copies() }
    }

    /// Deep copies performed since this snapshot.
    pub fn delta(&self) -> u64 {
        deep_copies() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantParams;
    use crate::shape::Shape;
    use crate::tensor::QuantTensor;

    #[test]
    fn clone_is_counted_and_construction_is_not() {
        let _guard = exclusive();
        let counter = CopyCounter::snapshot();
        let t = QuantTensor::new(Shape::d1(8), vec![1i8; 8], QuantParams::unit()).unwrap();
        let z = QuantTensor::zeros(Shape::d1(8));
        assert_eq!(counter.delta(), 0, "construction must not count");
        let _c = t.clone();
        assert_eq!(counter.delta(), 1);
        let _c2 = z.clone();
        let _c3 = t.clone();
        assert_eq!(counter.delta(), 3);
    }
}
