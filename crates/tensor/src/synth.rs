//! Synthetic weight and activation generators.
//!
//! The paper evaluates pre-trained Int8 networks (ResNet18, MobileNetV2,
//! CNN-LSTM, BERT-Base).  We do not have those checkpoints; instead we
//! generate weights from the zero-centred, small-σ distributions that trained
//! DNN layers exhibit (the paper itself leans on this property — Section
//! III-B, "NN weights often exhibit non-uniform distributions with a high
//! frequency of small or zero values").  The generator parameters are chosen
//! per layer so that the resulting Int8 value sparsity and bit-column
//! sparsity land in the ranges the paper reports (e.g. ≈20 % value sparsity
//! and ≈59 % SM bit-column sparsity for ResNet18 conv2 at G = 4).
//!
//! Activations are modelled as rectified Gaussians (post-ReLU) or plain
//! Gaussians (GELU/attention outputs), again matching the qualitative
//! statistics the evaluation needs (activation value sparsity for SCNN and
//! Pragmatic modelling).

use crate::shape::Shape;
use crate::tensor::FloatTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Weight distribution families used for synthetic layer weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightDistribution {
    /// Zero-mean Gaussian with the given standard deviation.
    Gaussian {
        /// Standard deviation of the distribution.
        std: f64,
    },
    /// Zero-mean Laplacian (double exponential); heavier concentration of
    /// small values than a Gaussian, typical of trained conv layers.
    Laplacian {
        /// Scale parameter `b` (variance is `2 b²`).
        scale: f64,
    },
    /// A mixture of a point mass at zero and a Gaussian, used to model layers
    /// that were trained with weight decay strong enough to produce exact
    /// zeros after quantisation.
    SpikeAndSlab {
        /// Probability of drawing an exact zero.
        zero_probability: f64,
        /// Standard deviation of the non-zero component.
        std: f64,
    },
    /// Uniform over `[-range, range]`; used for stress/property tests rather
    /// than realistic layers.
    Uniform {
        /// Half-width of the support.
        range: f64,
    },
}

/// Deterministic generator of synthetic floating-point weight tensors.
#[derive(Debug, Clone)]
pub struct WeightGenerator {
    distribution: WeightDistribution,
    seed: u64,
}

impl WeightGenerator {
    /// Creates a generator for the given distribution and RNG seed.
    pub fn new(distribution: WeightDistribution, seed: u64) -> Self {
        Self { distribution, seed }
    }

    /// The configured distribution.
    pub fn distribution(&self) -> WeightDistribution {
        self.distribution
    }

    /// Generates a weight tensor of the requested shape.  The same generator
    /// and shape always produce the same tensor (the seed is combined with
    /// the shape so different layers of a network differ).
    pub fn generate(&self, shape: Shape) -> FloatTensor {
        let mut hash = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &d in shape.dims() {
            hash = hash.wrapping_mul(0x100_0000_01B3).wrapping_add(d as u64);
        }
        let mut rng = StdRng::seed_from_u64(hash);
        let data = (0..shape.num_elements())
            .map(|_| self.sample(&mut rng) as f32)
            .collect();
        FloatTensor::new(shape, data).expect("generated data matches shape")
    }

    /// Generates a weight tensor using an explicit per-layer salt so that two
    /// layers with identical shapes still receive different weights.
    pub fn generate_salted(&self, shape: Shape, salt: u64) -> FloatTensor {
        let salted = WeightGenerator::new(self.distribution, self.seed ^ salt.rotate_left(17));
        salted.generate(shape)
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match self.distribution {
            WeightDistribution::Gaussian { std } => sample_gaussian(rng) * std,
            WeightDistribution::Laplacian { scale } => {
                // Inverse-CDF sampling of the Laplace distribution.
                let u: f64 = rng.gen_range(-0.5..0.5);
                -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
            }
            WeightDistribution::SpikeAndSlab {
                zero_probability,
                std,
            } => {
                if rng.gen_bool(zero_probability.clamp(0.0, 1.0)) {
                    0.0
                } else {
                    sample_gaussian(rng) * std
                }
            }
            WeightDistribution::Uniform { range } => rng.gen_range(-range..=range),
        }
    }
}

/// Standard normal sample via the Box–Muller transform (keeps us independent
/// of `rand_distr`, which is not in the approved dependency set).
fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Activation statistics model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Post-ReLU: negative half clipped to zero — high value sparsity.
    Relu {
        /// Standard deviation of the pre-activation Gaussian.
        std: f64,
    },
    /// Post-GELU / attention output: approximately Gaussian, little sparsity.
    Gaussianlike {
        /// Standard deviation.
        std: f64,
    },
}

/// Deterministic generator of synthetic activation tensors.
#[derive(Debug, Clone)]
pub struct ActivationGenerator {
    kind: ActivationKind,
    seed: u64,
}

impl ActivationGenerator {
    /// Creates a generator with the given activation model and RNG seed.
    pub fn new(kind: ActivationKind, seed: u64) -> Self {
        Self { kind, seed }
    }

    /// Generates an activation tensor of the requested shape.
    pub fn generate(&self, shape: Shape) -> FloatTensor {
        let mut rng = StdRng::seed_from_u64(self.seed ^ shape.num_elements() as u64);
        let data = (0..shape.num_elements())
            .map(|_| {
                let v = match self.kind {
                    ActivationKind::Relu { std } => (sample_gaussian(&mut rng) * std).max(0.0),
                    ActivationKind::Gaussianlike { std } => sample_gaussian(&mut rng) * std,
                };
                v as f32
            })
            .collect();
        FloatTensor::new(shape, data).expect("generated data matches shape")
    }

    /// Expected value sparsity of this activation model (0.5 for ReLU over a
    /// zero-mean Gaussian, ~0 otherwise).  Useful for analytical models that
    /// only need the statistic, not the data.
    pub fn expected_value_sparsity(&self) -> f64 {
        match self.kind {
            ActivationKind::Relu { .. } => 0.5,
            ActivationKind::Gaussianlike { .. } => 0.0,
        }
    }
}

/// Convenience distribution parameterisation used by `bitwave-dnn` to pick a
/// per-layer weight distribution that reproduces the paper's reported
/// sparsity statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerWeightProfile {
    /// Distribution family and parameters.
    pub distribution: WeightDistribution,
    /// Fraction of the Int8 range that the distribution's ±4σ support should
    /// span.  Smaller values concentrate the quantised weights near zero and
    /// therefore raise bit-level sparsity.
    pub dynamic_range_utilisation: f64,
}

impl LayerWeightProfile {
    /// A profile typical of large convolution / linear layers: Laplacian with
    /// low dynamic-range utilisation — many near-zero weights, high
    /// bit-column sparsity under sign-magnitude.
    pub fn weight_heavy() -> Self {
        Self {
            distribution: WeightDistribution::Laplacian { scale: 0.018 },
            dynamic_range_utilisation: 0.35,
        }
    }

    /// A profile typical of early convolution layers: wider Gaussian, lower
    /// sparsity, more sensitive to perturbation.
    pub fn weight_light() -> Self {
        Self {
            distribution: WeightDistribution::Gaussian { std: 0.05 },
            dynamic_range_utilisation: 0.8,
        }
    }

    /// A profile for transformer (BERT) layers: dense Gaussians with very few
    /// exact zeros and limited bit sparsity, matching the paper's
    /// observation that the original Int8 BERT has few zero columns.
    pub fn transformer() -> Self {
        Self {
            distribution: WeightDistribution::Gaussian { std: 0.03 },
            dynamic_range_utilisation: 0.95,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_per_tensor;

    #[test]
    fn generation_is_deterministic() {
        let g = WeightGenerator::new(WeightDistribution::Gaussian { std: 0.05 }, 7);
        let a = g.generate(Shape::d2(16, 16));
        let b = g.generate(Shape::d2(16, 16));
        assert_eq!(a, b);
    }

    #[test]
    fn different_shapes_or_salts_give_different_tensors() {
        let g = WeightGenerator::new(WeightDistribution::Gaussian { std: 0.05 }, 7);
        let a = g.generate(Shape::d2(16, 16));
        let b = g.generate(Shape::d2(16, 17));
        assert_ne!(a.data()[..16], b.data()[..16]);
        let c = g.generate_salted(Shape::d2(16, 16), 1);
        let d = g.generate_salted(Shape::d2(16, 16), 2);
        assert_ne!(c.data()[..16], d.data()[..16]);
    }

    #[test]
    fn gaussian_statistics_are_plausible() {
        let g = WeightGenerator::new(WeightDistribution::Gaussian { std: 0.1 }, 3);
        let t = g.generate(Shape::d1(50_000));
        let mean = t.mean().unwrap();
        let var: f32 = t
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.data().len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - 0.1).abs() < 0.01,
            "std {} too far from 0.1",
            var.sqrt()
        );
    }

    #[test]
    fn laplacian_is_heavier_near_zero_than_gaussian() {
        let lap = WeightGenerator::new(WeightDistribution::Laplacian { scale: 0.05 }, 3)
            .generate(Shape::d1(50_000));
        let gau = WeightGenerator::new(WeightDistribution::Gaussian { std: 0.0707 }, 3)
            .generate(Shape::d1(50_000));
        // Same variance, but more samples within 0.25σ of zero for the Laplacian.
        let near = |t: &FloatTensor| t.data().iter().filter(|v| v.abs() < 0.0125).count();
        assert!(near(&lap) > near(&gau));
    }

    #[test]
    fn spike_and_slab_produces_exact_zero_fraction() {
        let g = WeightGenerator::new(
            WeightDistribution::SpikeAndSlab {
                zero_probability: 0.3,
                std: 0.05,
            },
            11,
        );
        let t = g.generate(Shape::d1(20_000));
        let zero_frac = t.data().iter().filter(|&&v| v == 0.0).count() as f64 / 20_000.0;
        assert!((zero_frac - 0.3).abs() < 0.02, "zero fraction {zero_frac}");
    }

    #[test]
    fn relu_activations_are_half_sparse_after_quantisation() {
        let g = ActivationGenerator::new(ActivationKind::Relu { std: 1.0 }, 5);
        let t = g.generate(Shape::feature_map(1, 8, 32, 32));
        let q = quantize_per_tensor(&t, 8).unwrap();
        let sparsity = q.value_sparsity();
        assert!(
            (sparsity - 0.5).abs() < 0.05,
            "post-ReLU sparsity {sparsity} should be near 0.5"
        );
        assert_eq!(g.expected_value_sparsity(), 0.5);
    }

    #[test]
    fn gaussian_activations_have_little_sparsity() {
        let g = ActivationGenerator::new(ActivationKind::Gaussianlike { std: 1.0 }, 5);
        let t = g.generate(Shape::d2(64, 64));
        let q = quantize_per_tensor(&t, 8).unwrap();
        assert!(q.value_sparsity() < 0.05);
        assert_eq!(g.expected_value_sparsity(), 0.0);
    }

    #[test]
    fn profiles_expose_expected_orderings() {
        let heavy = LayerWeightProfile::weight_heavy();
        let light = LayerWeightProfile::weight_light();
        assert!(heavy.dynamic_range_utilisation < light.dynamic_range_utilisation);
    }
}
