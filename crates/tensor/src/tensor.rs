//! Dense float and quantised tensors.

use crate::error::TensorError;
use crate::quant::QuantParams;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A dense row-major `f32` tensor.
///
/// Used for the floating-point reference path (synthetic "pre-trained"
/// weights before post-training quantisation) and for dequantised outputs in
/// the accuracy proxy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloatTensor {
    shape: Shape,
    data: Vec<f32>,
}

impl FloatTensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not match
    /// the number of elements implied by `shape`.
    pub fn new(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.num_elements() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        Self {
            data: vec![0.0; shape.num_elements()],
            shape,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element access by multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Largest absolute value in the tensor (0.0 for an all-zero tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Mean of the elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] if the tensor has no elements (cannot
    /// happen for tensors built through [`Shape`], which forbids zero dims).
    pub fn mean(&self) -> Result<f32, TensorError> {
        if self.data.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self.data.iter().sum::<f32>() / self.data.len() as f32)
    }
}

/// A dense row-major Int8 tensor together with its affine quantisation
/// parameters.
///
/// The quantisation convention follows the common symmetric/affine scheme:
/// `real ≈ scale * (q - zero_point)`.  The BitWave paper uses symmetric
/// per-tensor quantisation for weights (zero_point = 0), which is also what
/// [`crate::quant::quantize_per_tensor`] produces.
///
/// Cloning duplicates the whole Int8 payload and is therefore **counted** in
/// [`crate::copy_metrics`]; share read-only weights through a
/// [`crate::handle::WeightHandle`] instead of cloning.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantTensor {
    shape: Shape,
    data: Vec<i8>,
    params: QuantParams,
}

impl Clone for QuantTensor {
    fn clone(&self) -> Self {
        crate::copy_metrics::record_deep_copy();
        Self {
            shape: self.shape,
            data: self.data.clone(),
            params: self.params,
        }
    }
}

impl QuantTensor {
    /// Creates a quantised tensor from raw Int8 data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not match
    /// the number of elements implied by `shape`.
    pub fn new(shape: Shape, data: Vec<i8>, params: QuantParams) -> Result<Self, TensorError> {
        if data.len() != shape.num_elements() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Self {
            shape,
            data,
            params,
        })
    }

    /// Creates a zero-filled quantised tensor with unit scale.
    pub fn zeros(shape: Shape) -> Self {
        Self {
            data: vec![0i8; shape.num_elements()],
            shape,
            params: QuantParams::unit(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The affine quantisation parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Immutable view of the Int8 data.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Mutable view of the Int8 data.
    pub fn data_mut(&mut self) -> &mut [i8] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_data(self) -> Vec<i8> {
        self.data
    }

    /// Element access by multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> i8 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element access by multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut i8 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Fraction of elements equal to zero (the paper's "value sparsity").
    pub fn value_sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Reinterprets the tensor with a new shape containing the same number of
    /// elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the element counts do
    /// not match.
    pub fn reshaped(&self, shape: Shape) -> Result<QuantTensor, TensorError> {
        if shape.num_elements() != self.shape.num_elements() {
            return Err(TensorError::IncompatibleShapes {
                left: self.shape,
                right: shape,
            });
        }
        Ok(QuantTensor {
            shape,
            data: self.data.clone(),
            params: self.params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_tensor_roundtrip() {
        let t = FloatTensor::new(Shape::d2(2, 3), vec![1.0, -2.0, 3.0, 4.0, -5.0, 6.0]).unwrap();
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.abs_max(), 6.0);
        assert!((t.mean().unwrap() - (7.0 / 6.0)).abs() < 1e-6);
    }

    #[test]
    fn float_tensor_shape_mismatch() {
        let err = FloatTensor::new(Shape::d2(2, 3), vec![0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn quant_tensor_value_sparsity() {
        let t = QuantTensor::new(
            Shape::d1(8),
            vec![0, 1, 0, -3, 0, 0, 7, -1],
            QuantParams::unit(),
        )
        .unwrap();
        assert!((t.value_sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quant_tensor_mutation() {
        let mut t = QuantTensor::zeros(Shape::d2(2, 2));
        *t.at_mut(&[1, 1]) = -7;
        assert_eq!(t.at(&[1, 1]), -7);
        assert_eq!(t.data()[3], -7);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = QuantTensor::new(
            Shape::d2(2, 4),
            (0..8).map(|v| v as i8).collect(),
            QuantParams::unit(),
        )
        .unwrap();
        let r = t.reshaped(Shape::d4(2, 2, 2, 1)).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshaped(Shape::d1(7)).is_err());
    }

    #[test]
    fn zeros_have_full_sparsity() {
        let t = QuantTensor::zeros(Shape::d1(16));
        assert_eq!(t.value_sparsity(), 1.0);
    }
}
