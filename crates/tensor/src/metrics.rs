//! Tensor distance metrics used by the accuracy proxy.
//!
//! The Bit-Flip optimisation (Section III-D) trades weight perturbation
//! against accuracy; our reproduction replaces dataset accuracy with a proxy
//! built on these metrics (see `DESIGN.md` §2).

use crate::tensor::FloatTensor;

/// Root-mean-square error between two equally-sized slices.
///
/// Returns `0.0` for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rms_error(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "rms_error requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// Relative RMS error: `rms(a - b) / rms(a)`, with the convention that an
/// all-zero reference yields `0.0` when `b` is also all zero and `inf`
/// otherwise.
pub fn relative_rms_error(reference: &[f32], perturbed: &[f32]) -> f64 {
    let err = rms_error(reference, perturbed);
    let base = rms_error(reference, &vec![0.0; reference.len()]);
    if base == 0.0 {
        if err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        err / base
    }
}

/// Signal-to-quantisation-noise ratio in decibels: `20 log10(rms(ref) /
/// rms(ref - test))`. Returns `f64::INFINITY` when the signals are identical.
pub fn sqnr_db(reference: &[f32], test: &[f32]) -> f64 {
    let rel = relative_rms_error(reference, test);
    if rel == 0.0 {
        f64::INFINITY
    } else {
        -20.0 * rel.log10()
    }
}

/// Cosine similarity between two slices (1.0 for identical directions, 0.0
/// when either vector is all-zero).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_similarity requires equal lengths");
    let dot: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| f64::from(x) * f64::from(y))
        .sum();
    let na: f64 = a
        .iter()
        .map(|&x| f64::from(x) * f64::from(x))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = b
        .iter()
        .map(|&x| f64::from(x) * f64::from(x))
        .sum::<f64>()
        .sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// RMS error between two float tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn tensor_rms_error(a: &FloatTensor, b: &FloatTensor) -> f64 {
    assert_eq!(
        a.shape(),
        b.shape(),
        "tensor_rms_error requires equal shapes"
    );
    rms_error(a.data(), b.data())
}

/// Euclidean distance between two Int8 slices, the objective the Bit-Flip
/// algorithm minimises when choosing a replacement weight group
/// (Section III-D: "minimise the Euclidean Distance between the modified and
/// original weight vectors").
pub fn euclidean_distance_i8(a: &[i8], b: &[i8]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "euclidean_distance_i8 requires equal lengths"
    );
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn rms_of_identical_signals_is_zero() {
        let a = [1.0f32, -2.0, 3.0];
        assert_eq!(rms_error(&a, &a), 0.0);
        assert_eq!(sqnr_db(&a, &a), f64::INFINITY);
    }

    #[test]
    fn rms_known_value() {
        let a = [0.0f32, 0.0, 0.0, 0.0];
        let b = [1.0f32, 1.0, 1.0, 1.0];
        assert!((rms_error(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_rms_and_sqnr() {
        let reference = [10.0f32, -10.0, 10.0, -10.0];
        let perturbed = [11.0f32, -9.0, 11.0, -9.0];
        let rel = relative_rms_error(&reference, &perturbed);
        assert!((rel - 0.1).abs() < 1e-9);
        assert!((sqnr_db(&reference, &perturbed) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_reference_conventions() {
        let z = [0.0f32; 3];
        assert_eq!(relative_rms_error(&z, &z), 0.0);
        assert_eq!(relative_rms_error(&z, &[1.0, 0.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [2.0f32, 4.0, 6.0];
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-9);
        let c = [-1.0f32, -2.0, -3.0];
        assert!((cosine_similarity(&a, &c) + 1.0).abs() < 1e-9);
        assert_eq!(cosine_similarity(&a, &[0.0; 3]), 0.0);
    }

    #[test]
    fn euclidean_distance_matches_paper_example() {
        // Fig. 4(c): flipping -3 to -4 has a vector distance of 1.
        assert_eq!(euclidean_distance_i8(&[-3], &[-4]), 1.0);
        assert_eq!(euclidean_distance_i8(&[3, 4], &[0, 0]), 5.0);
    }

    #[test]
    fn tensor_rms_requires_same_shape() {
        let a = FloatTensor::zeros(Shape::d2(2, 2));
        let b = FloatTensor::zeros(Shape::d2(2, 2));
        assert_eq!(tensor_rms_error(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        rms_error(&[1.0], &[1.0, 2.0]);
    }
}
