//! Error type shared by the tensor substrate.

use std::fmt;

/// Errors produced by tensor construction, quantisation and codec routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements does not match the product of the shape dims.
    ShapeMismatch {
        /// Number of elements expected from the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    IncompatibleShapes {
        /// Shape of the left operand.
        left: crate::shape::Shape,
        /// Shape of the right operand.
        right: crate::shape::Shape,
    },
    /// A bit width outside the supported `1..=8` range was requested.
    InvalidBitWidth(
        /// The rejected bit width.
        u8,
    ),
    /// A quantisation axis larger than the tensor rank was requested.
    InvalidAxis {
        /// Requested axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// The tensor is empty where a non-empty tensor is required.
    Empty,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape expects {expected} elements, got {actual}")
            }
            TensorError::IncompatibleShapes { left, right } => {
                write!(f, "incompatible tensor shapes {left} and {right}")
            }
            TensorError::InvalidBitWidth(bits) => {
                write!(f, "bit width {bits} is outside the supported range 1..=8")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} is invalid for a rank-{rank} tensor")
            }
            TensorError::Empty => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::ShapeMismatch {
            expected: 12,
            actual: 10,
        };
        assert_eq!(e.to_string(), "shape expects 12 elements, got 10");
        let e = TensorError::InvalidBitWidth(12);
        assert!(e.to_string().contains("12"));
        let e = TensorError::IncompatibleShapes {
            left: Shape::d2(3, 4),
            right: Shape::d2(4, 3),
        };
        assert!(e.to_string().contains("incompatible"));
        let e = TensorError::InvalidAxis { axis: 5, rank: 4 };
        assert!(e.to_string().contains("axis 5"));
        assert!(TensorError::Empty.to_string().contains("non-empty"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }
}
