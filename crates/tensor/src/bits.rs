//! Bit-plane helpers shared by the sparsity analysis and the cycle-level
//! simulator.
//!
//! A "bit column" in the paper is the set of bits at the same significance
//! across a group of G weights (Fig. 4).  These helpers extract individual
//! bits and whole bit columns from Int8 data in either two's-complement or
//! sign-magnitude encoding.
//!
//! Since the bitplane rewrite, the column helpers here are thin **compat
//! wrappers** over the packed kernels in [`crate::bitplane`]: callers that
//! analyse more than one column per group should pack a
//! [`crate::bitplane::GroupPlanes`] (or a whole
//! [`crate::bitplane::BitplaneTensor`]) once and query it directly instead.

use crate::bitplane::GroupPlanes;
use crate::sm;

/// Number of bits in an Int8 word.
pub const WORD_BITS: usize = 8;

/// Number of magnitude bits in the sign-magnitude encoding (bits 0..=6).
pub const MAGNITUDE_BITS: usize = 7;

/// Returns bit `position` (0 = LSB) of `byte`.
#[inline]
pub fn bit(byte: u8, position: usize) -> bool {
    debug_assert!(position < WORD_BITS);
    (byte >> position) & 1 == 1
}

/// Returns the 7 magnitude bits of a sign-magnitude byte, LSB first.
pub fn magnitude_bits(sm_byte: u8) -> [bool; MAGNITUDE_BITS] {
    let mut out = [false; MAGNITUDE_BITS];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = bit(sm_byte, i);
    }
    out
}

/// Binary encoding used when examining bit columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Standard two's-complement Int8.
    TwosComplement,
    /// Sign-magnitude: bit 7 sign, bits 6..0 magnitude.
    SignMagnitude,
}

impl Encoding {
    /// Encodes an `i8` value into a byte under this encoding.
    pub fn encode(self, value: i8) -> u8 {
        match self {
            Encoding::TwosComplement => value as u8,
            Encoding::SignMagnitude => sm::to_sign_magnitude(value),
        }
    }

    /// Decodes a byte back into an `i8` value under this encoding.
    pub fn decode(self, byte: u8) -> i8 {
        match self {
            Encoding::TwosComplement => byte as i8,
            Encoding::SignMagnitude => sm::from_sign_magnitude(byte),
        }
    }
}

/// Extracts the 8 bit-columns of a group of values under `encoding`.
///
/// `columns[b]` holds one bit per value: bit `b` (0 = LSB, 7 = MSB/sign) of
/// every element of `group`, in order.  A column is "zero" when no element
/// has that bit set — the condition bit-column sparsity skips on.
///
/// # Example
///
/// ```
/// use bitwave_tensor::bits::{bit_columns, Encoding};
/// let cols = bit_columns(&[2, 6, 2, 2], Encoding::TwosComplement);
/// // Bit 0 (LSB) is clear in every element: a zero column.
/// assert!(cols[0].iter().all(|&b| !b));
/// // Bit 1 is set in every element.
/// assert!(cols[1].iter().all(|&b| b));
/// ```
pub fn bit_columns(group: &[i8], encoding: Encoding) -> [Vec<bool>; WORD_BITS] {
    let mut columns: [Vec<bool>; WORD_BITS] = Default::default();
    for col in columns.iter_mut() {
        col.reserve(group.len());
    }
    for chunk in group.chunks(64) {
        let packed = GroupPlanes::pack(chunk, encoding);
        for (b, col) in columns.iter_mut().enumerate() {
            let word = packed.plane(b);
            col.extend((0..chunk.len()).map(|i| (word >> i) & 1 == 1));
        }
    }
    columns
}

/// Returns an 8-bit mask with bit `b` set when bit-column `b` of `group`
/// contains at least one `1` (i.e. the column is *non-zero*).
///
/// This is exactly the "zero-column index" the BitWave hardware stores next
/// to the compressed weights (Section III-C / Fig. 4b): bit = 1 means the
/// column is present in the compressed stream, bit = 0 means it was skipped.
#[inline]
pub fn nonzero_column_mask(group: &[i8], encoding: Encoding) -> u8 {
    group.chunks(64).fold(0u8, |mask, chunk| {
        mask | GroupPlanes::pack(chunk, encoding).nonzero_column_mask()
    })
}

/// Number of zero bit-columns in `group` under `encoding` (0..=8).
#[inline]
pub fn zero_column_count(group: &[i8], encoding: Encoding) -> u32 {
    (!nonzero_column_mask(group, encoding)).count_ones()
}

/// Number of non-zero bit-columns in `group` under `encoding` (0..=8).
#[inline]
pub fn nonzero_column_count(group: &[i8], encoding: Encoding) -> u32 {
    nonzero_column_mask(group, encoding).count_ones()
}

/// Packs one bit-column of a group into a `u64` (LSB = first element).
///
/// Used by the cycle-level simulator, whose memory words are 64-bit packed
/// segments of same-significance weight bits (Fig. 10).
///
/// # Panics
///
/// Panics if `group.len() > 64` or `column >= 8`.
pub fn pack_column(group: &[i8], column: usize, encoding: Encoding) -> u64 {
    assert!(group.len() <= 64, "a packed column holds at most 64 bits");
    assert!(column < WORD_BITS, "bit column index out of range");
    GroupPlanes::pack(group, encoding).plane(column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bit_extraction() {
        assert!(bit(0b0000_0100, 2));
        assert!(!bit(0b0000_0100, 1));
        assert!(bit(0b1000_0000, 7));
    }

    #[test]
    fn magnitude_bits_of_five() {
        let bits = magnitude_bits(5);
        assert_eq!(bits, [true, false, true, false, false, false, false]);
    }

    #[test]
    fn paper_figure4_example_twos_complement() {
        // Fig. 4(a): four Int8 values in two's complement whose LSB+1 column is
        // zero. Values chosen so that bit 1 is zero across the group.
        let group = [5i8, -7, 9, 13];
        let mask = nonzero_column_mask(&group, Encoding::TwosComplement);
        assert_eq!(mask & 0b0000_0010, 0, "bit column 1 must be zero");
        assert!(zero_column_count(&group, Encoding::TwosComplement) >= 1);
    }

    #[test]
    fn sign_magnitude_increases_zero_columns_for_small_negatives() {
        // Small negative values: many leading ones in TC, almost none in SM.
        let group = [-1i8, -2, -3, -2];
        let zc_tc = zero_column_count(&group, Encoding::TwosComplement);
        let zc_sm = zero_column_count(&group, Encoding::SignMagnitude);
        assert!(
            zc_sm > zc_tc,
            "SM should expose more zero columns ({zc_sm} vs {zc_tc})"
        );
    }

    #[test]
    fn all_zero_group_has_eight_zero_columns() {
        let group = [0i8; 16];
        assert_eq!(zero_column_count(&group, Encoding::TwosComplement), 8);
        assert_eq!(zero_column_count(&group, Encoding::SignMagnitude), 8);
    }

    #[test]
    fn pack_column_bit_order() {
        let group = [1i8, 0, 1, 0, 0, 0, 0, 1];
        let word = pack_column(&group, 0, Encoding::TwosComplement);
        assert_eq!(word, 0b1000_0101);
        // No group element has bit 3 set.
        assert_eq!(pack_column(&group, 3, Encoding::TwosComplement), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn pack_column_rejects_oversized_groups() {
        let group = vec![0i8; 65];
        pack_column(&group, 0, Encoding::TwosComplement);
    }

    #[test]
    fn bit_columns_consistent_with_mask() {
        let group = [17i8, -33, 4, 0, 90, -2];
        for encoding in [Encoding::TwosComplement, Encoding::SignMagnitude] {
            let cols = bit_columns(&group, encoding);
            let mask = nonzero_column_mask(&group, encoding);
            for (b, col) in cols.iter().enumerate() {
                let nonzero = col.iter().any(|&x| x);
                assert_eq!(nonzero, (mask >> b) & 1 == 1, "column {b} mismatch");
            }
        }
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(v in -127i8..=127) {
            for encoding in [Encoding::TwosComplement, Encoding::SignMagnitude] {
                prop_assert_eq!(encoding.decode(encoding.encode(v)), v);
            }
        }

        #[test]
        fn zero_plus_nonzero_columns_is_eight(group in proptest::collection::vec(-127i8..=127, 1..64)) {
            for encoding in [Encoding::TwosComplement, Encoding::SignMagnitude] {
                let z = zero_column_count(&group, encoding);
                let nz = nonzero_column_count(&group, encoding);
                prop_assert_eq!(z + nz, 8);
            }
        }

        #[test]
        fn packed_columns_reconstruct_values(group in proptest::collection::vec(-127i8..=127, 1..=64)) {
            // Reassembling all 8 packed columns must reproduce the original bytes.
            for encoding in [Encoding::TwosComplement, Encoding::SignMagnitude] {
                let words: Vec<u64> = (0..WORD_BITS).map(|b| pack_column(&group, b, encoding)).collect();
                for (i, &v) in group.iter().enumerate() {
                    let mut byte = 0u8;
                    for (b, &word) in words.iter().enumerate() {
                        if (word >> i) & 1 == 1 {
                            byte |= 1 << b;
                        }
                    }
                    prop_assert_eq!(encoding.decode(byte), v);
                }
            }
        }
    }
}
