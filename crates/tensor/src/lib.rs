//! # bitwave-tensor
//!
//! Tensor, quantisation and binary-representation substrate for the BitWave
//! (HPCA 2024) reproduction.
//!
//! The BitWave paper operates exclusively on **Int8 post-training-quantised**
//! networks and exploits the *bit-level* structure of the quantised weights.
//! This crate therefore provides:
//!
//! * [`shape::Shape`] — lightweight N-dimensional shapes (up to 4-D, NCHW).
//! * [`tensor::FloatTensor`] / [`tensor::QuantTensor`] — dense float and Int8
//!   tensors with affine quantisation parameters.
//! * [`quant`] — affine post-training quantisation (per-tensor and
//!   per-channel), re-quantisation to fewer than 8 bits (the paper's
//!   "Int8+PTQ" baseline of Fig. 6), and dequantisation.
//! * [`sm`] — sign-magnitude ⇄ two's-complement codecs and bit-plane helpers,
//!   the representation change at the heart of bit-column sparsity
//!   (Section III-B of the paper).
//! * [`bitplane`] — bitplane-packed weight representation
//!   ([`bitplane::BitplaneTensor`]): one `u64` word = 64 weights' bit-`k`
//!   column, the hardware's own memory layout (Fig. 10) applied to the
//!   analysis kernels so sparsity statistics, BCS sizing and Bit-Flip
//!   screening run on word-parallel `count_ones`/mask ops.
//! * [`synth`] — synthetic weight/activation generators whose distributions
//!   are calibrated so that the *sparsity statistics* of the generated
//!   tensors match the ranges the paper reports (see `DESIGN.md` §2 for the
//!   substitution rationale).
//! * [`metrics`] — RMS error, SQNR and cosine similarity used by the accuracy
//!   proxy in `bitwave-dnn`.
//! * [`handle::WeightHandle`] — `Arc`-backed shared weight handles, the
//!   zero-copy ownership model of the pipeline; paired with
//!   [`copy_metrics`], which counts every `QuantTensor` deep copy so benches
//!   can gate on copy-free hot paths.
//!
//! # Example
//!
//! ```
//! use bitwave_tensor::prelude::*;
//!
//! # fn main() -> Result<(), TensorError> {
//! // Generate a synthetic conv-like weight tensor and quantise it to Int8.
//! let gen = WeightGenerator::new(WeightDistribution::Gaussian { std: 0.04 }, 42);
//! let w = gen.generate(Shape::conv_weight(64, 64, 3, 3));
//! let q = quantize_per_tensor(&w, 8)?;
//! assert_eq!(q.shape(), w.shape());
//! // Round-trip through sign-magnitude preserves the value.
//! let v: i8 = -42;
//! assert_eq!(sm::from_sign_magnitude(sm::to_sign_magnitude(v)), v);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitplane;
pub mod bits;
pub mod copy_metrics;
pub mod error;
pub mod handle;
pub mod metrics;
pub mod quant;
pub mod shape;
pub mod sm;
pub mod synth;
pub mod tensor;

pub use error::TensorError;
pub use handle::WeightHandle;
pub use quant::{quantize_per_channel, quantize_per_tensor, QuantParams};
pub use shape::Shape;
pub use tensor::{FloatTensor, QuantTensor};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::bitplane::{BitplaneTensor, GroupPlanes};
    pub use crate::bits::{bit, bit_columns, magnitude_bits, MAGNITUDE_BITS, WORD_BITS};
    pub use crate::error::TensorError;
    pub use crate::handle::WeightHandle;
    pub use crate::metrics::{cosine_similarity, rms_error, sqnr_db};
    pub use crate::quant::{
        dequantize, quantize_per_channel, quantize_per_tensor, requantize_to_bits, QuantParams,
    };
    pub use crate::shape::Shape;
    pub use crate::sm;
    pub use crate::synth::{ActivationGenerator, WeightDistribution, WeightGenerator};
    pub use crate::tensor::{FloatTensor, QuantTensor};
}
