//! Lightweight tensor shapes.
//!
//! The networks evaluated in the paper only need rank-1 to rank-4 tensors
//! (NCHW layout for feature maps, `[K, C, FY, FX]` for convolution weights,
//! `[Out, In]` for linear weights).  A small fixed-capacity shape type keeps
//! the substrate allocation-free on the hot paths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum supported tensor rank.
pub const MAX_RANK: usize = 4;

/// An N-dimensional tensor shape with rank at most [`MAX_RANK`].
///
/// # Example
///
/// ```
/// use bitwave_tensor::Shape;
/// let s = Shape::conv_weight(64, 3, 7, 7);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.num_elements(), 64 * 3 * 7 * 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, longer than [`MAX_RANK`], or contains a zero
    /// dimension.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_RANK,
            "shape rank must be in 1..={MAX_RANK}, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be non-zero: {dims:?}"
        );
        let mut buf = [1usize; MAX_RANK];
        buf[..dims.len()].copy_from_slice(dims);
        Self {
            dims: buf,
            rank: dims.len(),
        }
    }

    /// Rank-1 shape (a vector of `n` elements).
    pub fn d1(n: usize) -> Self {
        Self::new(&[n])
    }

    /// Rank-2 shape (`rows × cols`, e.g. a linear-layer weight `[out, in]`).
    pub fn d2(rows: usize, cols: usize) -> Self {
        Self::new(&[rows, cols])
    }

    /// Rank-3 shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Self::new(&[a, b, c])
    }

    /// Rank-4 shape.
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Self::new(&[a, b, c, d])
    }

    /// Convolution weight shape `[K, C, FY, FX]` (output channels, input
    /// channels, kernel height, kernel width).
    pub fn conv_weight(k: usize, c: usize, fy: usize, fx: usize) -> Self {
        Self::d4(k, c, fy, fx)
    }

    /// Feature-map shape `[B, C, H, W]`.
    pub fn feature_map(b: usize, c: usize, h: usize, w: usize) -> Self {
        Self::d4(b, c, h, w)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Dimensions as a slice of length [`Self::rank`].
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        assert!(
            axis < self.rank,
            "axis {axis} out of range for rank {}",
            self.rank
        );
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major (C-order) strides for this shape.
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut strides = [0usize; MAX_RANK];
        let mut acc = 1usize;
        for axis in (0..self.rank).rev() {
            strides[axis] = acc;
            acc *= self.dims[axis];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank, "index rank mismatch");
        let strides = self.strides();
        let mut off = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.dims()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (size {d})");
            off += i * strides[axis];
        }
        off
    }

    /// Returns a new shape with all dims collapsed into one (flattening).
    pub fn flattened(&self) -> Shape {
        Shape::d1(self.num_elements())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<[usize; 2]> for Shape {
    fn from(d: [usize; 2]) -> Self {
        Shape::d2(d[0], d[1])
    }
}

impl From<[usize; 4]> for Shape {
    fn from(d: [usize; 4]) -> Self {
        Shape::d4(d[0], d[1], d[2], d[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.num_elements(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::d4(2, 3, 4, 5);
        let strides = s.strides();
        assert_eq!(&strides[..4], &[60, 20, 5, 1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 2 * 4 + 3);
        assert_eq!(s.offset(&[1, 0, 1]), 13);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        Shape::d2(2, 2).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        Shape::new(&[3, 0]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::conv_weight(64, 3, 7, 7).to_string(), "[64x3x7x7]");
        assert_eq!(Shape::d1(10).to_string(), "[10]");
    }

    #[test]
    fn conversions_from_arrays() {
        let s: Shape = [3usize, 4].into();
        assert_eq!(s, Shape::d2(3, 4));
        let s: Shape = [1usize, 2, 3, 4].into();
        assert_eq!(s, Shape::d4(1, 2, 3, 4));
    }

    #[test]
    fn flattened_preserves_element_count() {
        let s = Shape::d4(2, 3, 4, 5);
        assert_eq!(s.flattened(), Shape::d1(120));
    }
}
