//! Post-training quantisation (PTQ).
//!
//! The paper's networks are Int8 quantised with PyTorch's standard
//! post-training quantisation flow (Section V-A2).  For the Fig. 6
//! comparison it additionally re-quantises the Int8 weights to fewer than 8
//! bits ("Int8+PTQ") as the baseline against which BCS + Bit-Flip is judged.
//! This module provides both operations.

use crate::error::TensorError;
use crate::tensor::{FloatTensor, QuantTensor};
use serde::{Deserialize, Serialize};

/// Affine quantisation parameters: `real ≈ scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Scale factor applied to the integer value.
    pub scale: f32,
    /// Zero point (0 for the symmetric scheme used for weights).
    pub zero_point: i32,
    /// Bit width of the integer representation (1..=8).
    pub bits: u8,
}

impl QuantParams {
    /// Parameters representing an identity mapping (scale 1, zero point 0,
    /// 8 bits).
    pub fn unit() -> Self {
        Self {
            scale: 1.0,
            zero_point: 0,
            bits: 8,
        }
    }

    /// Symmetric parameters for a given scale and bit width.
    pub fn symmetric(scale: f32, bits: u8) -> Self {
        Self {
            scale,
            zero_point: 0,
            bits,
        }
    }

    /// The largest representable magnitude for this bit width
    /// (e.g. 127 for 8 bits, 7 for 4 bits).
    pub fn q_max(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// The most negative representable value (e.g. -128 for 8 bits).
    pub fn q_min(&self) -> i32 {
        -(1i32 << (self.bits - 1))
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        Self::unit()
    }
}

fn check_bits(bits: u8) -> Result<(), TensorError> {
    if bits == 0 || bits > 8 {
        return Err(TensorError::InvalidBitWidth(bits));
    }
    Ok(())
}

/// Symmetric per-tensor quantisation of a float tensor to `bits` bits.
///
/// The scale is chosen so that the maximum absolute value maps to the largest
/// representable magnitude, matching PyTorch's default symmetric observer for
/// weights.
///
/// # Errors
///
/// Returns [`TensorError::InvalidBitWidth`] if `bits` is not in `1..=8`.
///
/// # Example
///
/// ```
/// use bitwave_tensor::prelude::*;
/// # fn main() -> Result<(), TensorError> {
/// let t = FloatTensor::new(Shape::d1(4), vec![0.5, -1.0, 0.25, 0.0])?;
/// let q = quantize_per_tensor(&t, 8)?;
/// assert_eq!(q.data()[1], -127);
/// # Ok(())
/// # }
/// ```
pub fn quantize_per_tensor(tensor: &FloatTensor, bits: u8) -> Result<QuantTensor, TensorError> {
    check_bits(bits)?;
    let q_max = ((1i32 << (bits - 1)) - 1) as f32;
    let abs_max = tensor.abs_max();
    let scale = if abs_max == 0.0 { 1.0 } else { abs_max / q_max };
    let params = QuantParams::symmetric(scale, bits);
    let data = tensor
        .data()
        .iter()
        .map(|&v| {
            let q = (v / scale).round();
            q.clamp(-q_max, q_max) as i8
        })
        .collect();
    QuantTensor::new(tensor.shape(), data, params)
}

/// Symmetric per-channel quantisation along `axis` (normally the output
/// channel axis, 0, for convolution and linear weights).
///
/// Each channel gets its own scale; the returned tensor's
/// [`QuantTensor::params`] holds the *maximum* channel scale (useful as a
/// summary), while the per-channel scales are returned alongside.
///
/// # Errors
///
/// Returns [`TensorError::InvalidBitWidth`] for an unsupported bit width and
/// [`TensorError::InvalidAxis`] if `axis` is out of range.
pub fn quantize_per_channel(
    tensor: &FloatTensor,
    bits: u8,
    axis: usize,
) -> Result<(QuantTensor, Vec<f32>), TensorError> {
    check_bits(bits)?;
    let shape = tensor.shape();
    if axis >= shape.rank() {
        return Err(TensorError::InvalidAxis {
            axis,
            rank: shape.rank(),
        });
    }
    let q_max = ((1i32 << (bits - 1)) - 1) as f32;
    let channels = shape.dim(axis);
    let strides = shape.strides();
    let channel_stride = strides[axis];
    let num = shape.num_elements();

    // Per-channel abs-max pass.
    let mut abs_max = vec![0.0f32; channels];
    for (i, &v) in tensor.data().iter().enumerate() {
        let ch = (i / channel_stride) % channels;
        if v.abs() > abs_max[ch] {
            abs_max[ch] = v.abs();
        }
    }
    let scales: Vec<f32> = abs_max
        .iter()
        .map(|&m| if m == 0.0 { 1.0 } else { m / q_max })
        .collect();

    let mut data = vec![0i8; num];
    for (i, &v) in tensor.data().iter().enumerate() {
        let ch = (i / channel_stride) % channels;
        let q = (v / scales[ch]).round().clamp(-q_max, q_max);
        data[i] = q as i8;
    }
    let summary_scale = scales.iter().cloned().fold(0.0f32, f32::max);
    let qt = QuantTensor::new(shape, data, QuantParams::symmetric(summary_scale, bits))?;
    Ok((qt, scales))
}

/// Dequantises an Int8 tensor back to floats using its stored parameters.
pub fn dequantize(tensor: &QuantTensor) -> FloatTensor {
    let params = tensor.params();
    let data = tensor
        .data()
        .iter()
        .map(|&q| params.scale * (q as i32 - params.zero_point) as f32)
        .collect();
    FloatTensor::new(tensor.shape(), data).expect("shape is preserved by construction")
}

/// Re-quantises an existing Int8 tensor to a smaller bit width, keeping the
/// real-valued range.
///
/// This is the paper's "Int8+PTQ" baseline of Fig. 6(e)–(h): the Int8 weights
/// are mapped to `bits < 8` by dropping LSB resolution (the scale grows by
/// `2^(8-bits)`), which is what uniform PTQ to a lower precision does to an
/// already-quantised tensor.
///
/// # Errors
///
/// Returns [`TensorError::InvalidBitWidth`] if `bits` is not in `1..=8`.
pub fn requantize_to_bits(tensor: &QuantTensor, bits: u8) -> Result<QuantTensor, TensorError> {
    check_bits(bits)?;
    let src = tensor.params();
    let shift = 8 - bits;
    let q_max = (1i32 << (bits - 1)) - 1;
    let new_scale = src.scale * (1i32 << shift) as f32;
    let data: Vec<i8> = tensor
        .data()
        .iter()
        .map(|&q| {
            // Round-to-nearest (ties away from zero) when dropping `shift` LSBs.
            let v = q as i32;
            let rounded = if shift == 0 {
                v
            } else {
                let bias = 1i32 << (shift - 1);
                let magnitude = (v.abs() + bias) >> shift;
                magnitude * v.signum()
            };
            rounded.clamp(-q_max, q_max) as i8
        })
        .collect();
    QuantTensor::new(
        tensor.shape(),
        data,
        QuantParams {
            scale: new_scale,
            zero_point: src.zero_point,
            bits,
        },
    )
}

/// Expands a re-quantised tensor back onto the Int8 grid of the original
/// tensor (multiplying by `2^(8-bits)`), so that PTQ-degraded weights can be
/// compared bit-for-bit and fed through the same Int8 inference path.
pub fn expand_to_int8_grid(tensor: &QuantTensor) -> QuantTensor {
    let params = tensor.params();
    let shift = 8 - params.bits;
    let data: Vec<i8> = tensor
        .data()
        .iter()
        .map(|&q| ((q as i32) << shift).clamp(-128, 127) as i8)
        .collect();
    QuantTensor::new(
        tensor.shape(),
        data,
        QuantParams {
            scale: params.scale / (1i32 << shift) as f32,
            zero_point: params.zero_point,
            bits: 8,
        },
    )
    .expect("shape preserved")
}

/// The effective compression ratio of storing a tensor at `bits` bits rather
/// than 8 (used to pick the PTQ bit width that matches a target BCS
/// compression ratio in Fig. 6).
pub fn ptq_compression_ratio(bits: u8) -> f64 {
    8.0 / f64::from(bits)
}

/// Chooses the smallest PTQ bit width whose compression ratio is at least
/// `target_cr`, clamped to `1..=8`.
pub fn ptq_bits_for_compression(target_cr: f64) -> u8 {
    for bits in (1..=8u8).rev() {
        if ptq_compression_ratio(bits) >= target_cr {
            return bits;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn sample_tensor() -> FloatTensor {
        FloatTensor::new(
            Shape::d2(2, 4),
            vec![0.5, -1.0, 0.25, 0.0, 0.75, -0.125, 1.0, -0.5],
        )
        .unwrap()
    }

    #[test]
    fn per_tensor_quantisation_maps_abs_max_to_qmax() {
        let q = quantize_per_tensor(&sample_tensor(), 8).unwrap();
        assert_eq!(q.data()[1], -127);
        assert_eq!(q.data()[6], 127);
        assert_eq!(q.params().bits, 8);
    }

    #[test]
    fn dequantisation_roundtrip_error_is_small() {
        let t = sample_tensor();
        let q = quantize_per_tensor(&t, 8).unwrap();
        let d = dequantize(&q);
        for (a, b) in t.data().iter().zip(d.data()) {
            assert!((a - b).abs() <= q.params().scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn invalid_bit_widths_rejected() {
        let t = sample_tensor();
        assert!(quantize_per_tensor(&t, 0).is_err());
        assert!(quantize_per_tensor(&t, 9).is_err());
        let q = quantize_per_tensor(&t, 8).unwrap();
        assert!(requantize_to_bits(&q, 0).is_err());
    }

    #[test]
    fn per_channel_scales_differ() {
        // Channel 0 has max 1.0, channel 1 has max 0.1.
        let t =
            FloatTensor::new(Shape::d2(2, 3), vec![1.0, -0.5, 0.25, 0.1, -0.05, 0.025]).unwrap();
        let (q, scales) = quantize_per_channel(&t, 8, 0).unwrap();
        assert_eq!(scales.len(), 2);
        assert!(scales[0] > scales[1]);
        // Both channel maxima map to 127.
        assert_eq!(q.data()[0], 127);
        assert_eq!(q.data()[3], 127);
    }

    #[test]
    fn per_channel_invalid_axis() {
        let t = sample_tensor();
        assert!(matches!(
            quantize_per_channel(&t, 8, 5),
            Err(TensorError::InvalidAxis { axis: 5, rank: 2 })
        ));
    }

    #[test]
    fn requantize_drops_lsbs_and_scales_up() {
        let q = QuantTensor::new(
            Shape::d1(4),
            vec![100, -100, 3, -3],
            QuantParams::symmetric(0.01, 8),
        )
        .unwrap();
        let r = requantize_to_bits(&q, 4).unwrap();
        // 100 >> 4 with rounding = (100+8)>>4 = 6 (clamped to 7 max).
        assert_eq!(r.data()[0], 6);
        assert_eq!(r.data()[1], -6);
        assert_eq!(r.data()[2], 0);
        assert_eq!(r.params().bits, 4);
        assert!((r.params().scale - 0.16).abs() < 1e-6);
        // Real value is approximately preserved: 100*0.01 = 1.0 vs 6*0.16 = 0.96.
        let orig = 100.0 * 0.01;
        let requant = 6.0 * r.params().scale;
        assert!((orig - requant).abs() < 0.1);
    }

    #[test]
    fn expand_to_int8_grid_matches_shifted_values() {
        let q =
            QuantTensor::new(Shape::d1(2), vec![6, -6], QuantParams::symmetric(0.16, 4)).unwrap();
        let e = expand_to_int8_grid(&q);
        assert_eq!(e.data(), &[96, -96]);
        assert_eq!(e.params().bits, 8);
    }

    #[test]
    fn ptq_bit_selection() {
        assert_eq!(ptq_bits_for_compression(1.0), 8);
        assert_eq!(ptq_bits_for_compression(1.4), 5);
        assert_eq!(ptq_bits_for_compression(2.0), 4);
        assert_eq!(ptq_bits_for_compression(3.0), 2);
        assert_eq!(ptq_bits_for_compression(10.0), 1);
    }

    #[test]
    fn all_zero_tensor_quantises_without_nan() {
        let t = FloatTensor::zeros(Shape::d1(8));
        let q = quantize_per_tensor(&t, 8).unwrap();
        assert!(q.data().iter().all(|&v| v == 0));
        assert!(q.params().scale.is_finite());
    }

    #[test]
    fn qmin_qmax_for_bit_widths() {
        let p8 = QuantParams::symmetric(1.0, 8);
        assert_eq!((p8.q_min(), p8.q_max()), (-128, 127));
        let p4 = QuantParams::symmetric(1.0, 4);
        assert_eq!((p4.q_min(), p4.q_max()), (-8, 7));
    }
}
