//! Shared, reference-counted weight-tensor handles.
//!
//! The BitWave pipeline does all of its expensive per-tensor work — bit-column
//! statistics, BCS compression, Bit-Flip — **once per layer**, then consumes
//! the result from many read-only stages, jobs and accelerator sweeps.  A
//! [`WeightHandle`] is the ownership model that matches: an [`Arc`]-backed,
//! immutable view of a [`QuantTensor`] whose `Clone` bumps a reference count
//! instead of deep-copying the weight payload.
//!
//! Deep copies of quantised tensors remain possible (and counted — see
//! [`crate::copy_metrics`]), but the pipeline's job planning and parallel
//! dispatch are expected to perform **zero** of them; the `bench_pipeline`
//! bench gates on that invariant.

use crate::tensor::QuantTensor;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, shared, immutable handle to a layer's Int8 weights.
///
/// Dereferences to [`QuantTensor`], so all read-only tensor APIs work
/// unchanged.  Mutation requires materialising a new tensor (Bit-Flip and PTQ
/// construct fresh tensors anyway) and wrapping it in a new handle.
#[derive(Debug, Clone)]
pub struct WeightHandle(Arc<QuantTensor>);

impl WeightHandle {
    /// Wraps an owned tensor into a shared handle (no copy).
    pub fn new(tensor: QuantTensor) -> Self {
        Self(Arc::new(tensor))
    }

    /// Wraps an already shared tensor (no copy).
    pub fn from_arc(tensor: Arc<QuantTensor>) -> Self {
        Self(tensor)
    }

    /// Borrow the underlying tensor.
    pub fn tensor(&self) -> &QuantTensor {
        &self.0
    }

    /// The shared allocation backing this handle.
    pub fn as_arc(&self) -> &Arc<QuantTensor> {
        &self.0
    }

    /// Number of live handles sharing this tensor (diagnostics/tests).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }

    /// True when both handles point at the **same allocation** (not merely
    /// equal contents) — the zero-copy sharing check used by tests.
    pub fn shares_allocation_with(&self, other: &WeightHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Extracts an owned tensor: without copying when this is the last
    /// handle, via one (counted) deep copy otherwise.
    pub fn into_tensor(self) -> QuantTensor {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl Deref for WeightHandle {
    type Target = QuantTensor;

    fn deref(&self) -> &QuantTensor {
        &self.0
    }
}

impl PartialEq for WeightHandle {
    /// Content equality (same shape, data and params); handles to different
    /// allocations with identical contents compare equal.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl From<QuantTensor> for WeightHandle {
    fn from(tensor: QuantTensor) -> Self {
        Self::new(tensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_metrics;
    use crate::quant::QuantParams;
    use crate::shape::Shape;

    fn tensor() -> QuantTensor {
        QuantTensor::new(
            Shape::d2(2, 4),
            vec![1, -2, 0, 4, -5, 0, 7, -8],
            QuantParams::unit(),
        )
        .unwrap()
    }

    #[test]
    fn clone_shares_the_allocation_without_deep_copying() {
        let _guard = copy_metrics::exclusive();
        let h = WeightHandle::new(tensor());
        let before = copy_metrics::deep_copies();
        let c = h.clone();
        assert_eq!(copy_metrics::deep_copies(), before, "clone must not copy");
        assert!(h.shares_allocation_with(&c));
        assert_eq!(h.handle_count(), 2);
        assert_eq!(c.data(), h.data());
    }

    #[test]
    fn deref_exposes_tensor_api() {
        let h = WeightHandle::new(tensor());
        assert_eq!(h.data().len(), 8);
        assert_eq!(h.shape(), Shape::d2(2, 4));
        assert!((h.value_sparsity() - 0.25).abs() < 1e-12);
        assert_eq!(h.tensor().data(), h.data());
    }

    #[test]
    fn equality_is_by_contents() {
        let a = WeightHandle::new(tensor());
        let b = WeightHandle::new(tensor());
        assert_eq!(a, b);
        assert!(!a.shares_allocation_with(&b));
        let mut other = tensor();
        other.data_mut()[0] = 99;
        assert_ne!(a, WeightHandle::new(other));
    }

    #[test]
    fn into_tensor_is_free_for_the_last_handle_and_copies_otherwise() {
        let _guard = copy_metrics::exclusive();
        let h = WeightHandle::new(tensor());
        let before = copy_metrics::deep_copies();
        let t = h.into_tensor();
        assert_eq!(copy_metrics::deep_copies(), before, "sole owner: no copy");
        let h = WeightHandle::new(t);
        let keep_alive = h.clone();
        let before = copy_metrics::deep_copies();
        let t = h.into_tensor();
        assert_eq!(copy_metrics::deep_copies(), before + 1, "shared: one copy");
        assert_eq!(t.data(), keep_alive.data());
    }

    #[test]
    fn from_arc_and_from_impl() {
        let arc = Arc::new(tensor());
        let h = WeightHandle::from_arc(Arc::clone(&arc));
        assert!(Arc::ptr_eq(h.as_arc(), &arc));
        let via_from: WeightHandle = tensor().into();
        assert_eq!(via_from, h);
    }
}
