//! Sign-magnitude representation.
//!
//! Section III-B of the paper observes that DNN weight distributions are
//! dominated by values of small magnitude (positive *and* negative).  In
//! two's complement a small negative value such as `-3 = 0b1111_1101` has
//! many leading ones, which destroys bit-column sparsity; the same value in
//! sign-magnitude, `0b1000_0011`, has a single sign bit and only two
//! magnitude bits set.  Switching the representation alone raises ResNet18
//! conv2's bit-column sparsity from 17 % to 59 % (Fig. 4).
//!
//! The codec here maps `i8` values to an 8-bit sign-magnitude byte:
//! bit 7 is the sign (1 = negative), bits 6..0 are the magnitude.
//! The value `-128` cannot be represented in 8-bit sign-magnitude (its
//! magnitude 128 needs 8 bits); following the paper's symmetric quantisation
//! (which only produces values in `-127..=127`) it saturates to `-127`.

/// Bit mask of the sign bit in the sign-magnitude byte.
pub const SIGN_BIT: u8 = 0x80;

/// Bit mask of the magnitude field.
pub const MAGNITUDE_MASK: u8 = 0x7F;

/// Converts a two's-complement `i8` to its sign-magnitude byte.
///
/// `-128` saturates to the sign-magnitude encoding of `-127` (see module
/// docs).
///
/// # Example
///
/// ```
/// use bitwave_tensor::sm;
/// assert_eq!(sm::to_sign_magnitude(-3), 0b1000_0011);
/// assert_eq!(sm::to_sign_magnitude(3), 0b0000_0011);
/// assert_eq!(sm::to_sign_magnitude(0), 0);
/// ```
pub fn to_sign_magnitude(value: i8) -> u8 {
    if value >= 0 {
        value as u8
    } else {
        let magnitude = if value == i8::MIN {
            127u8
        } else {
            (-(value as i16)) as u8
        };
        SIGN_BIT | magnitude
    }
}

/// Converts a sign-magnitude byte back to a two's-complement `i8`.
///
/// The encoding `0b1000_0000` ("negative zero") decodes to `0`.
///
/// # Example
///
/// ```
/// use bitwave_tensor::sm;
/// assert_eq!(sm::from_sign_magnitude(0b1000_0011), -3);
/// assert_eq!(sm::from_sign_magnitude(0b1000_0000), 0);
/// ```
pub fn from_sign_magnitude(encoded: u8) -> i8 {
    let magnitude = (encoded & MAGNITUDE_MASK) as i16;
    if encoded & SIGN_BIT != 0 {
        (-magnitude) as i8
    } else {
        magnitude as i8
    }
}

/// Splits a value into `(sign, magnitude)` where `sign` is `true` for
/// negative values.
pub fn sign_and_magnitude(value: i8) -> (bool, u8) {
    let sm = to_sign_magnitude(value);
    (sm & SIGN_BIT != 0, sm & MAGNITUDE_MASK)
}

/// Encodes a slice of `i8` values into sign-magnitude bytes.
pub fn encode_slice(values: &[i8]) -> Vec<u8> {
    values.iter().map(|&v| to_sign_magnitude(v)).collect()
}

/// Decodes a slice of sign-magnitude bytes back into `i8` values.
pub fn decode_slice(encoded: &[u8]) -> Vec<i8> {
    encoded.iter().map(|&b| from_sign_magnitude(b)).collect()
}

/// Number of `1` bits in the two's-complement representation of `value`.
pub fn ones_twos_complement(value: i8) -> u32 {
    (value as u8).count_ones()
}

/// Number of `1` bits in the sign-magnitude representation of `value`.
pub fn ones_sign_magnitude(value: i8) -> u32 {
    to_sign_magnitude(value).count_ones()
}

/// Bit-level density (fraction of `1` bits out of 8) of a slice under
/// two's-complement encoding.
pub fn bit_density_twos_complement(values: &[i8]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let ones: u64 = values
        .iter()
        .map(|&v| u64::from(ones_twos_complement(v)))
        .sum();
    ones as f64 / (values.len() as f64 * 8.0)
}

/// Bit-level density (fraction of `1` bits out of 8) of a slice under
/// sign-magnitude encoding.
pub fn bit_density_sign_magnitude(values: &[i8]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let ones: u64 = values
        .iter()
        .map(|&v| u64::from(ones_sign_magnitude(v)))
        .sum();
    ones as f64 / (values.len() as f64 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        assert_eq!(to_sign_magnitude(0), 0b0000_0000);
        assert_eq!(to_sign_magnitude(1), 0b0000_0001);
        assert_eq!(to_sign_magnitude(-1), 0b1000_0001);
        assert_eq!(to_sign_magnitude(127), 0b0111_1111);
        assert_eq!(to_sign_magnitude(-127), 0b1111_1111);
        assert_eq!(to_sign_magnitude(-3), 0b1000_0011);
    }

    #[test]
    fn int8_min_saturates() {
        assert_eq!(to_sign_magnitude(i8::MIN), 0b1111_1111);
        assert_eq!(from_sign_magnitude(to_sign_magnitude(i8::MIN)), -127);
    }

    #[test]
    fn negative_zero_decodes_to_zero() {
        assert_eq!(from_sign_magnitude(SIGN_BIT), 0);
    }

    #[test]
    fn small_negative_values_have_fewer_ones_in_sm() {
        // -3 in two's complement: 0b1111_1101 (7 ones); in SM: 0b1000_0011 (3 ones).
        assert_eq!(ones_twos_complement(-3), 7);
        assert_eq!(ones_sign_magnitude(-3), 3);
    }

    #[test]
    fn slice_roundtrip() {
        let values: Vec<i8> = vec![0, 1, -1, 64, -64, 127, -127, 3, -3];
        assert_eq!(decode_slice(&encode_slice(&values)), values);
    }

    #[test]
    fn bit_density_gaussian_like_weights_drop_under_sm() {
        // A typical small-magnitude, zero-centred weight distribution has much
        // lower bit density in sign-magnitude (mirrors Fig. 1 of the paper).
        let values: Vec<i8> = (-20..=20).collect();
        let tc = bit_density_twos_complement(&values);
        let smd = bit_density_sign_magnitude(&values);
        assert!(smd < tc, "SM density {smd} should be below TC density {tc}");
    }

    #[test]
    fn empty_slice_density_is_zero() {
        assert_eq!(bit_density_twos_complement(&[]), 0.0);
        assert_eq!(bit_density_sign_magnitude(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn roundtrip_all_values_except_min(v in -127i8..=127) {
            prop_assert_eq!(from_sign_magnitude(to_sign_magnitude(v)), v);
        }

        #[test]
        fn sign_matches_value_sign(v in -127i8..=127) {
            let (sign, magnitude) = sign_and_magnitude(v);
            prop_assert_eq!(sign, v < 0);
            prop_assert_eq!(magnitude as i16, (v as i16).abs());
        }

        #[test]
        fn sm_never_has_more_magnitude_ones(v in -127i8..=127) {
            // For non-negative values the encodings coincide; for negative values
            // sign-magnitude has exactly one sign bit plus the magnitude bits.
            let sm_ones = ones_sign_magnitude(v);
            prop_assert_eq!(sm_ones, (v.unsigned_abs()).count_ones() + u32::from(v < 0));
        }
    }
}
