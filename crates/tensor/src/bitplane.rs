//! Bitplane-packed weight representation — word-parallel sparsity kernels.
//!
//! The BitWave hardware never looks at weights value-by-value: its memory
//! words are 64-bit packed segments of *same-significance* bits (Fig. 10),
//! so a single word read delivers bit-column `b` of 64 consecutive weights.
//! This module applies the same layout to the simulator's analysis kernels.
//! A [`BitplaneTensor`] stores, for **both** encodings (two's complement and
//! sign-magnitude), eight `Vec<u64>` planes:
//!
//! ```text
//!            element index →  63 62 61 ............ 2  1  0
//! plane[7] (sign/MSB)  word0  s  s  s  ............ s  s  s
//! plane[6]             word0  m6 m6 m6 ............ m6 m6 m6
//!   ⋮                           ⋮
//! plane[0] (LSB)       word0  m0 m0 m0 ............ m0 m0 m0
//! ```
//!
//! Bit `i` of `plane[b][w]` is bit `b` of element `64*w + i` — identical to
//! the order [`crate::bits::pack_column`] produces.  With this layout every
//! analysis the paper performs collapses to word operations:
//!
//! * **bit sparsity** — `count_ones` over a plane;
//! * **value sparsity** — `count_ones` of the OR of all eight planes;
//! * **zero-column index** of a group — is the group's window of plane `b`
//!   zero?  (8 window tests instead of `G` encode+OR steps);
//! * **per-group non-zero column counts** — an OR-fold turns each aligned
//!   `G`-bit lane into a 0/1 indicator at the lane LSB, and adding the eight
//!   indicator words sums the counts of 16 (for `G = 4`) or more groups at
//!   once with plain `u64` addition (lane counts ≤ 8 never carry).
//!
//! **Tail masking.** A tensor whose length is not a multiple of 64 occupies
//! `len.div_ceil(64)` words; the bits of the final word at positions
//! `len % 64` and above are **always zero**.  Zero tail bits contribute
//! nothing to any popcount, OR-mask or indicator sum, so no kernel needs a
//! special tail path — the invariant is established once at packing time.
//!
//! Packing itself runs at word speed too: eight encoded bytes are loaded as
//! one `u64` and transposed with the classic 8×8 bit-matrix transpose
//! ([`transpose8`]), producing one byte of each of the eight planes per
//! step.  Only the two's-complement planes are transposed from bytes — the
//! sign-magnitude planes are then *derived* from them with a word-parallel
//! ripple-carry negation (64 encodes per plane word collapse to ~20 word
//! ops).
//!
//! In the pipeline, packing happens **once per layer** inside the compress
//! stage ([`Groups`]`::to_bitplanes` in `bitwave-core`); the resulting
//! [`BitplaneTensor`] is then shared by statistics, BCS size accounting, the
//! accelerator sparsity profile and the Bit-Flip search, exactly as the
//! extracted groups are shared today.
//!
//! [`Groups`]: ../../bitwave_core/group/struct.Groups.html

use crate::bits::{Encoding, WORD_BITS};

/// Number of elements packed into one plane word.
pub const WORD_LEN: usize = 64;

/// Transposes a `u64` viewed as an 8×8 bit matrix (Hacker's Delight 7-3).
///
/// When `x` is built with [`u64::from_le_bytes`] from 8 encoded weight
/// bytes, byte `b` of the little-endian result holds bit `b` of each of the
/// 8 weights (LSB = first weight) — i.e. one byte of each bitplane.
#[inline]
pub fn transpose8(mut x: u64) -> u64 {
    let mut t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Transposes up to 64 encoded bytes into the 8 plane words they
/// contribute, accumulated in registers (one store per plane, not one
/// read-modify-write per 8-byte block).
#[inline]
fn transpose_block(bytes: &[u8; WORD_LEN]) -> [u64; WORD_BITS] {
    let mut acc = [0u64; WORD_BITS];
    for block in 0..WORD_LEN / WORD_BITS {
        let x = u64::from_le_bytes(
            bytes[block * 8..block * 8 + 8]
                .try_into()
                .expect("8-byte block"),
        );
        if x == 0 {
            continue;
        }
        let col_bytes = transpose8(x).to_le_bytes();
        for (b, lane) in acc.iter_mut().enumerate() {
            *lane |= u64::from(col_bytes[b]) << (block * 8);
        }
    }
    acc
}

/// Derives the sign-magnitude planes of 64 elements from their
/// two's-complement planes, entirely word-parallel — 64 encodes collapse to
/// a 7-step ripple-carry over the planes.
///
/// Per lane: non-negative values encode identically; a negative value `v`
/// becomes sign bit + magnitude `-v = !v + 1`, computed bitwise with the
/// sign plane doubling as both the lane-complement mask and the injected
/// `+1` carry.  The carry that survives bit 6 is set exactly for `v = -128`
/// lanes (every complemented magnitude bit was 1), which sign-magnitude
/// saturates to magnitude 127 — matching [`crate::sm::to_sign_magnitude`].
#[inline]
fn sm_planes_from_tc(tc: &[u64; WORD_BITS]) -> [u64; WORD_BITS] {
    let neg = tc[7];
    let mut sm = [0u64; WORD_BITS];
    let mut carry = neg;
    for b in 0..7 {
        let inverted = tc[b] ^ neg;
        sm[b] = inverted ^ carry;
        carry &= inverted;
    }
    for plane in &mut sm[..7] {
        *plane |= carry;
    }
    sm[7] = neg;
    sm
}

/// Extracts `width` bits of `plane` starting at absolute bit `start`,
/// right-aligned.  `start + width` must not exceed the packed bit length.
#[inline]
fn window(plane: &[u64], start: usize, width: usize) -> u64 {
    debug_assert!((1..=WORD_LEN).contains(&width));
    let word = start / WORD_LEN;
    let offset = start % WORD_LEN;
    let mut bits = plane[word] >> offset;
    let available = WORD_LEN - offset;
    if width > available {
        bits |= plane[word + 1] << available;
    }
    if width < WORD_LEN {
        bits &= (1u64 << width) - 1;
    }
    bits
}

/// Mask selecting the least-significant bit of every `segment`-bit lane of a
/// `u64`.  `segment` must divide 64 (i.e. be a power of two ≤ 64).
#[inline]
fn segment_lsb_mask(segment: usize) -> u64 {
    match segment {
        1 => u64::MAX,
        2 => 0x5555_5555_5555_5555,
        4 => 0x1111_1111_1111_1111,
        8 => 0x0101_0101_0101_0101,
        16 => 0x0001_0001_0001_0001,
        32 => 0x0000_0001_0000_0001,
        64 => 1,
        _ => unreachable!("segment width must divide 64"),
    }
}

/// OR-folds each aligned `segment`-bit lane of `word` into its lane LSB: the
/// result has the lane LSB set iff the lane held any `1` bit.  Exact for
/// every lane because the shift subset-sums cover `1..segment` and never
/// reach `segment`, so no bit crosses a lane boundary into a *lower* lane's
/// LSB position.
#[inline]
fn nonzero_segments(word: u64, segment: usize) -> u64 {
    let mut x = word;
    let mut shift = segment / 2;
    while shift > 0 {
        x |= x >> shift;
        shift /= 2;
    }
    x & segment_lsb_mask(segment)
}

/// Bitplanes of a single weight group (≤ 64 elements): one `u64` per bit
/// column, both a standalone fast kernel (Bit-Flip candidate screening) and
/// the unit [`BitplaneTensor`] windows decompose into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPlanes {
    planes: [u64; WORD_BITS],
    len: usize,
}

impl GroupPlanes {
    /// Packs a group of at most 64 values under `encoding`.
    ///
    /// # Panics
    ///
    /// Panics if `group.len() > 64` — a group must fit one plane word (the
    /// same limit as [`crate::bits::pack_column`]).
    pub fn pack(group: &[i8], encoding: Encoding) -> Self {
        assert!(
            group.len() <= WORD_LEN,
            "a packed group holds at most 64 weights"
        );
        let mut bytes = [0u8; WORD_LEN];
        for (slot, &value) in bytes.iter_mut().zip(group) {
            *slot = encoding.encode(value);
        }
        let mut planes = [0u64; WORD_BITS];
        for block in 0..group.len().div_ceil(WORD_BITS) {
            let x = u64::from_le_bytes(
                bytes[block * 8..block * 8 + 8]
                    .try_into()
                    .expect("8-byte block"),
            );
            if x == 0 {
                continue;
            }
            let col_bytes = transpose8(x).to_le_bytes();
            for (b, plane) in planes.iter_mut().enumerate() {
                *plane |= u64::from(col_bytes[b]) << (block * 8);
            }
        }
        Self {
            planes,
            len: group.len(),
        }
    }

    /// Builds group planes directly from already-windowed plane words.
    #[inline]
    fn from_words(planes: [u64; WORD_BITS], len: usize) -> Self {
        Self { planes, len }
    }

    /// Number of elements in the packed group.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the group holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed bit-column `bit` (LSB of the word = first element) —
    /// identical to [`crate::bits::pack_column`] on the original group.
    #[inline]
    pub fn plane(&self, bit: usize) -> u64 {
        self.planes[bit]
    }

    /// All eight packed bit-columns, LSB plane first.
    #[inline]
    pub fn planes(&self) -> &[u64; WORD_BITS] {
        &self.planes
    }

    /// The zero-column index of the group: bit `b` set iff column `b` is
    /// non-zero — identical to [`crate::bits::nonzero_column_mask`].
    #[inline]
    pub fn nonzero_column_mask(&self) -> u8 {
        let mut mask = 0u8;
        for (b, &plane) in self.planes.iter().enumerate() {
            if plane != 0 {
                mask |= 1 << b;
            }
        }
        mask
    }

    /// Number of elements whose bit `bit` is set (the column population).
    #[inline]
    pub fn population(&self, bit: usize) -> u32 {
        self.planes[bit].count_ones()
    }

    /// OR of the planes **outside** `allowed`: bit `i` of the result is set
    /// iff element `i` has at least one bit in a column the mask disallows.
    /// These are exactly the elements a Bit-Flip projection onto `allowed`
    /// must modify; all other elements project to themselves.
    #[inline]
    pub fn outside_mask(&self, allowed: u8) -> u64 {
        let mut dirty = 0u64;
        for (b, &plane) in self.planes.iter().enumerate() {
            if (allowed >> b) & 1 == 0 {
                dirty |= plane;
            }
        }
        dirty
    }
}

/// A whole tensor's worth of bitplanes under **both** encodings, packed once
/// and shared by every analysis kernel (see the module docs for the layout
/// and the tail-masking invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitplaneTensor {
    len: usize,
    group_size: usize,
    tc: [Vec<u64>; WORD_BITS],
    sm: [Vec<u64>; WORD_BITS],
}

impl BitplaneTensor {
    /// Packs `data` into bitplanes with group windows of `group_size`
    /// elements.
    ///
    /// `data` is normally the padded backing store of an extracted `Groups`
    /// (every group zero-padded to `group_size`), so that group `i` occupies
    /// bits `i*group_size..(i+1)*group_size` of every plane.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= group_size <= 64`: a group window must fit one
    /// plane word, the same limit the scalar `pack_column` enforces.
    pub fn from_slice(data: &[i8], group_size: usize) -> Self {
        assert!(
            (1..=WORD_LEN).contains(&group_size),
            "bitplane group windows hold at most 64 weights (got {group_size})"
        );
        let words = data.len().div_ceil(WORD_LEN);
        let mut tc: [Vec<u64>; WORD_BITS] = std::array::from_fn(|_| vec![0u64; words]);
        let mut sm: [Vec<u64>; WORD_BITS] = std::array::from_fn(|_| vec![0u64; words]);
        let mut tc_bytes = [0u8; WORD_LEN];
        for (word, chunk) in data.chunks(WORD_LEN).enumerate() {
            if chunk.len() < WORD_LEN {
                // Masked tail: unused byte slots must encode zero so the
                // plane bits beyond `len` stay clear.
                tc_bytes = [0u8; WORD_LEN];
            }
            for (slot, &value) in tc_bytes.iter_mut().zip(chunk) {
                *slot = value as u8;
            }
            // Only the two's-complement bytes are transposed; the
            // sign-magnitude planes are derived from them word-parallel.
            let tc_word = transpose_block(&tc_bytes);
            let sm_word = sm_planes_from_tc(&tc_word);
            for b in 0..WORD_BITS {
                tc[b][word] = tc_word[b];
                sm[b][word] = sm_word[b];
            }
        }
        Self {
            len: data.len(),
            group_size,
            tc,
            sm,
        }
    }

    /// Number of packed elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The group-window size the tensor was packed for.
    #[inline]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of group windows (`len.div_ceil(group_size)`).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.len.div_ceil(self.group_size)
    }

    /// Number of 64-bit words per plane.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.len.div_ceil(WORD_LEN)
    }

    #[inline]
    fn encoded(&self, encoding: Encoding) -> &[Vec<u64>; WORD_BITS] {
        match encoding {
            Encoding::TwosComplement => &self.tc,
            Encoding::SignMagnitude => &self.sm,
        }
    }

    /// Bitplane `bit` under `encoding` (bit `i` of word `w` = bit `bit` of
    /// element `64*w + i`).
    #[inline]
    pub fn plane(&self, encoding: Encoding, bit: usize) -> &[u64] {
        &self.encoded(encoding)[bit]
    }

    /// Total number of `1` bits across all eight planes — the tensor's
    /// set-bit count under `encoding`, at one popcount per plane word.
    pub fn count_ones(&self, encoding: Encoding) -> u64 {
        self.encoded(encoding)
            .iter()
            .flat_map(|plane| plane.iter())
            .map(|&word| u64::from(word.count_ones()))
            .sum()
    }

    /// Number of non-zero elements (an element is zero iff every
    /// two's-complement bit is zero, which holds iff its sign-magnitude
    /// encoding is zero too).
    pub fn nonzero_elements(&self) -> u64 {
        let mut total = 0u64;
        for word in 0..self.num_words() {
            let mut any = 0u64;
            for plane in &self.tc {
                any |= plane[word];
            }
            total += u64::from(any.count_ones());
        }
        total
    }

    /// Number of elements in group window `group` (only the final window can
    /// be short).
    #[inline]
    fn group_width(&self, group: usize) -> usize {
        (self.len - group * self.group_size).min(self.group_size)
    }

    /// The bits of column `bit` inside group window `group`, right-aligned
    /// (LSB = first element of the group) — identical to
    /// [`crate::bits::pack_column`] on the group's elements.
    #[inline]
    pub fn group_column(&self, encoding: Encoding, group: usize, bit: usize) -> u64 {
        window(
            &self.encoded(encoding)[bit],
            group * self.group_size,
            self.group_width(group),
        )
    }

    /// The zero-column index of group window `group`: bit `b` set iff
    /// column `b` is non-zero — identical to
    /// [`crate::bits::nonzero_column_mask`] on the group's elements.
    #[inline]
    pub fn group_mask(&self, encoding: Encoding, group: usize) -> u8 {
        let planes = self.encoded(encoding);
        let start = group * self.group_size;
        let width = self.group_width(group);
        let mut mask = 0u8;
        for (b, plane) in planes.iter().enumerate() {
            if window(plane, start, width) != 0 {
                mask |= 1 << b;
            }
        }
        mask
    }

    /// All eight columns of group window `group` as [`GroupPlanes`].
    #[inline]
    pub fn group_planes(&self, encoding: Encoding, group: usize) -> GroupPlanes {
        let planes = self.encoded(encoding);
        let start = group * self.group_size;
        let width = self.group_width(group);
        let mut words = [0u64; WORD_BITS];
        for (b, plane) in planes.iter().enumerate() {
            words[b] = window(plane, start, width);
        }
        GroupPlanes::from_words(words, width)
    }

    /// Total number of non-zero bit columns over all group windows — the
    /// quantity BCS payload sizing and column-sparsity statistics need.
    ///
    /// For group sizes dividing 64 this runs entirely on whole plane words
    /// (OR-fold each word's lanes into indicators, popcount); otherwise it
    /// falls back to per-group masks.
    pub fn total_nonzero_columns(&self, encoding: Encoding) -> u64 {
        let g = self.group_size;
        if WORD_LEN % g == 0 {
            let mut total = 0u64;
            for plane in self.encoded(encoding) {
                for &word in plane {
                    if word != 0 {
                        total += u64::from(nonzero_segments(word, g).count_ones());
                    }
                }
            }
            total
        } else {
            (0..self.num_groups())
                .map(|i| u64::from(self.group_mask(encoding, i).count_ones()))
                .sum()
        }
    }

    /// Per-group non-zero column counts (0..=8 each), in group order —
    /// the per-group cycle costs of the BCE array.
    ///
    /// For group sizes ≥ 4 that divide 64, the eight per-plane indicator
    /// words of each plane word are summed with a single `u64` addition per
    /// plane: every `g`-bit lane accumulates its group's count (≤ 8, so
    /// lanes of ≥ 4 bits never carry into a neighbour).
    pub fn group_nonzero_column_counts(&self, encoding: Encoding) -> Vec<u32> {
        let g = self.group_size;
        let n = self.num_groups();
        let mut counts = Vec::with_capacity(n);
        if WORD_LEN % g == 0 && g >= 4 {
            let planes = self.encoded(encoding);
            let lane = if g == WORD_LEN {
                u64::MAX
            } else {
                (1u64 << g) - 1
            };
            for word in 0..self.num_words() {
                let mut acc = 0u64;
                for plane in planes {
                    acc += nonzero_segments(plane[word], g);
                }
                for segment in 0..WORD_LEN / g {
                    if counts.len() == n {
                        break;
                    }
                    counts.push(((acc >> (segment * g)) & lane) as u32);
                }
            }
        } else {
            for i in 0..n {
                counts.push(self.group_mask(encoding, i).count_ones());
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ENCODINGS: [Encoding; 2] = [Encoding::TwosComplement, Encoding::SignMagnitude];

    /// Bit-by-bit reference for the 8×8 transpose.
    fn transpose8_naive(x: u64) -> u64 {
        let mut out = 0u64;
        for row in 0..8 {
            for col in 0..8 {
                if (x >> (row * 8 + col)) & 1 == 1 {
                    out |= 1 << (col * 8 + row);
                }
            }
        }
        out
    }

    /// Scalar reference for a packed column (no GroupPlanes involvement —
    /// `bits::pack_column` is itself a wrapper over the packed path now).
    fn naive_column(data: &[i8], start: usize, width: usize, enc: Encoding, bit: usize) -> u64 {
        let mut word = 0u64;
        for i in 0..width {
            if (enc.encode(data[start + i]) >> bit) & 1 == 1 {
                word |= 1 << i;
            }
        }
        word
    }

    /// Scalar reference for the zero-column index (independent of the packed
    /// kernels).
    fn naive_mask(group: &[i8], enc: Encoding) -> u8 {
        group.iter().fold(0u8, |mask, &v| mask | enc.encode(v))
    }

    #[test]
    fn transpose8_matches_naive_on_structured_patterns() {
        for x in [
            0u64,
            u64::MAX,
            0x0123_4567_89AB_CDEF,
            0x8040_2010_0804_0201,
            0xFF00_FF00_FF00_FF00,
            0x8000_0000_0000_0001,
        ] {
            assert_eq!(transpose8(x), transpose8_naive(x), "x={x:#018x}");
        }
    }

    #[test]
    fn group_planes_match_naive_columns() {
        let group: Vec<i8> = (-32..32).collect();
        for enc in ENCODINGS {
            let packed = GroupPlanes::pack(&group, enc);
            for b in 0..WORD_BITS {
                assert_eq!(
                    packed.plane(b),
                    naive_column(&group, 0, group.len(), enc, b),
                    "bit {b}"
                );
            }
            assert_eq!(packed.nonzero_column_mask(), naive_mask(&group, enc));
        }
    }

    #[test]
    fn outside_mask_flags_exactly_the_disallowed_elements() {
        let group = [3i8, 0, -4, 8, 0, 1];
        let packed = GroupPlanes::pack(&group, Encoding::SignMagnitude);
        // Allow only columns 0 and 1: elements with any bit >= 2 are dirty.
        let dirty = packed.outside_mask(0b0000_0011);
        for (i, &v) in group.iter().enumerate() {
            let enc = Encoding::SignMagnitude.encode(v);
            let expect = enc & !0b0000_0011 != 0;
            assert_eq!((dirty >> i) & 1 == 1, expect, "element {i} ({v})");
        }
    }

    #[test]
    fn tail_bits_beyond_len_are_zero() {
        let data = vec![-1i8; 70]; // all bits set in TC; 70 % 64 = 6
        let planes = BitplaneTensor::from_slice(&data, 8);
        assert_eq!(planes.num_words(), 2);
        for b in 0..WORD_BITS {
            let tail = planes.plane(Encoding::TwosComplement, b)[1];
            assert_eq!(tail, (1u64 << 6) - 1, "bit {b} tail must be masked");
        }
        assert_eq!(planes.count_ones(Encoding::TwosComplement), 70 * 8);
        assert_eq!(planes.nonzero_elements(), 70);
    }

    #[test]
    fn derived_sign_magnitude_planes_match_encode_for_every_value() {
        // Exhaustive over i8, exercising the ripple-carry negation and the
        // -128 saturation lane fix-up.
        let data: Vec<i8> = (i8::MIN..=i8::MAX).collect();
        let planes = BitplaneTensor::from_slice(&data, 8);
        for (i, &v) in data.iter().enumerate() {
            for enc in ENCODINGS {
                let byte = enc.encode(v);
                for b in 0..WORD_BITS {
                    let bit = (planes.plane(enc, b)[i / WORD_LEN] >> (i % WORD_LEN)) & 1;
                    assert_eq!(bit == 1, (byte >> b) & 1 == 1, "v={v} bit={b}");
                }
            }
        }
    }

    #[test]
    fn group_windows_straddle_word_boundaries() {
        // Group size 24 does not divide 64: group 2 spans bits 48..72,
        // straddling the word boundary.
        let data: Vec<i8> = (0..96).map(|i| (i % 17) as i8 - 8).collect();
        let planes = BitplaneTensor::from_slice(&data, 24);
        for enc in ENCODINGS {
            for g in 0..planes.num_groups() {
                let start = g * 24;
                let width = (data.len() - start).min(24);
                for b in 0..WORD_BITS {
                    assert_eq!(
                        planes.group_column(enc, g, b),
                        naive_column(&data, start, width, enc, b),
                        "group {g} bit {b}"
                    );
                }
                assert_eq!(
                    planes.group_mask(enc, g),
                    naive_mask(&data[start..start + width], enc),
                    "group {g} mask"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn transpose8_matches_naive(x in any::<u64>()) {
            prop_assert_eq!(transpose8(x), transpose8_naive(x));
        }

        #[test]
        fn transpose8_is_an_involution(x in any::<u64>()) {
            prop_assert_eq!(transpose8(transpose8(x)), x);
        }

        #[test]
        fn planes_match_scalar_columns(
            data in proptest::collection::vec(-128i8..=127, 0..200),
            g in 1usize..=64,
        ) {
            let planes = BitplaneTensor::from_slice(&data, g);
            prop_assert_eq!(planes.num_groups(), data.len().div_ceil(g));
            for enc in ENCODINGS {
                let mut total_nonzero = 0u64;
                let mut counts = Vec::new();
                for gi in 0..planes.num_groups() {
                    let start = gi * g;
                    let width = (data.len() - start).min(g);
                    let group = &data[start..start + width];
                    let mask = naive_mask(group, enc);
                    prop_assert_eq!(planes.group_mask(enc, gi), mask);
                    for b in 0..WORD_BITS {
                        prop_assert_eq!(
                            planes.group_column(enc, gi, b),
                            naive_column(&data, start, width, enc, b)
                        );
                    }
                    let gp = planes.group_planes(enc, gi);
                    prop_assert_eq!(gp.len(), width);
                    prop_assert_eq!(gp.nonzero_column_mask(), mask);
                    total_nonzero += u64::from(mask.count_ones());
                    counts.push(mask.count_ones());
                }
                prop_assert_eq!(planes.total_nonzero_columns(enc), total_nonzero);
                prop_assert_eq!(planes.group_nonzero_column_counts(enc), counts);
                let scalar_ones: u64 = data
                    .iter()
                    .map(|&v| u64::from(enc.encode(v).count_ones()))
                    .sum();
                prop_assert_eq!(planes.count_ones(enc), scalar_ones);
            }
            let nonzero = data.iter().filter(|&&v| v != 0).count() as u64;
            prop_assert_eq!(planes.nonzero_elements(), nonzero);
        }

        #[test]
        fn group_planes_equal_tensor_windows(
            data in proptest::collection::vec(-128i8..=127, 1..130),
        ) {
            for g in [8usize, 16, 32] {
                let planes = BitplaneTensor::from_slice(&data, g);
                for enc in ENCODINGS {
                    for gi in 0..planes.num_groups() {
                        let start = gi * g;
                        let width = (data.len() - start).min(g);
                        let direct = GroupPlanes::pack(&data[start..start + width], enc);
                        prop_assert_eq!(planes.group_planes(enc, gi), direct);
                    }
                }
            }
        }
    }
}
