//! Property tests for the disk tier: arbitrary values round-trip
//! byte-identically across reopen, and arbitrary corruption (byte flips,
//! truncation) is a miss that recomputes — never a panic or an error
//! surfaced to the caller.

use bitwave_core::digest::Digest;
use bitwave_store::{StoreConfig, StoreOutcome, StringCodec, TieredStore};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique store root per drawn case (cases of one test run sequentially,
/// but distinct tests run in parallel threads).
fn temp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "bitwave-store-prop-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Arbitrary printable payloads of assorted sizes (including empty).
fn payload_from(chars: &[u8]) -> String {
    chars
        .iter()
        .map(|&b| char::from(b'\x20' + (b % 95)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_values_roundtrip_across_reopen_byte_identically(
        raw_payloads in vec(vec(0u8..=255, 0..512), 1..8),
        seed in 0u64..u64::MAX,
    ) {
        let root = temp_root("roundtrip");
        let config = StoreConfig::default().with_root(&root).with_mem_entries(64);
        let entries: Vec<(Digest, String)> = raw_payloads
            .iter()
            .enumerate()
            .map(|(i, raw)| {
                let key = Digest::of_bytes(format!("k-{seed}-{i}").as_bytes());
                (key, payload_from(raw))
            })
            .collect();

        {
            let store = TieredStore::<StringCodec>::new("prop", &config).unwrap();
            for (key, payload) in &entries {
                let (stored, outcome) = store
                    .get_or_compute(*key, || Ok::<_, String>(payload.clone()), |e| e)
                    .unwrap();
                prop_assert_eq!(outcome, StoreOutcome::Miss);
                prop_assert_eq!(&*stored, payload);
            }
        }

        // Reopen (fresh process) and read every entry back byte-identically.
        let reopened = TieredStore::<StringCodec>::new("prop", &config).unwrap();
        prop_assert_eq!(reopened.disk_entries(), entries.len() as u64);
        for (key, payload) in &entries {
            let (replayed, outcome) = reopened
                .get_or_compute(*key, || panic!("must replay from disk"), |e: String| e)
                .unwrap();
            prop_assert_eq!(outcome, StoreOutcome::Disk);
            prop_assert_eq!(&*replayed, payload, "disk replay must be byte-identical");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn arbitrary_corruption_is_a_miss_that_recomputes(
        raw_payload in vec(0u8..=255, 1..256),
        flip_offset in 0usize..4096,
        flip_mask in 1u8..=255,
    ) {
        let root = temp_root("flip");
        let config = StoreConfig::default().with_root(&root);
        let payload = payload_from(&raw_payload);
        let key = Digest::of_bytes(b"corruptible");
        let store = TieredStore::<StringCodec>::new("prop", &config).unwrap();
        store
            .get_or_compute(key, || Ok::<_, String>(payload.clone()), |e| e)
            .unwrap();

        // Flip one byte anywhere in the file (header or payload).
        let path = root.join("prop").join(key.to_hex());
        let mut raw = std::fs::read(&path).unwrap();
        let at = flip_offset % raw.len();
        raw[at] ^= flip_mask;
        std::fs::write(&path, &raw).unwrap();

        store.clear_memory();
        let (value, outcome) = store
            .get_or_compute(key, || Ok::<_, String>(payload.clone()), |e| e)
            .unwrap();
        prop_assert_eq!(outcome, StoreOutcome::Miss, "corruption must be a silent miss");
        prop_assert_eq!(&*value, &payload);
        prop_assert_eq!(store.stats().quarantined(), 1);
        // The recompute rewrote a valid entry; a restart replays it.
        store.clear_memory();
        let (_, outcome) = store
            .get_or_compute(key, || panic!("rewritten"), |e: String| e)
            .unwrap();
        prop_assert_eq!(outcome, StoreOutcome::Disk);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn arbitrary_truncation_is_a_miss_that_recomputes(
        raw_payload in vec(0u8..=255, 1..256),
        keep_fraction in 0usize..100,
    ) {
        let root = temp_root("truncate");
        let config = StoreConfig::default().with_root(&root);
        let payload = payload_from(&raw_payload);
        let key = Digest::of_bytes(b"truncatable");
        let store = TieredStore::<StringCodec>::new("prop", &config).unwrap();
        store
            .get_or_compute(key, || Ok::<_, String>(payload.clone()), |e| e)
            .unwrap();

        let path = root.join("prop").join(key.to_hex());
        let raw = std::fs::read(&path).unwrap();
        let keep = raw.len() * keep_fraction / 100;
        std::fs::write(&path, &raw[..keep]).unwrap();

        store.clear_memory();
        let (value, outcome) = store
            .get_or_compute(key, || Ok::<_, String>(payload.clone()), |e| e)
            .unwrap();
        prop_assert_eq!(outcome, StoreOutcome::Miss, "truncation must be a silent miss");
        prop_assert_eq!(&*value, &payload);
        let _ = std::fs::remove_dir_all(&root);
    }
}
