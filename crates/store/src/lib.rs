//! # bitwave-store
//!
//! A **tiered, persistent, content-addressed store** — the one caching
//! substrate behind the repository's three formerly independent caches:
//! the serve tier's report cache, its shared weight store, and the DSE
//! memo cache.
//!
//! * [`memory::MemoryTier`] — a sharded LRU of `Arc`-shared values with
//!   byte-size accounting and **single-flight** computation coalescing
//!   (concurrent lookups of one key run the computation once).  Usable on
//!   its own for values that should never touch disk (the weight store:
//!   weights are cheap to regenerate and big on disk).
//! * [`disk::DiskTier`] — one file per entry at `<root>/<op>/<digest>`
//!   with a versioned header, length and FNV-1a/128 checksum; atomic
//!   write-via-rename; fully verified reads.  Corrupt, truncated or
//!   version-mismatched entries are **quarantined and treated as misses —
//!   never errors**.
//! * [`TieredStore`] — memory over optional disk, glued by a
//!   [`codec::StoreCodec`] that serializes each value **once** to bytes,
//!   so replays from either tier are byte-identical.
//! * [`config::StoreConfig`] — root directory and per-tier capacities;
//!   persistence is **off by default**, so a default-configured store is
//!   indistinguishable from the bounded in-memory caches it replaced.
//! * [`claim::ClaimLedger`] — a TTL-expiring cross-process work-claim
//!   ledger (`create_new` claim files) that turns a shared store root into
//!   a work-stealing queue for sharded sweeps.
//!
//! ```
//! use bitwave_core::digest::Digest;
//! use bitwave_store::{StoreConfig, StoreOutcome, StringCodec, TieredStore};
//!
//! let root = std::env::temp_dir().join(format!("bitwave-store-doc-{}", std::process::id()));
//! let config = StoreConfig::default().with_root(&root);
//! let key = Digest::of_bytes(b"request");
//!
//! let store = TieredStore::<StringCodec>::new("evaluate", &config).unwrap();
//! let (body, outcome) = store
//!     .get_or_compute(key, || Ok::<_, String>("expensive report".to_string()), |e| e)
//!     .unwrap();
//! assert_eq!(outcome, StoreOutcome::Miss);
//!
//! // A fresh store over the same root — i.e. a restarted process — replays
//! // the entry from disk, byte-identically, without recomputing.
//! let restarted = TieredStore::<StringCodec>::new("evaluate", &config).unwrap();
//! let (replayed, outcome) = restarted
//!     .get_or_compute(key, || panic!("must not recompute"), |e: String| e)
//!     .unwrap();
//! assert_eq!(outcome, StoreOutcome::Disk);
//! assert_eq!(*replayed, *body);
//! # let _ = std::fs::remove_dir_all(&root);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claim;
pub mod codec;
pub mod config;
pub mod disk;
pub mod memory;
pub mod stats;
pub mod tiered;

pub use claim::{ClaimLedger, ClaimOutcome};
pub use codec::{CodecError, JsonCodec, StoreCodec, StringCodec};
pub use config::StoreConfig;
pub use disk::{DiskTier, FORMAT_VERSION, QUARANTINE_DIR};
pub use memory::{FillOrigin, MemoryTier, MemoryTierConfig, TryPeek};
pub use stats::{StoreOutcome, StoreStats};
pub use tiered::TieredStore;
