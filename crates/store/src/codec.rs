//! Value codecs: how stored values become bytes and come back.
//!
//! A [`crate::TieredStore`] serializes each value **once** on the cold path;
//! the encoded bytes drive the memory tier's byte accounting and the disk
//! tier's payload, so a value read back from either tier replays
//! byte-identically.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::marker::PhantomData;

/// A codec failure (encode or decode).  Decode failures on the disk path are
/// treated as cache misses, never surfaced to callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Serializes store values to bytes and replays them byte-identically.
pub trait StoreCodec: Send + Sync + 'static {
    /// The stored value type.
    type Value: Send + Sync + 'static;

    /// Encodes a value to its canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when the value cannot be serialized.
    fn encode(value: &Self::Value) -> Result<Vec<u8>, CodecError>;

    /// Decodes a value from bytes previously produced by
    /// [`StoreCodec::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for malformed bytes; the store treats this as
    /// a miss and quarantines the entry.
    fn decode(bytes: &[u8]) -> Result<Self::Value, CodecError>;

    /// Byte weight of a value for memory-tier accounting.  The default
    /// materializes the encoded form and measures it; codecs whose encoded
    /// size is knowable without copying (e.g. [`StringCodec`]) override it,
    /// so memory-only stores never pay the encode just to weigh a value.
    fn byte_weight(value: &Self::Value) -> u64 {
        Self::encode(value).map_or(0, |bytes| bytes.len() as u64)
    }
}

/// Identity codec for already-serialized string payloads (e.g. the serve
/// tier's JSON response bodies): encode is a byte copy, decode validates
/// UTF-8.  Replays are trivially byte-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct StringCodec;

impl StoreCodec for StringCodec {
    type Value = String;

    fn encode(value: &String) -> Result<Vec<u8>, CodecError> {
        Ok(value.as_bytes().to_vec())
    }

    fn decode(bytes: &[u8]) -> Result<String, CodecError> {
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|e| CodecError::new(format!("invalid UTF-8 payload: {e}")))
    }

    fn byte_weight(value: &String) -> u64 {
        value.len() as u64
    }
}

/// JSON codec for any serde value.  The vendored serde preserves struct
/// field order and renders floats with their shortest round-trip
/// representation, so `encode(decode(bytes)) == bytes` for bytes this codec
/// produced — decoded values re-serialize byte-identically.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec<T>(PhantomData<T>);

impl<T> StoreCodec for JsonCodec<T>
where
    T: Serialize + Deserialize + Send + Sync + 'static,
{
    type Value = T;

    fn encode(value: &T) -> Result<Vec<u8>, CodecError> {
        serde_json::to_string(value)
            .map(String::into_bytes)
            .map_err(|e| CodecError::new(e.to_string()))
    }

    fn decode(bytes: &[u8]) -> Result<T, CodecError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| CodecError::new(format!("invalid UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| CodecError::new(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_codec_roundtrips_and_rejects_bad_utf8() {
        let encoded = StringCodec::encode(&"{\"a\":1}".to_string()).unwrap();
        assert_eq!(StringCodec::decode(&encoded).unwrap(), "{\"a\":1}");
        assert!(StringCodec::decode(&[0xff, 0xfe]).is_err());
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Probe {
        name: String,
        ratio: f64,
        count: usize,
    }

    #[test]
    fn json_codec_roundtrips_byte_identically() {
        let probe = Probe {
            name: "conv1".to_string(),
            ratio: 2.875,
            count: 21,
        };
        let encoded = JsonCodec::<Probe>::encode(&probe).unwrap();
        let decoded = JsonCodec::<Probe>::decode(&encoded).unwrap();
        assert_eq!(decoded, probe);
        let re_encoded = JsonCodec::<Probe>::encode(&decoded).unwrap();
        assert_eq!(
            re_encoded, encoded,
            "decoded values must replay byte-identically"
        );
        assert!(JsonCodec::<Probe>::decode(b"{not json").is_err());
    }
}
