//! Store outcomes and monotonic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// How a [`crate::TieredStore::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The memory tier held a ready entry; stored bytes were replayed.
    Hit,
    /// The memory tier missed but the disk tier held a verified entry; it
    /// was promoted into the memory tier and replayed.
    Disk,
    /// Both tiers missed; this call ran the computation.
    Miss,
    /// Another in-flight call was computing the key; this call waited and
    /// shared its result.
    Coalesced,
}

impl StoreOutcome {
    /// Header-friendly form (the serve tier's `X-Bitwave-Cache` values).
    pub fn as_str(self) -> &'static str {
        match self {
            StoreOutcome::Hit => "hit",
            StoreOutcome::Disk => "disk",
            StoreOutcome::Miss => "miss",
            StoreOutcome::Coalesced => "coalesced",
        }
    }
}

/// Monotonic per-store counters (exported by the serve tier's `/metrics`).
#[derive(Debug, Default)]
pub struct StoreStats {
    pub(crate) hits: AtomicU64,
    pub(crate) disk_hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) disk_write_errors: AtomicU64,
}

impl StoreStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request that shared another in-flight computation's result
    /// without itself entering the store — how the serve tier's
    /// cross-request batching keeps the per-op accounting invariant
    /// (`hits + misses + coalesced + disk_hits == requests`) when a rider
    /// is satisfied by the event loop's fan-out rather than by blocking on
    /// the store's condvar.
    pub fn note_coalesced(&self) {
        Self::bump(&self.coalesced);
    }

    /// Memory-tier hits (ready entry replayed).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Disk-tier hits (verified entry promoted into memory and replayed).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Misses (the computation ran).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Calls that waited on another caller's in-flight computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Memory-tier entries evicted by the LRU policy.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Disk entries quarantined (corrupt, truncated, version-mismatched or
    /// undecodable — each treated as a miss, never an error).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Disk writes that failed (best-effort persistence; the value is still
    /// served from memory).
    pub fn disk_write_errors(&self) -> u64 {
        self.disk_write_errors.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_render_their_header_values() {
        assert_eq!(StoreOutcome::Hit.as_str(), "hit");
        assert_eq!(StoreOutcome::Disk.as_str(), "disk");
        assert_eq!(StoreOutcome::Miss.as_str(), "miss");
        assert_eq!(StoreOutcome::Coalesced.as_str(), "coalesced");
    }

    #[test]
    fn counters_start_at_zero_and_bump() {
        let stats = StoreStats::default();
        assert_eq!(stats.hits(), 0);
        assert_eq!(stats.disk_hits(), 0);
        assert_eq!(stats.misses(), 0);
        assert_eq!(stats.coalesced(), 0);
        assert_eq!(stats.evictions(), 0);
        assert_eq!(stats.quarantined(), 0);
        assert_eq!(stats.disk_write_errors(), 0);
        StoreStats::bump(&stats.hits);
        assert_eq!(stats.hits(), 1);
    }
}
