//! The tiered content-addressed store: memory over optional disk.

use crate::codec::StoreCodec;
use crate::config::StoreConfig;
use crate::disk::{DiskMiss, DiskTier};
use crate::memory::{FillOrigin, MemoryTier, MemoryTierConfig, TryPeek};
use crate::stats::{StoreOutcome, StoreStats};
use bitwave_core::digest::Digest;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// A content-addressed store with a sharded single-flight LRU memory tier
/// and an optional checksummed disk tier.
///
/// Values are addressed by [`Digest`] keys under one `op` namespace (the
/// disk layout is `<root>/<op>/<digest>`).  The codec `C` serializes each
/// value once on the cold path — the encoded bytes drive memory byte
/// accounting, the disk payload, and byte-identical replay.
///
/// Lookup order: memory (hit) → disk (verified read, promoted into memory)
/// → compute (encoded, cached in memory, written to disk best-effort).
/// Concurrent lookups of one key coalesce onto a single computation.  Disk
/// problems are **never errors**: corrupt, truncated or version-mismatched
/// entries are quarantined and treated as misses, and a failed write leaves
/// the value served from memory.
pub struct TieredStore<C: StoreCodec> {
    op: String,
    memory: MemoryTier<C::Value>,
    disk: RwLock<Option<DiskTier>>,
    disk_bytes_cap: u64,
    stats: Arc<StoreStats>,
}

impl<C: StoreCodec> fmt::Debug for TieredStore<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TieredStore")
            .field("op", &self.op)
            .field("mem_entries", &self.memory.len())
            .field("persistent", &self.persistent())
            .finish()
    }
}

impl<C: StoreCodec> TieredStore<C> {
    /// Creates the store for `op` under `config`, opening the disk tier
    /// when a root is configured.
    ///
    /// # Errors
    ///
    /// Propagates disk-tier directory creation/scan failures.
    pub fn new(op: &str, config: &StoreConfig) -> io::Result<Self> {
        let stats = Arc::new(StoreStats::default());
        let memory = MemoryTier::with_stats(
            MemoryTierConfig {
                max_entries: config.mem_entries,
                max_bytes: config.mem_bytes,
                shards: 0,
            },
            Arc::clone(&stats),
        );
        let disk = match &config.root {
            Some(root) => Some(DiskTier::open(root, op, config.disk_bytes)?),
            None => None,
        };
        Ok(Self {
            op: op.to_string(),
            memory,
            disk: RwLock::new(disk),
            disk_bytes_cap: config.disk_bytes,
            stats,
        })
    }

    /// A memory-only store bounded to `max_entries`.
    pub fn memory_only(op: &str, max_entries: usize) -> Self {
        match Self::new(
            op,
            &StoreConfig {
                root: None,
                mem_entries: max_entries,
                ..StoreConfig::default()
            },
        ) {
            Ok(store) => store,
            Err(_) => unreachable!("memory-only stores cannot fail to open"),
        }
    }

    /// Attaches (or re-roots) a disk tier after construction — how the
    /// process-wide DSE memo cache joins the serve tier's store root.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures; the store stays on its
    /// previous tier (or memory-only) when opening fails.
    pub fn persist(&self, root: &Path) -> io::Result<()> {
        let tier = DiskTier::open(root, &self.op, self.disk_bytes_cap)?;
        *self.disk_lock_mut() = Some(tier);
        Ok(())
    }

    /// The op namespace.
    pub fn op(&self) -> &str {
        &self.op
    }

    /// True when a disk tier is attached.
    pub fn persistent(&self) -> bool {
        self.disk_lock().is_some()
    }

    /// The shared counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Ready entries in the memory tier.
    pub fn mem_entries(&self) -> usize {
        self.memory.len()
    }

    /// Accounted bytes in the memory tier.
    pub fn mem_bytes(&self) -> u64 {
        self.memory.bytes()
    }

    /// Entry-count gauge of the disk tier (0 without one).
    pub fn disk_entries(&self) -> u64 {
        self.disk_lock().as_ref().map_or(0, DiskTier::entries)
    }

    /// Byte gauge of the disk tier (0 without one).
    pub fn disk_bytes(&self) -> u64 {
        self.disk_lock().as_ref().map_or(0, DiskTier::bytes)
    }

    /// Drops every memory-tier entry, keeping the disk tier — after this,
    /// lookups replay from disk exactly as a restarted process would.
    pub fn clear_memory(&self) {
        self.memory.clear();
    }

    fn disk_lock(&self) -> std::sync::RwLockReadGuard<'_, Option<DiskTier>> {
        self.disk
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn disk_lock_mut(&self) -> std::sync::RwLockWriteGuard<'_, Option<DiskTier>> {
        self.disk
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Reads and decodes `key` from the disk tier; verification or decode
    /// failures quarantine the entry and report a miss.
    fn disk_read(&self, key: Digest) -> Option<(C::Value, u64)> {
        let guard = self.disk_lock();
        let disk = guard.as_ref()?;
        match disk.read(key) {
            Ok(payload) => match C::decode(&payload) {
                Ok(value) => Some((value, payload.len() as u64)),
                Err(_) => {
                    disk.quarantine(key);
                    StoreStats::bump(&self.stats.quarantined);
                    None
                }
            },
            Err(DiskMiss::Absent) => None,
            Err(DiskMiss::Quarantined) => {
                StoreStats::bump(&self.stats.quarantined);
                None
            }
        }
    }

    fn disk_write(&self, key: Digest, payload: &[u8]) {
        let guard = self.disk_lock();
        if let Some(disk) = guard.as_ref() {
            if !disk.write(key, payload) {
                StoreStats::bump(&self.stats.disk_write_errors);
            }
        }
    }

    /// Looks `key` up through both tiers; on a full miss runs `compute`,
    /// encodes the value once, caches it in memory and persists it
    /// best-effort.  Concurrent calls for one key coalesce onto the first
    /// caller; a coalesced waiter that observes a failure receives
    /// `waiter_err` of the failure message.
    ///
    /// # Errors
    ///
    /// The computing caller's error is propagated as-is; nothing is cached.
    pub fn get_or_compute<E, F>(
        &self,
        key: Digest,
        compute: F,
        waiter_err: impl FnOnce(String) -> E,
    ) -> Result<(Arc<C::Value>, StoreOutcome), E>
    where
        F: FnOnce() -> Result<C::Value, E>,
        E: fmt::Display,
    {
        self.memory.get_or_fill(
            key,
            || {
                if let Some((value, bytes)) = self.disk_read(key) {
                    return Ok((value, bytes, FillOrigin::Disk));
                }
                let value = compute()?;
                if !self.persistent() {
                    // Memory-only: weigh the value without materializing
                    // the encoded form.
                    let weight = C::byte_weight(&value);
                    return Ok((value, weight, FillOrigin::Computed));
                }
                match C::encode(&value) {
                    Ok(encoded) => {
                        self.disk_write(key, &encoded);
                        Ok((value, encoded.len() as u64, FillOrigin::Computed))
                    }
                    // An unencodable value is still served and cached in
                    // memory (weight 0); it just cannot persist.
                    Err(_) => {
                        StoreStats::bump(&self.stats.disk_write_errors);
                        Ok((value, 0, FillOrigin::Computed))
                    }
                }
            },
            waiter_err,
        )
    }

    /// Replays `key` without computing: memory first, then the disk tier
    /// (promoting a verified entry into memory).  Uncounted in hit/miss
    /// stats, mirroring the serve tier's replay endpoint semantics; the
    /// returned [`StoreOutcome`] says which tier answered (`Hit` or
    /// `Disk`).
    pub fn get(&self, key: Digest) -> Option<(Arc<C::Value>, StoreOutcome)> {
        if let Some(value) = self.memory.peek(key) {
            return Some((value, StoreOutcome::Hit));
        }
        let (value, bytes) = self.disk_read(key)?;
        let value = Arc::new(value);
        self.memory.insert(key, Arc::clone(&value), bytes);
        Some((value, StoreOutcome::Disk))
    }

    /// Non-blocking replay: like [`get`](Self::get) but never waits on an
    /// in-flight computation — a pending key reports `None` and the caller
    /// decides how to wait (the serve tier's event loop must not block).
    /// Uncounted, mirroring `get`.
    pub fn try_get(&self, key: Digest) -> Option<(Arc<C::Value>, StoreOutcome)> {
        match self.memory.try_peek(key) {
            TryPeek::Ready(value) => Some((value, StoreOutcome::Hit)),
            TryPeek::Pending => None,
            TryPeek::Absent => {
                let (value, bytes) = self.disk_read(key)?;
                let value = Arc::new(value);
                self.memory.insert(key, Arc::clone(&value), bytes);
                Some((value, StoreOutcome::Disk))
            }
        }
    }

    /// Non-blocking existence probe: `true` when `key` is ready in memory
    /// or has an entry file on disk (one `stat`, nothing read, decoded or
    /// promoted).  A pending in-flight computation reports `false` — the
    /// caller polls again, exactly like [`try_get`](Self::try_get).  A
    /// `true` can still miss on the subsequent verified read if the disk
    /// entry turns out corrupt; poll loops must treat it as a hint.
    pub fn contains(&self, key: Digest) -> bool {
        match self.memory.try_peek(key) {
            TryPeek::Ready(_) => true,
            TryPeek::Pending => false,
            TryPeek::Absent => self
                .disk_lock()
                .as_ref()
                .is_some_and(|disk| disk.contains(key)),
        }
    }

    /// Non-blocking **counted** lookup for admission paths: a memory hit
    /// bumps `hits`, a disk promotion bumps `disk_hits`, and a miss or
    /// in-flight key counts nothing here — the eventual
    /// [`get_or_compute`](Self::get_or_compute) (or the event loop's rider
    /// accounting via [`StoreStats::note_coalesced`]) records it.
    pub fn probe(&self, key: Digest) -> Option<(Arc<C::Value>, StoreOutcome)> {
        let (value, outcome) = self.try_get(key)?;
        match outcome {
            StoreOutcome::Hit => StoreStats::bump(&self.stats.hits),
            StoreOutcome::Disk => StoreStats::bump(&self.stats.disk_hits),
            StoreOutcome::Miss | StoreOutcome::Coalesced => {}
        }
        Some((value, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::StringCodec;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("bitwave-store-tiered-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn key(tag: &str) -> Digest {
        Digest::of_bytes(tag.as_bytes())
    }

    #[test]
    fn memory_only_stores_behave_like_a_single_flight_lru() {
        let store = TieredStore::<StringCodec>::memory_only("test", 4);
        assert!(!store.persistent());
        let (a, outcome) = store
            .get_or_compute(key("d"), || Ok::<_, String>("body".to_string()), |e| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Miss);
        let (b, outcome) = store
            .get_or_compute(key("d"), || unreachable!(), |e: String| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.mem_entries(), 1);
        assert_eq!(store.mem_bytes(), 4);
        assert_eq!(store.disk_entries(), 0);
    }

    #[test]
    fn a_reopened_store_serves_disk_hits_byte_identically() {
        let root = temp_root("reopen");
        let config = StoreConfig::default().with_root(&root).with_mem_entries(8);
        let first = TieredStore::<StringCodec>::new("evaluate", &config).unwrap();
        let (cold, outcome) = first
            .get_or_compute(
                key("r"),
                || Ok::<_, String>("report-json".to_string()),
                |e| e,
            )
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Miss);
        drop(first);

        // A fresh store over the same root = a restarted process.
        let second = TieredStore::<StringCodec>::new("evaluate", &config).unwrap();
        assert_eq!(second.disk_entries(), 1);
        let (warm, outcome) = second
            .get_or_compute(key("r"), || panic!("must not recompute"), |e: String| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Disk);
        assert_eq!(*warm, *cold, "disk hits must replay byte-identically");
        assert_eq!(second.stats().disk_hits(), 1);
        assert_eq!(second.stats().misses(), 0);
        // Now promoted: the next lookup is a memory hit.
        let (_, outcome) = second
            .get_or_compute(key("r"), || panic!("still cached"), |e: String| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Hit);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn clear_memory_forces_the_disk_path() {
        let root = temp_root("clear");
        let config = StoreConfig::default().with_root(&root);
        let store = TieredStore::<StringCodec>::new("op", &config).unwrap();
        store
            .get_or_compute(key("x"), || Ok::<_, String>("value".to_string()), |e| e)
            .unwrap();
        store.clear_memory();
        assert_eq!(store.mem_entries(), 0);
        let (_, outcome) = store
            .get_or_compute(key("x"), || panic!("disk has it"), |e: String| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Disk);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn replay_get_consults_disk_and_promotes() {
        let root = temp_root("replay");
        let config = StoreConfig::default().with_root(&root);
        let store = TieredStore::<StringCodec>::new("op", &config).unwrap();
        assert!(store.get(key("absent")).is_none());
        store
            .get_or_compute(key("y"), || Ok::<_, String>("yy".to_string()), |e| e)
            .unwrap();
        store.clear_memory();
        let (replayed, outcome) = store.get(key("y")).expect("disk replay");
        assert_eq!(*replayed, "yy");
        assert_eq!(outcome, StoreOutcome::Disk);
        assert_eq!(store.mem_entries(), 1, "replay promotes into memory");
        let (_, outcome) = store.get(key("y")).expect("memory replay");
        assert_eq!(
            outcome,
            StoreOutcome::Hit,
            "promoted replays answer from memory"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn try_get_never_blocks_on_a_pending_key_and_probe_counts() {
        let store = Arc::new(TieredStore::<StringCodec>::memory_only("op", 8));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let filler = {
            let store = Arc::clone(&store);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                store
                    .get_or_compute(
                        key("slow"),
                        || {
                            gate.wait();
                            std::thread::sleep(std::time::Duration::from_millis(100));
                            Ok::<_, String>("slow-body".to_string())
                        },
                        |e| e,
                    )
                    .unwrap()
            })
        };
        gate.wait();
        // The computation is in flight: both non-blocking lookups must
        // return immediately with None instead of waiting ~100 ms.
        let t0 = std::time::Instant::now();
        assert!(store.try_get(key("slow")).is_none());
        assert!(store.probe(key("slow")).is_none());
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(50),
            "try_get/probe must not block on a pending slot"
        );
        filler.join().unwrap();
        // Ready now: try_get is uncounted, probe bumps hits.
        let hits_before = store.stats().hits();
        let (value, outcome) = store.try_get(key("slow")).expect("ready");
        assert_eq!((&**value, outcome), ("slow-body", StoreOutcome::Hit));
        assert_eq!(store.stats().hits(), hits_before, "try_get is uncounted");
        let (_, outcome) = store.probe(key("slow")).expect("ready");
        assert_eq!(outcome, StoreOutcome::Hit);
        assert_eq!(store.stats().hits(), hits_before + 1, "probe counts hits");
    }

    #[test]
    fn probe_promotes_from_disk_and_counts_a_disk_hit() {
        let root = temp_root("probe-disk");
        let config = StoreConfig::default().with_root(&root);
        let store = TieredStore::<StringCodec>::new("op", &config).unwrap();
        store
            .get_or_compute(key("p"), || Ok::<_, String>("pp".to_string()), |e| e)
            .unwrap();
        store.clear_memory();
        assert!(store.probe(key("absent")).is_none());
        let (value, outcome) = store.probe(key("p")).expect("disk probe");
        assert_eq!((&**value, outcome), ("pp", StoreOutcome::Disk));
        assert_eq!(store.stats().disk_hits(), 1);
        assert_eq!(store.mem_entries(), 1, "probe promotes into memory");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn contains_probes_both_tiers_without_reading_or_promoting() {
        let root = temp_root("contains");
        let config = StoreConfig::default().with_root(&root);
        let store = TieredStore::<StringCodec>::new("op", &config).unwrap();
        assert!(!store.contains(key("c")));
        store
            .get_or_compute(key("c"), || Ok::<_, String>("cc".to_string()), |e| e)
            .unwrap();
        assert!(store.contains(key("c")));
        store.clear_memory();
        assert!(store.contains(key("c")), "the disk entry answers the probe");
        assert_eq!(store.mem_entries(), 0, "a probe must not read or promote");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn note_coalesced_feeds_the_shared_counters() {
        let store = TieredStore::<StringCodec>::memory_only("op", 4);
        assert_eq!(store.stats().coalesced(), 0);
        store.stats().note_coalesced();
        store.stats().note_coalesced();
        assert_eq!(store.stats().coalesced(), 2);
    }

    #[test]
    fn persist_attaches_a_disk_tier_to_a_live_store() {
        let root = temp_root("attach");
        let store = TieredStore::<StringCodec>::memory_only("op", 8);
        store
            .get_or_compute(key("pre"), || Ok::<_, String>("early".to_string()), |e| e)
            .unwrap();
        store.persist(&root).unwrap();
        assert!(store.persistent());
        // New computations persist; the pre-attach entry stays memory-only
        // until recomputed.
        store
            .get_or_compute(key("post"), || Ok::<_, String>("late".to_string()), |e| e)
            .unwrap();
        assert_eq!(store.disk_entries(), 1);
        store.clear_memory();
        let (_, outcome) = store
            .get_or_compute(key("post"), || panic!("on disk"), |e: String| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Disk);
        let (_, outcome) = store
            .get_or_compute(key("pre"), || Ok::<_, String>("early".to_string()), |e| e)
            .unwrap();
        assert_eq!(
            outcome,
            StoreOutcome::Miss,
            "pre-attach entry was memory-only"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_disk_entries_recompute_without_errors() {
        let root = temp_root("corrupt");
        let config = StoreConfig::default().with_root(&root);
        let store = TieredStore::<StringCodec>::new("op", &config).unwrap();
        store
            .get_or_compute(key("z"), || Ok::<_, String>("good".to_string()), |e| e)
            .unwrap();
        // Corrupt the file behind the store's back, then drop memory.
        let path = root.join("op").join(key("z").to_hex());
        let mut raw = std::fs::read(&path).unwrap();
        let flip_at = 60 % raw.len();
        raw[flip_at] ^= 0x55;
        std::fs::write(&path, &raw).unwrap();
        store.clear_memory();
        let (value, outcome) = store
            .get_or_compute(key("z"), || Ok::<_, String>("good".to_string()), |e| e)
            .unwrap();
        assert_eq!(
            outcome,
            StoreOutcome::Miss,
            "corruption is a miss, not an error"
        );
        assert_eq!(*value, "good");
        assert_eq!(store.stats().quarantined(), 1);
        // The recompute rewrote a valid entry.
        store.clear_memory();
        let (_, outcome) = store
            .get_or_compute(key("z"), || panic!("rewritten"), |e: String| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Disk);
        let _ = std::fs::remove_dir_all(&root);
    }
}
