//! The memory tier: a sharded LRU of `Arc`-shared values with byte-size
//! accounting and single-flight computation coalescing.
//!
//! Keys are [`Digest`]s; the digest's low bits pick a shard, so unrelated
//! keys contend on different mutexes.  Each shard keeps an exact LRU over
//! its *ready* entries (a monotonic access stamp in a `BTreeMap`, O(log n)
//! touch and evict); an in-flight computation is never evicted from under
//! its waiters.  Capacity is enforced per shard — entry and byte caps are
//! split evenly — so with more than one shard the eviction order is
//! LRU-per-shard, the standard sharded-cache approximation.  Small caches
//! auto-configure a single shard and keep exact global LRU semantics.
//!
//! Single-flight: the first caller for an absent key installs a pending
//! slot and computes outside the lock; concurrent callers for the same key
//! block on a condvar and share the result.  A panicking computation
//! removes its pending slot and unblocks waiters with an error, so the key
//! stays retryable.

use crate::stats::{StoreOutcome, StoreStats};
use bitwave_core::digest::Digest;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// What a non-blocking [`MemoryTier::try_peek`] found for a key.
#[derive(Debug, Clone)]
pub enum TryPeek<V> {
    /// A ready entry; replay its shared value.
    Ready(Arc<V>),
    /// A computation is in flight; the caller can wait elsewhere (e.g. the
    /// serve tier's event loop attaches the request as a batch rider)
    /// instead of blocking this thread on the store's condvar.
    Pending,
    /// Nothing is cached or in flight for the key.
    Absent,
}

/// Where a fill came from, reported by the fill closure of
/// [`MemoryTier::get_or_fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOrigin {
    /// The value was read (and verified) from the disk tier.
    Disk,
    /// The value was computed.
    Computed,
}

/// Memory-tier capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryTierConfig {
    /// Total entry capacity across shards (min 1).
    pub max_entries: usize,
    /// Total byte capacity across shards; `0` means unbounded.
    pub max_bytes: u64,
    /// Shard count; `0` picks automatically (1 shard for small caches so
    /// LRU stays exact, up to 8 for large ones).
    pub shards: usize,
}

impl MemoryTierConfig {
    /// An entry-bounded config with automatic sharding and no byte cap.
    pub fn entries(max_entries: usize) -> Self {
        Self {
            max_entries,
            max_bytes: 0,
            shards: 0,
        }
    }

    fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        (self.max_entries / 32).clamp(1, 8)
    }
}

/// One in-flight computation; waiters block on the condvar until `done`.
struct Pending<V> {
    done: Mutex<Option<Result<Arc<V>, String>>>,
    cv: Condvar,
}

enum Slot<V> {
    Ready {
        value: Arc<V>,
        bytes: u64,
        /// Access stamp keying this entry in [`Shard::by_stamp`].
        stamp: u64,
    },
    Pending(Arc<Pending<V>>),
}

struct Shard<V> {
    map: HashMap<u128, Slot<V>>,
    /// Ready keys by monotonic access stamp; the first entry is the LRU.
    by_stamp: BTreeMap<u64, u128>,
    next_stamp: u64,
    bytes: u64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            by_stamp: BTreeMap::new(),
            next_stamp: 0,
            bytes: 0,
        }
    }

    /// Stamps a ready key as most-recently-used.
    fn touch(&mut self, key: u128) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(Slot::Ready { stamp: old, .. }) = self.map.get_mut(&key) {
            self.by_stamp.remove(old);
            *old = stamp;
            self.by_stamp.insert(stamp, key);
        }
    }

    fn insert_ready(&mut self, key: u128, value: Arc<V>, bytes: u64) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(Slot::Ready {
            bytes: old_bytes,
            stamp: old_stamp,
            ..
        }) = self.map.get(&key)
        {
            self.bytes = self.bytes.saturating_sub(*old_bytes);
            self.by_stamp.remove(old_stamp);
        }
        self.map.insert(
            key,
            Slot::Ready {
                value,
                bytes,
                stamp,
            },
        );
        self.by_stamp.insert(stamp, key);
        self.bytes += bytes;
    }

    /// Evicts LRU-first until within the caps; returns the eviction count.
    /// The newest entry is always admitted — even when it alone exceeds the
    /// byte cap — so an oversized value still serves its own hits until
    /// something newer displaces it, instead of being recomputed on every
    /// lookup.
    fn enforce(&mut self, entry_cap: usize, byte_cap: u64) -> u64 {
        let mut evicted = 0;
        while (self.by_stamp.len() > entry_cap || (byte_cap > 0 && self.bytes > byte_cap))
            && self.by_stamp.len() > 1
        {
            let Some((_, victim)) = self.by_stamp.pop_first() else {
                break;
            };
            if let Some(Slot::Ready { bytes, .. }) = self.map.remove(&victim) {
                self.bytes = self.bytes.saturating_sub(bytes);
            }
            evicted += 1;
        }
        evicted
    }
}

/// The sharded, bounded, single-flight memory tier.
pub struct MemoryTier<V> {
    shards: Vec<Mutex<Shard<V>>>,
    shard_entry_cap: usize,
    shard_byte_cap: u64,
    stats: Arc<StoreStats>,
}

impl<V> fmt::Debug for MemoryTier<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryTier")
            .field("shards", &self.shards.len())
            .field("shard_entry_cap", &self.shard_entry_cap)
            .field("shard_byte_cap", &self.shard_byte_cap)
            .finish()
    }
}

impl<V: Send + Sync + 'static> MemoryTier<V> {
    /// Creates a tier with its own stats.
    pub fn new(config: MemoryTierConfig) -> Self {
        Self::with_stats(config, Arc::new(StoreStats::default()))
    }

    /// Creates a tier sharing an existing stats object (how
    /// [`crate::TieredStore`] funnels both tiers into one counter set).
    pub fn with_stats(config: MemoryTierConfig, stats: Arc<StoreStats>) -> Self {
        let shards = config.resolved_shards().max(1);
        let entry_cap = config.max_entries.max(1).div_ceil(shards);
        let byte_cap = if config.max_bytes == 0 {
            0
        } else {
            (config.max_bytes / shards as u64).max(1)
        };
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_entry_cap: entry_cap.max(1),
            shard_byte_cap: byte_cap,
            stats,
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<StoreStats> {
        &self.stats
    }

    /// Number of ready (replayable) entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock(s).by_stamp.len())
            .sum()
    }

    /// True when no ready entry is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted bytes of ready entries across shards.
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| Self::lock(s).bytes).sum()
    }

    /// Drops every ready entry (in-flight computations and their waiters
    /// are untouched; counters keep counting).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = Self::lock(shard);
            shard.map.retain(|_, slot| matches!(slot, Slot::Pending(_)));
            shard.by_stamp.clear();
            shard.bytes = 0;
        }
    }

    fn lock(shard: &Mutex<Shard<V>>) -> MutexGuard<'_, Shard<V>> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn shard_for(&self, key: Digest) -> &Mutex<Shard<V>> {
        &self.shards[(key.raw() % self.shards.len() as u128) as usize]
    }

    /// Replays a ready entry without counting a hit or miss (the serve
    /// tier's `GET /v1/reports/{digest}` path).  A pending key blocks until
    /// its computation finishes (`None` if it failed).
    pub fn peek(&self, key: Digest) -> Option<Arc<V>> {
        let pending = {
            let mut shard = Self::lock(self.shard_for(key));
            match shard.map.get(&key.raw()) {
                Some(Slot::Ready { value, .. }) => {
                    let value = Arc::clone(value);
                    shard.touch(key.raw());
                    return Some(value);
                }
                Some(Slot::Pending(p)) => Arc::clone(p),
                None => return None,
            }
        };
        Self::wait(&pending).ok()
    }

    /// Non-blocking variant of [`peek`](Self::peek): never waits on an
    /// in-flight computation, reporting it as [`TryPeek::Pending`] instead.
    /// A ready entry is touched in the LRU, exactly like `peek`.  Uncounted
    /// — callers that want hit accounting layer it on top (see
    /// `TieredStore::probe`).
    pub fn try_peek(&self, key: Digest) -> TryPeek<V> {
        let mut shard = Self::lock(self.shard_for(key));
        match shard.map.get(&key.raw()) {
            Some(Slot::Ready { value, .. }) => {
                let value = Arc::clone(value);
                shard.touch(key.raw());
                TryPeek::Ready(value)
            }
            Some(Slot::Pending(_)) => TryPeek::Pending,
            None => TryPeek::Absent,
        }
    }

    /// Inserts a ready entry directly (the disk-promotion path of replay
    /// lookups).  Overwrites any existing ready entry for the key.
    pub fn insert(&self, key: Digest, value: Arc<V>, bytes: u64) {
        let mut shard = Self::lock(self.shard_for(key));
        if matches!(shard.map.get(&key.raw()), Some(Slot::Pending(_))) {
            // Never clobber an in-flight computation; its waiters would
            // block on a condvar nobody signals.
            return;
        }
        shard.insert_ready(key.raw(), value, bytes);
        let evicted = shard.enforce(self.shard_entry_cap, self.shard_byte_cap);
        drop(shard);
        for _ in 0..evicted {
            StoreStats::bump(&self.stats.evictions);
        }
    }

    /// Looks `key` up; on a miss, runs `fill` (outside the shard lock) and
    /// stores its value with the byte weight it reports.  Concurrent calls
    /// for the same key coalesce onto the first caller's fill; waiters that
    /// observe a failure receive `waiter_err` of the failure message.
    ///
    /// # Errors
    ///
    /// The filling caller's error is returned as-is; nothing is cached.
    pub fn get_or_fill<E, F>(
        &self,
        key: Digest,
        fill: F,
        waiter_err: impl FnOnce(String) -> E,
    ) -> Result<(Arc<V>, StoreOutcome), E>
    where
        F: FnOnce() -> Result<(V, u64, FillOrigin), E>,
        E: fmt::Display,
    {
        let pending = {
            let mut shard = Self::lock(self.shard_for(key));
            match shard.map.get(&key.raw()) {
                Some(Slot::Ready { value, .. }) => {
                    let value = Arc::clone(value);
                    shard.touch(key.raw());
                    StoreStats::bump(&self.stats.hits);
                    return Ok((value, StoreOutcome::Hit));
                }
                Some(Slot::Pending(p)) => Arc::clone(p),
                None => {
                    let pending = Arc::new(Pending {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    shard
                        .map
                        .insert(key.raw(), Slot::Pending(Arc::clone(&pending)));
                    drop(shard);
                    return self.run_fill(key, pending, fill);
                }
            }
        };
        StoreStats::bump(&self.stats.coalesced);
        Self::wait(&pending)
            .map(|value| (value, StoreOutcome::Coalesced))
            .map_err(waiter_err)
    }

    fn run_fill<E, F>(
        &self,
        key: Digest,
        pending: Arc<Pending<V>>,
        fill: F,
    ) -> Result<(Arc<V>, StoreOutcome), E>
    where
        F: FnOnce() -> Result<(V, u64, FillOrigin), E>,
        E: fmt::Display,
    {
        // If `fill` panics, the unwind must not leave the pending slot in
        // the map (every later call for the key would block forever on a
        // condvar nobody will signal).  The guard runs on unwind only — the
        // normal path disarms it.
        struct PendingGuard<'a, V: Send + Sync + 'static> {
            tier: &'a MemoryTier<V>,
            key: Digest,
            pending: &'a Pending<V>,
            armed: bool,
        }
        impl<V: Send + Sync + 'static> Drop for PendingGuard<'_, V> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                let mut shard = MemoryTier::lock(self.tier.shard_for(self.key));
                shard.map.remove(&self.key.raw());
                drop(shard);
                let mut done = self
                    .pending
                    .done
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if done.is_none() {
                    *done = Some(Err("computation panicked".to_string()));
                }
                self.pending.cv.notify_all();
            }
        }
        let mut guard = PendingGuard {
            tier: self,
            key,
            pending: &pending,
            armed: true,
        };
        let result = fill();
        guard.armed = false;
        drop(guard);

        let evicted;
        let (settled, outcome) = match result {
            Ok((value, bytes, origin)) => {
                let value = Arc::new(value);
                let mut shard = Self::lock(self.shard_for(key));
                shard.insert_ready(key.raw(), Arc::clone(&value), bytes);
                evicted = shard.enforce(self.shard_entry_cap, self.shard_byte_cap);
                drop(shard);
                let outcome = match origin {
                    FillOrigin::Disk => {
                        StoreStats::bump(&self.stats.disk_hits);
                        StoreOutcome::Disk
                    }
                    FillOrigin::Computed => {
                        StoreStats::bump(&self.stats.misses);
                        StoreOutcome::Miss
                    }
                };
                (Ok(value), Ok(outcome))
            }
            Err(e) => {
                let mut shard = Self::lock(self.shard_for(key));
                shard.map.remove(&key.raw());
                evicted = 0;
                drop(shard);
                // A failed computation still counts as a miss: the cold
                // path ran, it just produced nothing cacheable.
                StoreStats::bump(&self.stats.misses);
                (Err(e.to_string()), Err(e))
            }
        };
        for _ in 0..evicted {
            StoreStats::bump(&self.stats.evictions);
        }
        let mut done = pending
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done = Some(settled.clone());
        pending.cv.notify_all();
        drop(done);
        match outcome {
            Ok(outcome) => {
                let Ok(value) = settled else {
                    unreachable!("settled is Ok whenever outcome is Ok")
                };
                Ok((value, outcome))
            }
            Err(e) => Err(e),
        }
    }

    fn wait(pending: &Pending<V>) -> Result<Arc<V>, String> {
        let mut done = pending
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = pending
                .cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tier(entries: usize) -> MemoryTier<String> {
        MemoryTier::new(MemoryTierConfig {
            max_entries: entries,
            max_bytes: 0,
            shards: 1,
        })
    }

    fn key(tag: &str) -> Digest {
        Digest::of_bytes(tag.as_bytes())
    }

    fn computed(body: &str) -> Result<(String, u64, FillOrigin), String> {
        Ok((body.to_string(), body.len() as u64, FillOrigin::Computed))
    }

    #[test]
    fn miss_then_hit_shares_the_arc_and_accounts_bytes() {
        let tier = tier(4);
        let (a, outcome) = tier
            .get_or_fill(key("d1"), || computed("body-1"), |e| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Miss);
        let (b, outcome) = tier
            .get_or_fill(key("d1"), || panic!("must not refill"), |e: String| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.bytes(), 6);
        assert_eq!(tier.stats().hits(), 1);
        assert_eq!(tier.stats().misses(), 1);
        assert_eq!(
            tier.peek(key("d1")).as_deref().map(String::as_str),
            Some("body-1")
        );
        assert!(tier.peek(key("absent")).is_none());
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let tier = tier(2);
        tier.get_or_fill(key("a"), || computed("A"), |e| e).unwrap();
        tier.get_or_fill(key("b"), || computed("B"), |e| e).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        tier.get_or_fill(key("a"), || unreachable!(), |e: String| e)
            .unwrap();
        tier.get_or_fill(key("c"), || computed("C"), |e| e).unwrap();
        assert_eq!(tier.stats().evictions(), 1);
        assert!(tier.peek(key("b")).is_none(), "b must have been evicted");
        assert!(tier.peek(key("a")).is_some());
        assert!(tier.peek(key("c")).is_some());
        assert_eq!(tier.len(), 2);
        assert_eq!(tier.bytes(), 2);
    }

    #[test]
    fn byte_cap_evicts_before_the_entry_cap() {
        let tier: MemoryTier<String> = MemoryTier::new(MemoryTierConfig {
            max_entries: 100,
            max_bytes: 10,
            shards: 1,
        });
        tier.get_or_fill(key("a"), || computed("aaaa"), |e| e)
            .unwrap();
        tier.get_or_fill(key("b"), || computed("bbbb"), |e| e)
            .unwrap();
        tier.get_or_fill(key("c"), || computed("cccc"), |e| e)
            .unwrap();
        assert!(tier.bytes() <= 10, "byte cap must hold: {}", tier.bytes());
        assert_eq!(tier.stats().evictions(), 1);
        assert!(tier.peek(key("a")).is_none(), "LRU victim is the oldest");
    }

    #[test]
    fn an_entry_larger_than_the_byte_cap_is_still_admitted() {
        // The newest entry must survive enforcement even when it alone
        // blows the byte cap — otherwise an oversized value would be
        // recomputed on every single lookup.
        let tier: MemoryTier<String> = MemoryTier::new(MemoryTierConfig {
            max_entries: 8,
            max_bytes: 4,
            shards: 1,
        });
        tier.get_or_fill(key("big"), || computed("0123456789"), |e| e)
            .unwrap();
        assert_eq!(tier.len(), 1, "the oversized entry must be retained");
        let (_, outcome) = tier
            .get_or_fill(key("big"), || unreachable!(), |e: String| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Hit);
        // A newer entry displaces it.
        tier.get_or_fill(key("next"), || computed("x"), |e| e)
            .unwrap();
        assert!(tier.peek(key("big")).is_none());
        assert!(tier.peek(key("next")).is_some());
    }

    #[test]
    fn failed_fill_is_not_cached_and_is_retryable() {
        let tier = tier(2);
        let err = tier
            .get_or_fill(key("bad"), || Err("boom".to_string()), |e| e)
            .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(tier.len(), 0);
        let (_, outcome) = tier
            .get_or_fill(key("bad"), || computed("recovered"), |e| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Miss);
        assert_eq!(tier.stats().misses(), 2);
    }

    #[test]
    fn panicking_fill_unblocks_waiters_and_allows_retry() {
        let tier = Arc::new(tier(4));
        let panicker = {
            let tier = Arc::clone(&tier);
            std::thread::spawn(move || {
                let _ = tier.get_or_fill(
                    key("doomed"),
                    || -> Result<(String, u64, FillOrigin), String> {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("fill bug");
                    },
                    |e| e,
                );
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        let err = tier
            .get_or_fill(key("doomed"), || computed("unused"), |e| e)
            .unwrap_err();
        assert!(err.contains("panicked"), "waiter must be unblocked: {err}");
        assert!(panicker.join().is_err(), "fill did panic");
        let (value, outcome) = tier
            .get_or_fill(key("doomed"), || computed("recovered"), |e| e)
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Miss);
        assert_eq!(&**value, "recovered");
    }

    #[test]
    fn concurrent_identical_fills_run_once() {
        let tier = Arc::new(MemoryTier::<String>::new(MemoryTierConfig::entries(64)));
        let fills = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let tier = Arc::clone(&tier);
            let fills = Arc::clone(&fills);
            handles.push(std::thread::spawn(move || {
                tier.get_or_fill(
                    key("shared"),
                    || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        computed("shared-body")
                    },
                    |e| e,
                )
                .unwrap()
            }));
        }
        let results: Vec<(Arc<String>, StoreOutcome)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(fills.load(Ordering::SeqCst), 1, "single-flight");
        assert!(results.iter().all(|(body, _)| &***body == "shared-body"));
        let misses = results
            .iter()
            .filter(|(_, o)| *o == StoreOutcome::Miss)
            .count();
        assert_eq!(misses, 1);
        let stats = tier.stats();
        assert_eq!(stats.misses() + stats.coalesced() + stats.hits(), 8);
    }

    #[test]
    fn clear_drops_ready_entries_but_keeps_counting() {
        let tier = tier(4);
        tier.get_or_fill(key("a"), || computed("A"), |e| e).unwrap();
        tier.get_or_fill(key("b"), || computed("B"), |e| e).unwrap();
        assert_eq!(tier.len(), 2);
        tier.clear();
        assert!(tier.is_empty());
        assert_eq!(tier.bytes(), 0);
        assert_eq!(tier.stats().misses(), 2, "counters survive clear");
    }

    #[test]
    fn sharded_tiers_spread_entries_and_stay_bounded() {
        let tier: MemoryTier<String> = MemoryTier::new(MemoryTierConfig {
            max_entries: 64,
            max_bytes: 0,
            shards: 8,
        });
        for i in 0..200 {
            let tag = format!("entry-{i}");
            tier.get_or_fill(key(&tag), || computed(&tag), |e| e)
                .unwrap();
        }
        assert!(
            tier.len() <= 64,
            "per-shard caps bound the total: {}",
            tier.len()
        );
        assert!(tier.stats().evictions() >= 136);
    }
}
