//! The disk tier: one checksummed file per entry, atomic writes, verified
//! reads, quarantine instead of errors.
//!
//! Layout: `<root>/<op>/<digest>` where `<digest>` is the entry key's
//! 32-hex-char form.  Each file is a fixed 48-byte header followed by the
//! codec payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"BWS1"
//!      4     4  format version (u32 LE)
//!      8    16  entry digest (u128 LE) — must match the file name / lookup
//!     24     8  payload length (u64 LE)
//!     32    16  FNV-1a/128 checksum of the payload (u128 LE)
//!     48     …  payload
//! ```
//!
//! Writes go to a temp file in the same directory and are published with an
//! atomic rename, so readers never observe a half-written entry.  Reads
//! verify everything; any mismatch (bad magic, foreign version, truncation,
//! checksum failure, aliased digest) **quarantines** the file under
//! `<op>/quarantine/` and reports a miss — corruption is never an error and
//! never panics.

use bitwave_core::digest::{fnv1a128, Digest};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: [u8; 4] = *b"BWS1";
/// On-disk format version; entries written by a different version are
/// quarantined as misses, never decoded.
pub const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: usize = 48;
/// Subdirectory corrupt entries are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Why a disk read missed (all treated identically by the store; the
/// distinction feeds quarantine accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskMiss {
    /// No file for the digest.
    Absent,
    /// The file existed but failed verification and was quarantined.
    Quarantined,
}

/// One op's disk tier.
#[derive(Debug)]
pub struct DiskTier {
    dir: PathBuf,
    max_bytes: u64,
    entries: AtomicU64,
    bytes: AtomicU64,
}

/// Temp-file sequence shared by every tier handle in the process.  Two
/// handles opened on the *same* directory (e.g. sweep workers sharing one
/// store root) would otherwise generate colliding `.tmp-<pid>-<n>` names,
/// truncate each other's in-flight temp files and publish one key's
/// filename with another key's payload.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Orphaned temp files younger than this are left alone at open: they may
/// be a live writer's in-flight entry in a directory shared across handles
/// or processes.  Real orphans (crashed writers) age past it and get swept
/// by the next open.
const TMP_SWEEP_MIN_AGE: std::time::Duration = std::time::Duration::from_secs(60);

impl DiskTier {
    /// Opens (creating if needed) the tier at `<root>/<op>` and scans it to
    /// initialize the entry/byte gauges.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures — opening is the one
    /// fallible disk operation; reads and writes after it never error.
    pub fn open(root: &Path, op: &str, max_bytes: u64) -> io::Result<Self> {
        let dir = root.join(op);
        fs::create_dir_all(&dir)?;
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            // Sweep temp files orphaned by a crash mid-write — they were
            // never published (the rename didn't happen), so they are dead
            // weight no gauge or cap would otherwise see.  Only aged ones:
            // a young temp may belong to a live writer in a directory
            // shared with other handles or processes.
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(".tmp-"))
            {
                let aged = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|mtime| mtime.elapsed().ok())
                    .is_some_and(|age| age >= TMP_SWEEP_MIN_AGE);
                if aged {
                    let _ = fs::remove_file(entry.path());
                }
                continue;
            }
            if !Self::is_entry_name(&entry.file_name()) {
                continue;
            }
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    entries += 1;
                    bytes += meta.len();
                }
            }
        }
        Ok(Self {
            dir,
            max_bytes,
            entries: AtomicU64::new(entries),
            bytes: AtomicU64::new(bytes),
        })
    }

    fn is_entry_name(name: &std::ffi::OsStr) -> bool {
        name.to_str()
            .is_some_and(|n| n.len() == 32 && n.bytes().all(|b| b.is_ascii_hexdigit()))
    }

    /// The tier's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entry-count gauge.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Byte gauge (headers included).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: Digest) -> PathBuf {
        self.dir.join(key.to_hex())
    }

    /// Whether an entry file exists for `key` — a single `stat`, no read,
    /// no verification.  A poll loop can use this to skip opening and
    /// checksumming files it has already decided it does not need yet; a
    /// `true` may still turn into a verified-read miss (quarantine) later.
    pub fn contains(&self, key: Digest) -> bool {
        fs::metadata(self.entry_path(key))
            .map(|m| m.is_file())
            .unwrap_or(false)
    }

    /// Reads and fully verifies the entry for `key`.  Any failure short of
    /// "file absent" quarantines the file; the caller only ever sees a
    /// payload or a miss.
    pub fn read(&self, key: Digest) -> Result<Vec<u8>, DiskMiss> {
        let path = self.entry_path(key);
        let mut file = match fs::File::open(&path) {
            Ok(file) => file,
            Err(_) => return Err(DiskMiss::Absent),
        };
        let mut raw = Vec::new();
        if file.read_to_end(&mut raw).is_err() {
            drop(file);
            self.quarantine(key);
            return Err(DiskMiss::Quarantined);
        }
        drop(file);
        match Self::verify(key, &raw) {
            Some(payload_start) => Ok(raw.split_off(payload_start)),
            None => {
                self.quarantine(key);
                Err(DiskMiss::Quarantined)
            }
        }
    }

    /// Verifies header + checksum; returns the payload offset when valid.
    fn verify(key: Digest, raw: &[u8]) -> Option<usize> {
        if raw.len() < HEADER_LEN || raw[0..4] != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(raw[4..8].try_into().ok()?);
        if version != FORMAT_VERSION {
            return None;
        }
        let digest = u128::from_le_bytes(raw[8..24].try_into().ok()?);
        if digest != key.raw() {
            return None;
        }
        let len = u64::from_le_bytes(raw[24..32].try_into().ok()?);
        let payload = &raw[HEADER_LEN..];
        if payload.len() as u64 != len {
            return None;
        }
        let checksum = u128::from_le_bytes(raw[32..48].try_into().ok()?);
        if fnv1a128(payload) != checksum {
            return None;
        }
        Some(HEADER_LEN)
    }

    /// Writes the entry for `key` atomically (temp file + rename).
    /// Best-effort: returns `false` on any I/O failure — the store keeps
    /// serving the value from memory either way.  An already-present entry
    /// is left untouched (content-addressed: same digest, same bytes).
    pub fn write(&self, key: Digest, payload: &[u8]) -> bool {
        let path = self.entry_path(key);
        if path.exists() {
            return true;
        }
        let total = (HEADER_LEN + payload.len()) as u64;
        if self.max_bytes > 0 {
            self.make_room(total);
        }
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let written = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&MAGIC)?;
            file.write_all(&FORMAT_VERSION.to_le_bytes())?;
            file.write_all(&key.raw().to_le_bytes())?;
            file.write_all(&(payload.len() as u64).to_le_bytes())?;
            file.write_all(&fnv1a128(payload).to_le_bytes())?;
            file.write_all(payload)?;
            file.sync_all()?;
            fs::rename(&tmp, &path)
        })();
        match written {
            Ok(()) => {
                self.entries.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(total, Ordering::Relaxed);
                true
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                false
            }
        }
    }

    /// Deletes oldest-modified entries until `incoming` bytes fit under the
    /// byte cap.
    fn make_room(&self, incoming: u64) {
        let budget = self.max_bytes.saturating_sub(incoming);
        if self.bytes() <= budget {
            return;
        }
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut candidates: Vec<(std::time::SystemTime, PathBuf, u64)> = dir
            .flatten()
            .filter(|e| Self::is_entry_name(&e.file_name()))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, e.path(), meta.len()))
            })
            .collect();
        candidates.sort_by_key(|candidate| candidate.0);
        for (_, path, len) in candidates {
            if self.bytes() <= budget {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                Self::saturating_sub(&self.entries, 1);
                Self::saturating_sub(&self.bytes, len);
            }
        }
    }

    /// Gauge decrement that can never wrap: concurrent removals of one
    /// entry (e.g. two racing quarantines) saturate at zero instead of
    /// underflowing to ~`u64::MAX` and poisoning the byte-cap arithmetic.
    fn saturating_sub(counter: &AtomicU64, delta: u64) {
        let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(delta))
        });
    }

    /// Largest number of files kept for forensics in `<op>/quarantine/`;
    /// beyond it, corrupt entries are deleted outright so sustained
    /// corruption cannot grow disk usage without bound (the quarantine
    /// directory sits outside the `disk_bytes` cap).
    const QUARANTINE_CAP: usize = 64;

    /// Moves the entry for `key` into the quarantine subdirectory (deleting
    /// instead once the quarantine holds [`Self::QUARANTINE_CAP`] files, or
    /// when the rename fails).  Re-quarantining a digest overwrites its
    /// previous quarantined copy.
    pub fn quarantine(&self, key: Digest) {
        let path = self.entry_path(key);
        let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let quarantine_dir = self.dir.join(QUARANTINE_DIR);
        let quarantine_full = fs::read_dir(&quarantine_dir)
            .map(|entries| entries.count() >= Self::QUARANTINE_CAP)
            .unwrap_or(false);
        let removed = (!quarantine_full
            && fs::create_dir_all(&quarantine_dir)
                .and_then(|()| fs::rename(&path, quarantine_dir.join(key.to_hex())))
                .is_ok())
            || fs::remove_file(&path).is_ok();
        // Only the caller that actually moved/deleted the file adjusts the
        // gauges, so two racing quarantines of one entry decrement once.
        if removed {
            Self::saturating_sub(&self.entries, 1);
            Self::saturating_sub(&self.bytes, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("bitwave-store-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn write_then_read_roundtrips_and_tracks_gauges() {
        let root = temp_root("roundtrip");
        let tier = DiskTier::open(&root, "evaluate", 0).unwrap();
        let key = Digest::of_bytes(b"entry");
        assert_eq!(tier.read(key), Err(DiskMiss::Absent));
        assert!(tier.write(key, b"payload-bytes"));
        assert_eq!(tier.read(key).unwrap(), b"payload-bytes");
        assert_eq!(tier.entries(), 1);
        assert_eq!(tier.bytes(), 48 + 13);
        // Reopening rescans the gauges.
        let reopened = DiskTier::open(&root, "evaluate", 0).unwrap();
        assert_eq!(reopened.entries(), 1);
        assert_eq!(reopened.bytes(), 48 + 13);
        assert_eq!(reopened.read(key).unwrap(), b"payload-bytes");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_quarantined_misses() {
        let root = temp_root("corrupt");
        let tier = DiskTier::open(&root, "op", 0).unwrap();
        let key = Digest::of_bytes(b"damaged");
        assert!(tier.write(key, b"the payload"));
        // Flip one payload byte on disk.
        let path = tier.dir().join(key.to_hex());
        let mut raw = fs::read(&path).unwrap();
        *raw.last_mut().unwrap() ^= 0xff;
        fs::write(&path, &raw).unwrap();
        assert_eq!(tier.read(key), Err(DiskMiss::Quarantined));
        assert!(!path.exists(), "corrupt entry must leave the live dir");
        assert!(tier.dir().join(QUARANTINE_DIR).join(key.to_hex()).exists());
        assert_eq!(tier.entries(), 0);
        // A rewrite repopulates the slot.
        assert!(tier.write(key, b"the payload"));
        assert_eq!(tier.read(key).unwrap(), b"the payload");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_and_version_mismatched_entries_miss() {
        let root = temp_root("truncated");
        let tier = DiskTier::open(&root, "op", 0).unwrap();
        let key = Digest::of_bytes(b"short");
        assert!(tier.write(key, b"0123456789"));
        let path = tier.dir().join(key.to_hex());
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        assert_eq!(tier.read(key), Err(DiskMiss::Quarantined));

        let key2 = Digest::of_bytes(b"versioned");
        assert!(tier.write(key2, b"vv"));
        let path2 = tier.dir().join(key2.to_hex());
        let mut raw2 = fs::read(&path2).unwrap();
        raw2[4] ^= 0x01; // foreign format version
        fs::write(&path2, &raw2).unwrap();
        assert_eq!(tier.read(key2), Err(DiskMiss::Quarantined));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn an_entry_aliased_under_the_wrong_digest_misses() {
        let root = temp_root("aliased");
        let tier = DiskTier::open(&root, "op", 0).unwrap();
        let key = Digest::of_bytes(b"original");
        let other = Digest::of_bytes(b"other");
        assert!(tier.write(key, b"data"));
        // Copy the valid file under a different digest's name.
        fs::copy(
            tier.dir().join(key.to_hex()),
            tier.dir().join(other.to_hex()),
        )
        .unwrap();
        assert_eq!(tier.read(other), Err(DiskMiss::Quarantined));
        assert_eq!(tier.read(key).unwrap(), b"data");
        let _ = fs::remove_dir_all(&root);
    }

    /// Two handles on the *same* directory (sweep workers sharing a store
    /// root) must never truncate each other's in-flight temp files: every
    /// published entry reads back valid under its own key and nothing is
    /// quarantined.  Before the process-wide temp counter, both handles
    /// named temps `.tmp-<pid>-0`, `.tmp-<pid>-1`, … and concurrent writes
    /// aliased one key's filename with another key's payload.
    #[test]
    fn concurrent_handles_on_one_directory_never_alias_entries() {
        let root = temp_root("shared-handles");
        let writers: Vec<_> = (0..2)
            .map(|handle| {
                let root = root.clone();
                std::thread::spawn(move || {
                    let tier = DiskTier::open(&root, "op", 0).unwrap();
                    for i in 0..200 {
                        let key = Digest::of_bytes(format!("h{handle}-k{i}").as_bytes());
                        assert!(tier.write(key, format!("h{handle}-payload-{i}").as_bytes()));
                    }
                })
            })
            .collect();
        for writer in writers {
            writer.join().unwrap();
        }
        let tier = DiskTier::open(&root, "op", 0).unwrap();
        for handle in 0..2 {
            for i in 0..200 {
                let key = Digest::of_bytes(format!("h{handle}-k{i}").as_bytes());
                assert_eq!(
                    tier.read(key).unwrap(),
                    format!("h{handle}-payload-{i}").as_bytes(),
                    "entry h{handle}-k{i} must read back under its own key"
                );
            }
        }
        assert!(
            !tier.dir().join(QUARANTINE_DIR).exists(),
            "no cross-written entries may be quarantined"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_cap_evicts_oldest_entries_first() {
        let root = temp_root("cap");
        // Each entry is 48 + 10 bytes; cap to roughly three entries.
        let tier = DiskTier::open(&root, "op", 3 * 58 + 10).unwrap();
        let keys: Vec<Digest> = (0..5)
            .map(|i| Digest::of_bytes(format!("entry-{i}").as_bytes()))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            assert!(tier.write(*key, format!("payload-{i:02}").as_bytes()));
            // Distinct mtimes so eviction order is deterministic.
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        assert!(
            tier.bytes() <= 3 * 58 + 10,
            "cap must hold: {}",
            tier.bytes()
        );
        assert_eq!(tier.read(keys[0]), Err(DiskMiss::Absent), "oldest evicted");
        assert!(tier.read(keys[4]).is_ok(), "newest survives");
        let _ = fs::remove_dir_all(&root);
    }
}
