//! A cross-process work-claim ledger over a shared directory.
//!
//! Multi-process sweeps shard work by *claiming* items before computing
//! them.  A claim is a file created with `O_CREAT | O_EXCL`
//! ([`fs::OpenOptions::create_new`]) — the one filesystem primitive that is
//! an atomic test-and-set across processes (write-via-rename, used by the
//! disk tier's entry publish, *overwrites* and therefore cannot arbitrate
//! ownership).  Exactly one contender wins each claim; everyone else sees
//! [`ClaimOutcome::Held`].
//!
//! Crashed owners must not strand their items forever, so claims carry a
//! **time-to-live**: a claim file whose mtime is older than the ledger's TTL
//! is considered abandoned and may be *stolen* — removed and re-claimed
//! atomically by whoever notices first.  Two racing stealers both remove
//! (the loser's remove is a no-op) and then race one `create_new`; exactly
//! one wins.  Live owners therefore must finish (or [`ClaimLedger::touch`]
//! their claim) within the TTL.
//!
//! The ledger never stores results — completion is signalled by publishing
//! the result itself (e.g. a [`crate::TieredStore`] entry) and then
//! [`ClaimLedger::release`]-ing the claim.  Callers check for the result
//! *before* claiming, so a released claim is never re-taken for completed
//! work.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// What [`ClaimLedger::try_claim`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// This caller now owns the item and must compute it (then
    /// [`ClaimLedger::release`] the claim).
    Claimed,
    /// Another live owner holds the item; try again later or move on.
    Held,
    /// A stale claim (owner presumed crashed) was removed and re-claimed by
    /// this caller — semantically [`ClaimOutcome::Claimed`], distinguished
    /// for steal accounting.
    Stolen,
}

impl ClaimOutcome {
    /// True when the caller owns the item (fresh claim or steal).
    pub fn owned(self) -> bool {
        matches!(self, ClaimOutcome::Claimed | ClaimOutcome::Stolen)
    }
}

/// A TTL-expiring claim ledger rooted at one directory.
#[derive(Debug)]
pub struct ClaimLedger {
    dir: PathBuf,
    ttl: Duration,
}

impl ClaimLedger {
    /// Opens (creating if needed) the ledger directory.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn open(dir: impl Into<PathBuf>, ttl: Duration) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, ttl })
    }

    /// The ledger's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stale-claim time-to-live.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    fn claim_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.claim"))
    }

    /// Attempts to claim `key` (a filename-safe item identifier).  At most
    /// one contender per key holds the claim at a time; a claim whose file
    /// is older than the TTL is stolen.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the expected
    /// already-exists/not-found races.
    pub fn try_claim(&self, key: &str) -> io::Result<ClaimOutcome> {
        match self.create_claim(key) {
            Ok(()) => return Ok(ClaimOutcome::Claimed),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
            Err(e) => return Err(e),
        }
        // Held by someone — unless the owner is presumed dead.
        if !self.is_stale(key) {
            return Ok(ClaimOutcome::Held);
        }
        // Steal: remove the stale file, then race a fresh create_new.  The
        // remove is idempotent (a concurrent stealer may get there first)
        // and exactly one contender wins the re-create.
        match fs::remove_file(self.claim_path(key)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        match self.create_claim(key) {
            Ok(()) => Ok(ClaimOutcome::Stolen),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(ClaimOutcome::Held),
            Err(e) => Err(e),
        }
    }

    /// Refreshes a held claim's mtime so a long computation is not stolen
    /// mid-flight.  Best-effort: a vanished claim file is not an error (the
    /// work will simply race its stealer, and deterministic results make
    /// the double-compute harmless).
    pub fn touch(&self, key: &str) {
        let _ = fs::OpenOptions::new()
            .write(true)
            .open(self.claim_path(key))
            .and_then(|mut f| f.write_all(b"."));
    }

    /// Releases a claim after its result has been published.  Releasing an
    /// already-released (or stolen) claim is a no-op.
    pub fn release(&self, key: &str) {
        match fs::remove_file(self.claim_path(key)) {
            Ok(()) => {}
            Err(_) => {
                // Already gone (stolen or never created) — nothing to do.
            }
        }
    }

    /// True when `key` currently has a claim file (live or stale).
    pub fn is_held(&self, key: &str) -> bool {
        self.claim_path(key).exists()
    }

    fn create_claim(&self, key: &str) -> io::Result<()> {
        let mut file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.claim_path(key))?;
        // The content is diagnostic only; ownership lives in the file's
        // existence and freshness.
        let _ = write!(file, "{}", std::process::id());
        Ok(())
    }

    /// True when the claim file exists and is older than the TTL.  A claim
    /// whose mtime cannot be read is treated as live (conservative: never
    /// steal on uncertainty).
    fn is_stale(&self, key: &str) -> bool {
        let Ok(meta) = fs::metadata(self.claim_path(key)) else {
            return false;
        };
        let Ok(modified) = meta.modified() else {
            return false;
        };
        SystemTime::now()
            .duration_since(modified)
            .map(|age| age > self.ttl)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bitwave-claim-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn first_claim_wins_second_is_held() {
        let ledger = ClaimLedger::open(temp_dir("basic"), Duration::from_secs(60)).unwrap();
        assert_eq!(ledger.try_claim("p0").unwrap(), ClaimOutcome::Claimed);
        assert_eq!(ledger.try_claim("p0").unwrap(), ClaimOutcome::Held);
        assert!(ledger.is_held("p0"));
        ledger.release("p0");
        assert!(!ledger.is_held("p0"));
        assert_eq!(ledger.try_claim("p0").unwrap(), ClaimOutcome::Claimed);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let ledger = ClaimLedger::open(temp_dir("keys"), Duration::from_secs(60)).unwrap();
        assert_eq!(ledger.try_claim("a").unwrap(), ClaimOutcome::Claimed);
        assert_eq!(ledger.try_claim("b").unwrap(), ClaimOutcome::Claimed);
        assert_eq!(ledger.try_claim("a").unwrap(), ClaimOutcome::Held);
    }

    #[test]
    fn stale_claims_are_stolen_after_the_ttl() {
        let ledger = ClaimLedger::open(temp_dir("steal"), Duration::from_millis(50)).unwrap();
        assert_eq!(ledger.try_claim("p0").unwrap(), ClaimOutcome::Claimed);
        // The "owner" crashes: no release.  Within the TTL the claim holds.
        assert_eq!(ledger.try_claim("p0").unwrap(), ClaimOutcome::Held);
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(ledger.try_claim("p0").unwrap(), ClaimOutcome::Stolen);
        // The steal re-created a fresh claim, held again.
        assert_eq!(ledger.try_claim("p0").unwrap(), ClaimOutcome::Held);
    }

    #[test]
    fn touch_keeps_a_live_claim_from_being_stolen() {
        let ledger = ClaimLedger::open(temp_dir("touch"), Duration::from_millis(120)).unwrap();
        assert_eq!(ledger.try_claim("p0").unwrap(), ClaimOutcome::Claimed);
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(60));
            ledger.touch("p0");
        }
        assert_eq!(
            ledger.try_claim("p0").unwrap(),
            ClaimOutcome::Held,
            "a touched claim must stay owned past the original TTL"
        );
    }

    #[test]
    fn racing_contenders_produce_exactly_one_owner() {
        let dir = temp_dir("race");
        let owners = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let dir = dir.clone();
                let owners = Arc::clone(&owners);
                std::thread::spawn(move || {
                    let ledger = ClaimLedger::open(dir, Duration::from_secs(60)).unwrap();
                    if ledger.try_claim("contested").unwrap().owned() {
                        owners.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            owners.load(Ordering::Relaxed),
            1,
            "exactly one contender may own a claim"
        );
    }
}
