//! Store configuration.

use std::path::PathBuf;

/// Configuration of a [`crate::TieredStore`]: memory-tier capacities and the
/// optional disk tier.
///
/// Persistence is **off by default** (`root: None`): a default-configured
/// store behaves exactly like the bounded in-memory caches it replaced, so
/// golden snapshots and byte-identical-replay guarantees are untouched
/// unless a root directory is opted into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Root directory of the disk tier; `None` disables persistence.
    /// Entries live at `<root>/<op>/<digest>`.
    pub root: Option<PathBuf>,
    /// Memory-tier capacity in entries (across all shards, min 1).
    pub mem_entries: usize,
    /// Memory-tier capacity in encoded bytes; `0` means unbounded (the
    /// entry cap still applies).
    pub mem_bytes: u64,
    /// Disk-tier capacity in payload bytes per op; `0` means unbounded.
    /// When a write would exceed it, the oldest entries (by modification
    /// time) are deleted first.
    pub disk_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            root: None,
            mem_entries: 256,
            mem_bytes: 0,
            disk_bytes: 0,
        }
    }
}

impl StoreConfig {
    /// Enables the disk tier under `root` (builder style).
    pub fn with_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.root = Some(root.into());
        self
    }

    /// Overrides the memory-tier entry capacity (builder style).
    pub fn with_mem_entries(mut self, entries: usize) -> Self {
        self.mem_entries = entries;
        self
    }

    /// Overrides the memory-tier byte capacity (builder style).
    pub fn with_mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Overrides the disk-tier byte capacity (builder style).
    pub fn with_disk_bytes(mut self, bytes: u64) -> Self {
        self.disk_bytes = bytes;
        self
    }

    /// True when a disk tier is configured.
    pub fn persistent(&self) -> bool {
        self.root.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_memory_only() {
        let config = StoreConfig::default();
        assert!(!config.persistent());
        assert_eq!(config.mem_entries, 256);
        assert_eq!(config.mem_bytes, 0);
        assert_eq!(config.disk_bytes, 0);
    }

    #[test]
    fn builders_compose() {
        let config = StoreConfig::default()
            .with_root("/tmp/store")
            .with_mem_entries(16)
            .with_mem_bytes(1 << 20)
            .with_disk_bytes(1 << 30);
        assert!(config.persistent());
        assert_eq!(
            config.root.as_deref(),
            Some(std::path::Path::new("/tmp/store"))
        );
        assert_eq!(config.mem_entries, 16);
        assert_eq!(config.mem_bytes, 1 << 20);
        assert_eq!(config.disk_bytes, 1 << 30);
    }
}
