//! Scalar ≡ bitplane equivalence suite.
//!
//! Every word-parallel kernel introduced by the bitplane refactor keeps its
//! scalar predecessor in-tree as an executable specification
//! (`compress_groups_scalar`, `from_tensor_and_groups_scalar`,
//! `flip_group_scalar`).  This suite drives both sides with arbitrary i8
//! slices — both encodings, all three hardware group sizes, lengths on
//! either side of the 64-element word boundary — and demands *exact*
//! equality, including bitwise f64 equality for every derived ratio, since
//! the golden reports are byte-compared.

use bitwave_core::bitflip::{flip_group, flip_group_scalar};
use bitwave_core::compress::BcsCodec;
use bitwave_core::group::{extract_groups, group_slice, GroupSize};
use bitwave_core::stats::LayerSparsityStats;
use bitwave_tensor::bitplane::BitplaneTensor;
use bitwave_tensor::bits::Encoding;
use bitwave_tensor::prelude::*;
use bitwave_tensor::quant::QuantParams;
use proptest::prelude::*;

const ENCODINGS: [Encoding; 2] = [Encoding::TwosComplement, Encoding::SignMagnitude];
const HW_GROUPS: [GroupSize; 3] = [GroupSize::G8, GroupSize::G16, GroupSize::G32];

fn tensor_from(values: &[i8]) -> QuantTensor {
    QuantTensor::new(
        Shape::d1(values.len()),
        values.to_vec(),
        QuantParams::unit(),
    )
    .unwrap()
}

/// Asserts both analysis paths agree exactly on one tensor × group size.
fn assert_stats_equal(values: &[i8], group_size: GroupSize) {
    let tensor = tensor_from(values);
    let groups = extract_groups(&tensor, group_size).unwrap();
    let scalar = LayerSparsityStats::from_tensor_and_groups_scalar(&tensor, &groups);
    let packed = LayerSparsityStats::from_tensor_and_planes(&tensor, &groups.to_bitplanes());
    // `LayerSparsityStats` derives PartialEq over all its (f64-bearing)
    // fields, so this is bitwise-exact ratio equality.
    assert_eq!(scalar, packed, "stats diverge at g={}", group_size.len());
}

/// Asserts the packed compressor reproduces the scalar compressor bit for
/// bit (payload, index, sizes and ratios) on one slice × group size.
fn assert_bcs_equal(values: &[i8], group_size: GroupSize) {
    let grouped = group_slice(values, group_size);
    let planes = grouped.to_bitplanes();
    for encoding in ENCODINGS {
        let codec = BcsCodec::new(group_size, encoding);
        let scalar = codec.compress_groups_scalar(grouped.iter(), values.len());
        let packed = codec.compress_groups(grouped.iter(), values.len());
        assert_eq!(scalar, packed, "compressed tensors diverge");
        let sizes = codec.measure_packed(&planes, values.len());
        assert_eq!(sizes.payload_bits, scalar.payload_bits);
        assert_eq!(sizes.index_bits, scalar.index_bits);
        assert_eq!(sizes.original_bits(), scalar.original_bits());
        assert!(
            sizes.compression_ratio_ideal() == scalar.compression_ratio_ideal()
                && sizes.compression_ratio_with_index() == scalar.compression_ratio_with_index(),
            "size-only ratios diverge from scalar compressor"
        );
    }
}

/// Asserts the word-parallel bit-flip matches the scalar reference on one
/// group for a spread of zero-column targets.
fn assert_flip_equal(group: &[i8]) {
    for encoding in ENCODINGS {
        for target in 0..=8u32 {
            let scalar = flip_group_scalar(group, target, encoding).unwrap();
            let packed = flip_group(group, target, encoding).unwrap();
            assert_eq!(scalar.flipped, packed.flipped);
            assert_eq!(scalar.achieved_zero_columns, packed.achieved_zero_columns);
            assert!(
                scalar.distance == packed.distance,
                "flip distances diverge: {} vs {}",
                scalar.distance,
                packed.distance
            );
        }
    }
}

#[test]
fn all_zero_tensors_agree() {
    for len in [1usize, 8, 63, 64, 65, 128, 129, 200] {
        let values = vec![0i8; len];
        for g in HW_GROUPS {
            assert_stats_equal(&values, g);
            assert_bcs_equal(&values, g);
        }
    }
    assert_flip_equal(&[0i8; 16]);
}

#[test]
fn all_negative_tensors_agree() {
    // Includes i8::MIN, which sign-magnitude saturates to 0xFF.
    for len in [7usize, 64, 65, 100] {
        let values: Vec<i8> = (0..len).map(|i| [-1i8, -64, -127, -128][i % 4]).collect();
        for g in HW_GROUPS {
            assert_stats_equal(&values, g);
            assert_bcs_equal(&values, g);
        }
    }
    assert_flip_equal(&[-1i8, -64, -127, -128, -2, -128, -3, -100]);
}

#[test]
fn lengths_around_the_word_boundary_agree() {
    // One word exactly, one bit short, one element over — the tail-masking
    // cases a packed kernel is most likely to get wrong.
    for len in [63usize, 64, 65, 127, 128, 129] {
        let values: Vec<i8> = (0..len).map(|i| (i as i8).wrapping_mul(37)).collect();
        for g in HW_GROUPS {
            assert_stats_equal(&values, g);
            assert_bcs_equal(&values, g);
        }
    }
}

proptest! {
    #[test]
    fn stats_and_bcs_agree_on_arbitrary_slices(
        values in proptest::collection::vec(-128i8..=127, 1..200),
        g in prop_oneof![Just(GroupSize::G8), Just(GroupSize::G16), Just(GroupSize::G32)],
    ) {
        assert_stats_equal(&values, g);
        assert_bcs_equal(&values, g);
    }

    #[test]
    fn flips_agree_on_arbitrary_groups(
        group in proptest::collection::vec(-128i8..=127, 1..=32),
    ) {
        assert_flip_equal(&group);
    }

    #[test]
    fn packed_masks_agree_with_naive_extraction(
        values in proptest::collection::vec(-128i8..=127, 1..200),
        g in prop_oneof![Just(8usize), Just(16), Just(32)],
    ) {
        let planes = BitplaneTensor::from_slice(&values, g);
        for encoding in ENCODINGS {
            for (gi, group) in values.chunks(g).enumerate() {
                let mut naive = 0u8;
                for &v in group {
                    naive |= encoding.encode(v);
                }
                prop_assert_eq!(planes.group_mask(encoding, gi), naive);
            }
        }
    }
}
