//! Zero Run-length Encoding (ZRE), the value-sparsity compression used by
//! SCNN and compared against BCS in Fig. 5.
//!
//! Each symbol is a `(zero_run, value)` pair: `zero_run` (a fixed-width
//! field, 4 bits by default) counts the zeros preceding a non-zero value,
//! which is stored at full 8-bit precision.  Runs longer than the field can
//! express are split by emitting "escape" symbols whose value is zero.
//! Trailing zeros are encoded with escape symbols too, so the format is
//! self-contained and lossless.

use crate::compress::{CompressedTensor, WeightCodec, BITS_PER_WEIGHT};
use serde::{Deserialize, Serialize};

/// One ZRE symbol: `zero_run` zeros followed by `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZreSymbol {
    /// Number of zeros preceding the value (bounded by the run-field width).
    pub zero_run: u8,
    /// The non-zero value, or 0 for an escape / trailing-run symbol.
    pub value: i8,
}

/// Zero run-length codec with a configurable run-length field width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZreCodec {
    run_bits: u8,
}

impl ZreCodec {
    /// Creates a codec with the given run-length field width (1..=8 bits).
    ///
    /// # Panics
    ///
    /// Panics if `run_bits` is 0 or greater than 8.
    pub fn new(run_bits: u8) -> Self {
        assert!(
            (1..=8).contains(&run_bits),
            "run-length field must be 1..=8 bits, got {run_bits}"
        );
        Self { run_bits }
    }

    /// Maximum run length expressible in a single symbol.
    pub fn max_run(&self) -> usize {
        (1usize << self.run_bits) - 1
    }

    /// Bits per encoded symbol (run field + 8-bit value).
    pub fn symbol_bits(&self) -> usize {
        self.run_bits as usize + BITS_PER_WEIGHT
    }
}

impl Default for ZreCodec {
    /// 4-bit run-length field, the configuration SCNN uses.
    fn default() -> Self {
        Self::new(4)
    }
}

impl WeightCodec for ZreCodec {
    fn name(&self) -> &'static str {
        "ZRE"
    }

    fn compress(&self, weights: &[i8]) -> CompressedTensor {
        let max_run = self.max_run();
        let mut symbols = Vec::new();
        let mut run = 0usize;
        for &w in weights {
            if w == 0 {
                run += 1;
                if run == max_run {
                    // Escape: a full run with a zero value keeps the run countable.
                    symbols.push(ZreSymbol {
                        zero_run: max_run as u8,
                        value: 0,
                    });
                    run = 0;
                }
            } else {
                symbols.push(ZreSymbol {
                    zero_run: run as u8,
                    value: w,
                });
                run = 0;
            }
        }
        if run > 0 {
            symbols.push(ZreSymbol {
                zero_run: run as u8,
                value: 0,
            });
        }
        // Value bits are payload; run-length fields are indexing overhead.
        let payload_bits = symbols.len() * BITS_PER_WEIGHT;
        let index_bits = symbols.len() * self.run_bits as usize;
        CompressedTensor::from_zre(
            weights.len(),
            self.run_bits,
            symbols,
            payload_bits,
            index_bits,
        )
    }
}

/// Reconstructs the original weights from ZRE symbols.
pub(crate) fn decompress(symbols: &[ZreSymbol], original_len: usize) -> Vec<i8> {
    let mut out = Vec::with_capacity(original_len);
    for s in symbols {
        out.extend(std::iter::repeat_n(0i8, s.zero_run as usize));
        if s.value != 0 {
            out.push(s.value);
        }
    }
    // Escape symbols with value 0 only contribute their zero run; any missing
    // trailing zeros (possible when the input ended exactly on a full run)
    // are restored here.
    while out.len() < original_len {
        out.push(0);
    }
    out.truncate(original_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dense_data_gains_nothing() {
        let weights: Vec<i8> = (1..=64).map(|i| i as i8).collect();
        let c = ZreCodec::default().compress(&weights);
        assert_eq!(c.decompress(), weights);
        // Every value costs 8 payload bits + 4 index bits: CR < 1.
        assert!(c.compression_ratio_with_index() < 1.0);
    }

    #[test]
    fn sparse_data_compresses() {
        let mut weights = vec![0i8; 256];
        for i in (0..256).step_by(16) {
            weights[i] = 7;
        }
        let c = ZreCodec::default().compress(&weights);
        assert_eq!(c.decompress(), weights);
        assert!(c.compression_ratio_with_index() > 2.0);
    }

    #[test]
    fn long_runs_are_split_with_escapes() {
        let mut weights = vec![0i8; 40];
        weights[39] = 3;
        let c = ZreCodec::new(4).compress(&weights);
        assert_eq!(c.decompress(), weights);
    }

    #[test]
    fn trailing_zeros_are_preserved() {
        let weights = vec![1i8, 0, 0, 0, 0, 0];
        let c = ZreCodec::default().compress(&weights);
        assert_eq!(c.decompress(), weights);
    }

    #[test]
    fn all_zero_input() {
        let weights = vec![0i8; 100];
        let c = ZreCodec::default().compress(&weights);
        assert_eq!(c.decompress(), weights);
        assert!(c.compression_ratio_with_index() > 5.0);
    }

    #[test]
    #[should_panic(expected = "1..=8 bits")]
    fn invalid_run_width_rejected() {
        ZreCodec::new(0);
    }

    #[test]
    fn accessors() {
        let codec = ZreCodec::new(5);
        assert_eq!(codec.max_run(), 31);
        assert_eq!(codec.symbol_bits(), 13);
        assert_eq!(codec.name(), "ZRE");
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(weights in proptest::collection::vec(-127i8..=127, 0..400), run_bits in 1u8..=8) {
            let codec = ZreCodec::new(run_bits);
            let c = codec.compress(&weights);
            prop_assert_eq!(c.decompress(), weights);
        }

        #[test]
        fn roundtrip_sparse(weights in proptest::collection::vec(prop_oneof![4 => Just(0i8), 1 => -127i8..=127], 0..400)) {
            let c = ZreCodec::default().compress(&weights);
            prop_assert_eq!(c.decompress(), weights);
        }
    }
}
