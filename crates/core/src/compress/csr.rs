//! Compressed Sparse Row (CSR) encoding, the second value-sparsity baseline
//! of Fig. 5.
//!
//! The weight stream is viewed as a matrix of rows of `row_len` elements
//! (for a conv layer, one row per output-channel/kernel-position slice).
//! Each non-zero value is stored at 8 bits together with a column index of
//! `ceil(log2(row_len))` bits; every row additionally needs a row-pointer
//! entry wide enough to address all non-zeros.

use crate::compress::{CompressedTensor, WeightCodec, BITS_PER_WEIGHT};
use serde::{Deserialize, Serialize};

/// Non-zero entries of one CSR row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrRow {
    /// Column positions of the non-zero values within the row.
    pub columns: Vec<u32>,
    /// The non-zero values.
    pub values: Vec<i8>,
}

/// CSR codec with a fixed logical row length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrCodec {
    row_len: usize,
}

impl CsrCodec {
    /// Creates a codec that treats the weight stream as rows of `row_len`
    /// elements (the final row may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `row_len == 0`.
    pub fn new(row_len: usize) -> Self {
        assert!(row_len > 0, "CSR row length must be at least 1");
        Self { row_len }
    }

    /// The configured row length.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Bits needed for one column index.
    pub fn column_index_bits(&self) -> usize {
        bits_for(self.row_len.max(2) - 1).max(1)
    }
}

fn bits_for(max_value: usize) -> usize {
    (usize::BITS - max_value.leading_zeros()) as usize
}

impl WeightCodec for CsrCodec {
    fn name(&self) -> &'static str {
        "CSR"
    }

    fn compress(&self, weights: &[i8]) -> CompressedTensor {
        let mut rows = Vec::new();
        let mut nnz = 0usize;
        for chunk in weights.chunks(self.row_len) {
            let mut columns = Vec::new();
            let mut values = Vec::new();
            for (i, &v) in chunk.iter().enumerate() {
                if v != 0 {
                    columns.push(i as u32);
                    values.push(v);
                }
            }
            nnz += values.len();
            rows.push(CsrRow { columns, values });
        }
        let payload_bits = nnz * BITS_PER_WEIGHT;
        let col_bits = self.column_index_bits();
        // Row pointers must be able to address nnz+1 positions.
        let rowptr_bits = bits_for(nnz.max(1)).max(1);
        let index_bits = nnz * col_bits + (rows.len() + 1) * rowptr_bits;
        CompressedTensor::from_csr(weights.len(), self.row_len, rows, payload_bits, index_bits)
    }
}

/// Reconstructs the original weights from CSR rows.
pub(crate) fn decompress(rows: &[CsrRow], row_len: usize, original_len: usize) -> Vec<i8> {
    let mut out = vec![0i8; original_len];
    for (r, row) in rows.iter().enumerate() {
        let base = r * row_len;
        for (&col, &val) in row.columns.iter().zip(&row.values) {
            let idx = base + col as usize;
            if idx < original_len {
                out[idx] = val;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let weights = vec![0i8, 3, 0, 0, -5, 0, 0, 0, 9, 0, 0, 1];
        let c = CsrCodec::new(4).compress(&weights);
        assert_eq!(c.decompress(), weights);
    }

    #[test]
    fn dense_data_expands() {
        let weights: Vec<i8> = (1..=64).map(|i| i as i8).collect();
        let c = CsrCodec::new(16).compress(&weights);
        assert_eq!(c.decompress(), weights);
        assert!(c.compression_ratio_with_index() < 1.0);
    }

    #[test]
    fn very_sparse_data_compresses_well() {
        let mut weights = vec![0i8; 1024];
        weights[100] = 1;
        weights[900] = -7;
        let c = CsrCodec::new(64).compress(&weights);
        assert_eq!(c.decompress(), weights);
        assert!(c.compression_ratio_with_index() > 10.0);
    }

    #[test]
    fn column_index_bits_scale_with_row_len() {
        assert_eq!(CsrCodec::new(2).column_index_bits(), 1);
        assert_eq!(CsrCodec::new(64).column_index_bits(), 6);
        assert_eq!(CsrCodec::new(65).column_index_bits(), 7);
        assert_eq!(CsrCodec::new(1).column_index_bits(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_row_len_rejected() {
        CsrCodec::new(0);
    }

    #[test]
    fn name_and_row_len() {
        let c = CsrCodec::new(32);
        assert_eq!(c.name(), "CSR");
        assert_eq!(c.row_len(), 32);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            weights in proptest::collection::vec(prop_oneof![2 => Just(0i8), 1 => -127i8..=127], 0..400),
            row_len in 1usize..128,
        ) {
            let c = CsrCodec::new(row_len).compress(&weights);
            prop_assert_eq!(c.decompress(), weights);
        }
    }
}
