//! Weight compression codecs (Section III-C, Fig. 5).
//!
//! BitWave's bit-column-sparsity (BCS) compression stores, per group of `G`
//! weights, an 8-bit *zero-column index* plus only the non-zero bit columns
//! (`G` bits each).  The paper compares it against the value-sparsity
//! baselines Zero Run-length Encoding (ZRE, used by SCNN) and Compressed
//! Sparse Row (CSR), both *with* and *without* accounting for the index
//! overhead.  All three codecs here are lossless; compression ratios are
//! reported as `CR = size(original) / size(compressed)`.

mod bcs;
mod csr;
mod zre;

pub use bcs::{BcsCodec, BcsGroup, BcsSizes};
pub use csr::CsrCodec;
pub use zre::ZreCodec;

use serde::{Deserialize, Serialize};

/// Bits per uncompressed Int8 weight.
pub const BITS_PER_WEIGHT: usize = 8;

/// A compressed weight tensor together with its size accounting.
///
/// The payload/index split lets callers reproduce Fig. 5's "ideal CR without
/// index overheads" vs. "real CR" bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedTensor {
    /// Name of the codec that produced this tensor.
    pub codec: String,
    /// Number of Int8 weights in the original tensor.
    pub original_len: usize,
    /// Bits of compressed data payload (weight bits that must be stored).
    pub payload_bits: usize,
    /// Bits of index/metadata overhead required to decompress.
    pub index_bits: usize,
    format: Format,
}

/// Codec-specific compressed representation (kept private so the layout can
/// evolve without breaking the public API).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Format {
    Bcs {
        group_size: usize,
        encoding_sign_magnitude: bool,
        groups: Vec<bcs::BcsGroup>,
    },
    Zre {
        run_bits: u8,
        symbols: Vec<zre::ZreSymbol>,
    },
    Csr {
        row_len: usize,
        rows: Vec<csr::CsrRow>,
    },
}

impl CompressedTensor {
    /// Original size in bits.
    pub fn original_bits(&self) -> usize {
        self.original_len * BITS_PER_WEIGHT
    }

    /// Total compressed size in bits, including index overhead.
    pub fn total_bits(&self) -> usize {
        self.payload_bits + self.index_bits
    }

    /// Compression ratio ignoring index overhead (Fig. 5's "ideal" bars).
    pub fn compression_ratio_ideal(&self) -> f64 {
        safe_ratio(self.original_bits(), self.payload_bits)
    }

    /// Compression ratio including index overhead (Fig. 5's "real" bars).
    pub fn compression_ratio_with_index(&self) -> f64 {
        safe_ratio(self.original_bits(), self.total_bits())
    }

    /// Losslessly reconstructs the original Int8 weights.
    pub fn decompress(&self) -> Vec<i8> {
        match &self.format {
            Format::Bcs {
                group_size,
                encoding_sign_magnitude,
                groups,
            } => bcs::decompress(
                groups,
                *group_size,
                *encoding_sign_magnitude,
                self.original_len,
            ),
            Format::Zre { symbols, .. } => zre::decompress(symbols, self.original_len),
            Format::Csr { row_len, rows } => csr::decompress(rows, *row_len, self.original_len),
        }
    }

    pub(crate) fn from_bcs(
        original_len: usize,
        group_size: usize,
        encoding_sign_magnitude: bool,
        groups: Vec<bcs::BcsGroup>,
        payload_bits: usize,
        index_bits: usize,
    ) -> Self {
        Self {
            codec: "BCS".to_string(),
            original_len,
            payload_bits,
            index_bits,
            format: Format::Bcs {
                group_size,
                encoding_sign_magnitude,
                groups,
            },
        }
    }

    pub(crate) fn from_zre(
        original_len: usize,
        run_bits: u8,
        symbols: Vec<zre::ZreSymbol>,
        payload_bits: usize,
        index_bits: usize,
    ) -> Self {
        Self {
            codec: "ZRE".to_string(),
            original_len,
            payload_bits,
            index_bits,
            format: Format::Zre { run_bits, symbols },
        }
    }

    pub(crate) fn from_csr(
        original_len: usize,
        row_len: usize,
        rows: Vec<csr::CsrRow>,
        payload_bits: usize,
        index_bits: usize,
    ) -> Self {
        Self {
            codec: "CSR".to_string(),
            original_len,
            payload_bits,
            index_bits,
            format: Format::Csr { row_len, rows },
        }
    }
}

pub(crate) fn safe_ratio(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        f64::INFINITY
    } else {
        numerator as f64 / denominator as f64
    }
}

/// A lossless weight compression codec.
pub trait WeightCodec {
    /// Short human-readable codec name ("BCS", "ZRE", "CSR").
    fn name(&self) -> &'static str;

    /// Compresses a flat slice of Int8 weights.
    fn compress(&self, weights: &[i8]) -> CompressedTensor;

    /// Convenience: compression ratio including index overhead for `weights`.
    fn compression_ratio(&self, weights: &[i8]) -> f64 {
        self.compress(weights).compression_ratio_with_index()
    }
}

/// One row of the Fig. 5-style codec comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionReport {
    /// Codec name.
    pub codec: String,
    /// Optional group size (only meaningful for BCS).
    pub group_size: Option<usize>,
    /// Compression ratio without index overhead.
    pub cr_ideal: f64,
    /// Compression ratio including index overhead.
    pub cr_with_index: f64,
}

impl CompressionReport {
    /// Builds a report row from a compressed tensor.
    pub fn from_compressed(compressed: &CompressedTensor, group_size: Option<usize>) -> Self {
        Self {
            codec: compressed.codec.clone(),
            group_size,
            cr_ideal: compressed.compression_ratio_ideal(),
            cr_with_index: compressed.compression_ratio_with_index(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupSize;
    use bitwave_tensor::bits::Encoding;

    fn sample_weights() -> Vec<i8> {
        // Small-magnitude mix with some exact zeros: compressible by all codecs.
        (0..256)
            .map(|i| match i % 8 {
                0 | 3 => 0i8,
                1 => 2,
                2 => -3,
                4 => 5,
                5 => -1,
                6 => 7,
                _ => -6,
            })
            .collect()
    }

    #[test]
    fn all_codecs_are_lossless_on_sample() {
        let w = sample_weights();
        let codecs: Vec<Box<dyn WeightCodec>> = vec![
            Box::new(BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude)),
            Box::new(ZreCodec::default()),
            Box::new(CsrCodec::new(64)),
        ];
        for codec in codecs {
            let c = codec.compress(&w);
            assert_eq!(c.decompress(), w, "codec {} is not lossless", codec.name());
            assert!(c.total_bits() >= c.payload_bits);
        }
    }

    #[test]
    fn report_reflects_ratios() {
        let w = sample_weights();
        let c = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude).compress(&w);
        let r = CompressionReport::from_compressed(&c, Some(8));
        assert_eq!(r.codec, "BCS");
        assert!(r.cr_ideal >= r.cr_with_index);
        assert_eq!(r.group_size, Some(8));
    }

    #[test]
    fn ideal_ratio_of_incompressible_data_is_at_most_slightly_below_one() {
        // Alternating +127/-127 has no zero bits in sign-magnitude except none.
        let w: Vec<i8> = (0..64)
            .map(|i| if i % 2 == 0 { 127 } else { -127 })
            .collect();
        let c = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude).compress(&w);
        assert!(c.compression_ratio_with_index() <= 1.0);
        assert_eq!(c.decompress(), w);
    }

    #[test]
    fn safe_ratio_handles_zero_denominator() {
        assert_eq!(safe_ratio(10, 0), f64::INFINITY);
        assert_eq!(safe_ratio(10, 5), 2.0);
    }
}
