//! Bit-Column-Sparsity (BCS) compression — the paper's lossless weight
//! compression format (Section III-C, Fig. 4b).
//!
//! Per group of `G` weights the format stores:
//!
//! * one 8-bit **zero-column index**: bit `b` set ⇔ bit column `b` is
//!   non-zero and therefore present in the payload;
//! * for every non-zero column, `G` payload bits (one bit per weight at that
//!   significance), stored column-major so the hardware can stream one
//!   column per cycle straight into the BCE array without decompression.

use crate::compress::{safe_ratio, CompressedTensor, WeightCodec, BITS_PER_WEIGHT};
use crate::group::{group_slice, GroupSize};
use bitwave_tensor::bitplane::{BitplaneTensor, WORD_LEN};
use bitwave_tensor::bits::{pack_column, Encoding, WORD_BITS};
use serde::{Deserialize, Serialize};

/// One compressed weight group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BcsGroup {
    /// Non-zero-column index: bit `b` set means column `b` is stored.
    pub index: u8,
    /// The stored columns, LSB-significance first, each packed into a `u64`
    /// (bit *i* of a word is weight *i* of the group).
    pub columns: Vec<u64>,
}

impl BcsGroup {
    /// Number of stored (non-zero) columns.
    pub fn nonzero_columns(&self) -> usize {
        self.index.count_ones() as usize
    }

    /// Number of skipped (zero) columns.
    pub fn zero_columns(&self) -> usize {
        WORD_BITS - self.nonzero_columns()
    }
}

/// The BCS codec, parameterised by group size and binary encoding.
///
/// The paper always pairs BCS with the sign-magnitude encoding
/// ([`Encoding::SignMagnitude`]); the two's-complement variant exists to
/// reproduce the Fig. 4(a) comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcsCodec {
    group_size: GroupSize,
    encoding: Encoding,
}

impl BcsCodec {
    /// Creates a codec for the given group size and encoding.
    pub fn new(group_size: GroupSize, encoding: Encoding) -> Self {
        Self {
            group_size,
            encoding,
        }
    }

    /// The configured group size.
    pub fn group_size(&self) -> GroupSize {
        self.group_size
    }

    /// The configured binary encoding.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Compresses an explicit list of groups (used when the caller has
    /// already grouped along the input-channel axis of a 4-D weight).
    ///
    /// Groups shorter than the configured size are zero-padded, exactly as
    /// [`crate::group::extract_groups`] pads trailing groups; the padding
    /// never adds payload columns.  Internally the groups are bitplane-packed
    /// and routed through [`BcsCodec::compress_packed`] whenever the group
    /// size fits a plane word.
    pub fn compress_groups<'a, I>(&self, groups: I, original_len: usize) -> CompressedTensor
    where
        I: Iterator<Item = &'a [i8]>,
    {
        let g = self.group_size.len();
        if g > WORD_LEN {
            return self.compress_groups_scalar(groups, original_len);
        }
        let mut padded = Vec::new();
        for group in groups {
            assert!(group.len() <= g, "group longer than configured group size");
            padded.extend_from_slice(group);
            padded.resize(padded.len() + (g - group.len()), 0);
        }
        let planes = BitplaneTensor::from_slice(&padded, g);
        self.compress_packed(&planes, original_len)
    }

    /// Compresses an **already bitplane-packed** tensor — the zero-copy
    /// pipeline path, where one packing feeds statistics, compression and the
    /// accelerator profile alike.
    ///
    /// Per group, the zero-column index is eight window tests and each stored
    /// column is one window extraction; a fixed scratch buffer keeps the only
    /// per-group allocation the `columns` vector the output format requires
    /// (all-zero groups allocate nothing).
    ///
    /// # Panics
    ///
    /// Panics if `planes` was packed at a different group size.
    pub fn compress_packed(
        &self,
        planes: &BitplaneTensor,
        original_len: usize,
    ) -> CompressedTensor {
        let g = self.group_size.len();
        assert_eq!(
            planes.group_size(),
            g,
            "bitplanes were packed at a different group size"
        );
        let num_groups = planes.num_groups();
        let mut out_groups = Vec::with_capacity(num_groups);
        let mut payload_bits = 0usize;
        let mut scratch = [0u64; WORD_BITS];
        for gi in 0..num_groups {
            let group = planes.group_planes(self.encoding, gi);
            let index = group.nonzero_column_mask();
            let mut stored = 0usize;
            for b in 0..WORD_BITS {
                if (index >> b) & 1 == 1 {
                    scratch[stored] = group.plane(b);
                    stored += 1;
                }
            }
            payload_bits += stored * g;
            out_groups.push(BcsGroup {
                index,
                columns: scratch[..stored].to_vec(),
            });
        }
        let index_bits = num_groups * WORD_BITS;
        CompressedTensor::from_bcs(
            original_len,
            g,
            self.encoding == Encoding::SignMagnitude,
            out_groups,
            payload_bits,
            index_bits,
        )
    }

    /// Size accounting of the BCS compression, straight from plane popcounts:
    /// no [`BcsGroup`] payload is ever materialised.  This is what the
    /// pipeline's compression summaries use — they only need bit counts and
    /// ratios, not the compressed stream itself.
    ///
    /// The counts are identical to `compress_packed(planes, original_len)`
    /// followed by reading `payload_bits`/`index_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `planes` was packed at a different group size.
    pub fn measure_packed(&self, planes: &BitplaneTensor, original_len: usize) -> BcsSizes {
        let g = self.group_size.len();
        assert_eq!(
            planes.group_size(),
            g,
            "bitplanes were packed at a different group size"
        );
        BcsSizes {
            original_len,
            group_size: g,
            payload_bits: planes.total_nonzero_columns(self.encoding) as usize * g,
            index_bits: planes.num_groups() * WORD_BITS,
        }
    }

    /// The pre-bitplane scalar compressor, kept as the reference
    /// implementation for the scalar≡bitplane equivalence tests and the
    /// `bench_sparsity` speedup gate.
    pub fn compress_groups_scalar<'a, I>(&self, groups: I, original_len: usize) -> CompressedTensor
    where
        I: Iterator<Item = &'a [i8]>,
    {
        let g = self.group_size.len();
        let mut out_groups = Vec::new();
        let mut payload_bits = 0usize;
        for group in groups {
            assert!(group.len() <= g, "group longer than configured group size");
            let mut index = 0u8;
            for &v in group {
                index |= self.encoding.encode(v);
            }
            let mut columns = Vec::with_capacity(index.count_ones() as usize);
            for b in 0..WORD_BITS {
                if (index >> b) & 1 == 1 {
                    columns.push(pack_column(group, b, self.encoding));
                }
            }
            payload_bits += columns.len() * g;
            out_groups.push(BcsGroup { index, columns });
        }
        let index_bits = out_groups.len() * WORD_BITS;
        CompressedTensor::from_bcs(
            original_len,
            g,
            self.encoding == Encoding::SignMagnitude,
            out_groups,
            payload_bits,
            index_bits,
        )
    }
}

/// BCS size accounting without the compressed stream (see
/// [`BcsCodec::measure_packed`]).  The ratio methods mirror
/// [`CompressedTensor`]'s exactly, so summaries built from either source are
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcsSizes {
    /// Number of Int8 weights in the original (unpadded) tensor.
    pub original_len: usize,
    /// Group size the sizes were measured at.
    pub group_size: usize,
    /// Total payload bits (non-zero columns × group size).
    pub payload_bits: usize,
    /// Total index bits (groups × 8).
    pub index_bits: usize,
}

impl BcsSizes {
    /// Original size in bits.
    pub fn original_bits(&self) -> usize {
        self.original_len * BITS_PER_WEIGHT
    }

    /// Total compressed size in bits, including index overhead.
    pub fn total_bits(&self) -> usize {
        self.payload_bits + self.index_bits
    }

    /// Compression ratio ignoring index overhead (Fig. 5's "ideal" bars).
    pub fn compression_ratio_ideal(&self) -> f64 {
        safe_ratio(self.original_bits(), self.payload_bits)
    }

    /// Compression ratio including index overhead (Fig. 5's "real" bars).
    pub fn compression_ratio_with_index(&self) -> f64 {
        safe_ratio(self.original_bits(), self.total_bits())
    }
}

impl WeightCodec for BcsCodec {
    fn name(&self) -> &'static str {
        "BCS"
    }

    fn compress(&self, weights: &[i8]) -> CompressedTensor {
        let groups = group_slice(weights, self.group_size);
        self.compress_groups(groups.iter(), weights.len())
    }
}

/// Reconstructs the original weights from BCS groups (crate-internal; called
/// through [`CompressedTensor::decompress`]).
pub(crate) fn decompress(
    groups: &[BcsGroup],
    group_size: usize,
    sign_magnitude: bool,
    original_len: usize,
) -> Vec<i8> {
    let encoding = if sign_magnitude {
        Encoding::SignMagnitude
    } else {
        Encoding::TwosComplement
    };
    let mut out = Vec::with_capacity(groups.len() * group_size);
    let mut bytes = vec![0u8; group_size];
    for group in groups {
        bytes.fill(0);
        let mut col_iter = group.columns.iter();
        for b in 0..WORD_BITS {
            if (group.index >> b) & 1 == 1 {
                let word = *col_iter
                    .next()
                    .expect("column count matches index popcount");
                for (i, byte) in bytes.iter_mut().enumerate() {
                    if (word >> i) & 1 == 1 {
                        *byte |= 1 << b;
                    }
                }
            }
        }
        out.extend(bytes.iter().map(|&b| encoding.decode(b)));
    }
    out.truncate(original_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn compresses_paper_style_group() {
        // A group with many shared zero columns in sign-magnitude.
        let weights = [1i8, -2, 3, -1, 2, -3, 1, 2];
        let codec = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude);
        let c = codec.compress(&weights);
        assert_eq!(c.decompress(), weights);
        // Magnitudes use only bits 0 and 1, plus the sign column: 3 non-zero
        // columns out of 8 -> payload 3*8 = 24 bits, index 8 bits.
        assert_eq!(c.payload_bits, 24);
        assert_eq!(c.index_bits, 8);
        assert!((c.compression_ratio_with_index() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_complement_vs_sign_magnitude_on_small_negatives() {
        let weights: Vec<i8> = vec![-1, -2, -3, -1, -2, -3, -2, -1];
        let tc = BcsCodec::new(GroupSize::G8, Encoding::TwosComplement).compress(&weights);
        let sm = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude).compress(&weights);
        assert!(sm.payload_bits < tc.payload_bits);
        assert_eq!(tc.decompress(), weights);
        assert_eq!(sm.decompress(), weights);
    }

    #[test]
    fn all_zero_weights_compress_to_index_only() {
        let weights = vec![0i8; 32];
        let c = BcsCodec::new(GroupSize::G32, Encoding::SignMagnitude).compress(&weights);
        assert_eq!(c.payload_bits, 0);
        assert_eq!(c.index_bits, 8);
        assert_eq!(c.decompress(), weights);
        assert!((c.compression_ratio_with_index() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn partial_trailing_group_is_padded_and_truncated_back() {
        let weights: Vec<i8> = (0..20).map(|i| (i - 10) as i8).collect();
        let codec = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude);
        let c = codec.compress(&weights);
        assert_eq!(c.decompress(), weights);
        assert_eq!(c.original_len, 20);
        // 3 groups worth of index bits.
        assert_eq!(c.index_bits, 24);
    }

    #[test]
    fn group_accessors() {
        let weights = [0i8, 0, 0, 0, 1, 1, 1, 1];
        let c = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude).compress(&weights);
        let groups = match c.decompress().len() {
            8 => c,
            _ => unreachable!(),
        };
        drop(groups);
        let codec = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude);
        assert_eq!(codec.group_size(), GroupSize::G8);
        assert_eq!(codec.encoding(), Encoding::SignMagnitude);
        assert_eq!(codec.name(), "BCS");
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_weights(
            weights in proptest::collection::vec(-127i8..=127, 1..512),
            g in prop_oneof![Just(8usize), Just(16), Just(32), 1usize..64],
        ) {
            for encoding in [Encoding::TwosComplement, Encoding::SignMagnitude] {
                let codec = BcsCodec::new(GroupSize::from_len(g), encoding);
                let c = codec.compress(&weights);
                prop_assert_eq!(c.decompress(), weights.clone());
            }
        }

        #[test]
        fn payload_never_exceeds_original(weights in proptest::collection::vec(-127i8..=127, 1..256)) {
            let codec = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude);
            let c = codec.compress(&weights);
            // Payload bits can never exceed the padded original size.
            let padded = weights.len().div_ceil(8) * 8 * 8;
            prop_assert!(c.payload_bits <= padded);
        }

        #[test]
        fn index_popcount_matches_column_count(weights in proptest::collection::vec(-127i8..=127, 8..64)) {
            let codec = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude);
            let groups = group_slice(&weights, GroupSize::G8);
            let c = codec.compress_groups(groups.iter(), weights.len());
            prop_assert_eq!(c.decompress(), weights);
        }

        #[test]
        fn packed_compression_equals_scalar(
            weights in proptest::collection::vec(-127i8..=127, 1..400),
            g in prop_oneof![Just(8usize), Just(16), Just(32), 1usize..=64],
        ) {
            for encoding in [Encoding::TwosComplement, Encoding::SignMagnitude] {
                let codec = BcsCodec::new(GroupSize::from_len(g), encoding);
                let groups = group_slice(&weights, GroupSize::from_len(g));
                let scalar = codec.compress_groups_scalar(groups.iter(), weights.len());
                let planes = groups.to_bitplanes();
                let packed = codec.compress_packed(&planes, weights.len());
                prop_assert_eq!(&packed, &scalar);
                let sizes = codec.measure_packed(&planes, weights.len());
                prop_assert_eq!(sizes.payload_bits, scalar.payload_bits);
                prop_assert_eq!(sizes.index_bits, scalar.index_bits);
                prop_assert_eq!(sizes.original_bits(), scalar.original_bits());
                prop_assert_eq!(sizes.total_bits(), scalar.total_bits());
                prop_assert_eq!(
                    sizes.compression_ratio_ideal(),
                    scalar.compression_ratio_ideal()
                );
                prop_assert_eq!(
                    sizes.compression_ratio_with_index(),
                    scalar.compression_ratio_with_index()
                );
            }
        }
    }
}
