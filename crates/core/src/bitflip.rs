//! The Bit-Flip weight perturbation (Section III-D, Fig. 4c).
//!
//! Bit-Flip is a *one-shot, training-free* optimisation: it rewrites each
//! weight group so that at least a target number of bit columns become zero,
//! choosing per group the replacement vector **closest in Euclidean distance
//! to the original** (the paper's example: `-3 → -4` at distance 1 frees a
//! bit column).  Because the constraint is "at most `8 - target` non-zero
//! columns", the search space per group is the set of 8-bit column masks of
//! bounded population count; for every candidate mask the best replacement of
//! each weight is the nearest value whose sign-magnitude encoding uses only
//! allowed columns.

use crate::error::CoreError;
use crate::group::{extract_groups, reassemble_tensor, GroupSize};
use bitwave_tensor::bitplane::GroupPlanes;
use bitwave_tensor::bits::{zero_column_count, Encoding, WORD_BITS};
use bitwave_tensor::metrics::euclidean_distance_i8;
use bitwave_tensor::QuantTensor;
use serde::{Deserialize, Serialize};

/// Result of flipping one weight group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlipOutcome {
    /// The flipped weight group.
    pub flipped: Vec<i8>,
    /// Euclidean distance between the original and the flipped group.
    pub distance: f64,
    /// Zero-column count of the flipped group (always ≥ the requested
    /// target).
    pub achieved_zero_columns: u32,
}

/// Aggregate statistics of flipping a whole weight slice or tensor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FlipStats {
    /// Number of groups processed.
    pub groups: usize,
    /// Number of groups that had to be modified.
    pub groups_modified: usize,
    /// Root-mean-square perturbation over all weights.
    pub rms_perturbation: f64,
    /// Mean number of zero columns per group after flipping.
    pub mean_zero_columns: f64,
}

/// Flips a single group so that it has at least `target_zero_columns` zero
/// bit-columns under `encoding`, minimising the Euclidean distance to the
/// original group.
///
/// `target_zero_columns` is clamped to `0..=8`.  A target of 8 forces the
/// whole group to zero.
///
/// The search runs on the group's packed bitplanes: for each candidate
/// column mask, the OR of the *disallowed* planes flags exactly the
/// elements a projection must modify (every flagged element moves by at
/// least 1, every clean element projects to itself).  That word gives a
/// free lower bound — `popcount(dirty)` — used to skip dominated masks
/// without building their projections, and restricts the per-element work
/// of surviving masks to the flagged elements.  The selected mask, the
/// flipped group and the distance are identical to the exhaustive scalar
/// search ([`flip_group_scalar`]): masks are enumerated in the same order,
/// a candidate replaces the incumbent only on strictly smaller cost, and
/// costs are exact integers.
///
/// # Errors
///
/// Returns [`CoreError::InvalidGroupLength`] if `group` is empty or longer
/// than 64 elements (the hardware group sizes are 8/16/32).
pub fn flip_group(
    group: &[i8],
    target_zero_columns: u32,
    encoding: Encoding,
) -> Result<FlipOutcome, CoreError> {
    if group.is_empty() || group.len() > 64 {
        return Err(CoreError::InvalidGroupLength(group.len()));
    }
    let target = target_zero_columns.min(WORD_BITS as u32);
    let planes = GroupPlanes::pack(group, encoding);
    let current = (!planes.nonzero_column_mask()).count_ones();
    if current >= target {
        return Ok(FlipOutcome {
            flipped: group.to_vec(),
            distance: 0.0,
            achieved_zero_columns: current,
        });
    }

    let allowed_nonzero = WORD_BITS as u32 - target;
    let mut best: Option<(Vec<i8>, u64)> = None;
    // Enumerate all 8-bit masks with exactly `allowed_nonzero` allowed
    // columns.  Larger allowed sets dominate smaller ones, so only the
    // maximal popcount needs to be searched.
    for mask in 0u16..=0xFF {
        let mask = mask as u8;
        if mask.count_ones() != allowed_nonzero {
            continue;
        }
        let budget = best.as_ref().map_or(u64::MAX, |&(_, cost)| cost);
        let dirty = planes.outside_mask(mask);
        if u64::from(dirty.count_ones()) >= budget {
            continue;
        }
        let projection = ColumnProjection::new(mask, encoding);
        let mut candidate = group.to_vec();
        let mut cost = 0u64;
        let mut remaining = dirty;
        while remaining != 0 {
            let i = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let replacement = projection.nearest(candidate[i]);
            let d = i64::from(candidate[i]) - i64::from(replacement);
            cost += (d * d) as u64;
            if cost >= budget {
                break;
            }
            candidate[i] = replacement;
        }
        if cost < budget {
            best = Some((candidate, cost));
        }
    }
    let (flipped, cost) =
        best.expect("at least one mask with the requested popcount always exists");
    let achieved = (!GroupPlanes::pack(&flipped, encoding).nonzero_column_mask()).count_ones();
    debug_assert!(achieved >= target);
    Ok(FlipOutcome {
        // Squared distances are sums of at most 64 squares of |d| <= 254,
        // far below 2^53: the u64 cost converts to f64 exactly.
        distance: (cost as f64).sqrt(),
        achieved_zero_columns: achieved,
        flipped,
    })
}

/// The pre-bitplane exhaustive search, kept as the reference implementation
/// for the scalar≡bitplane equivalence tests and the `bench_bitflip`
/// comparison; behaviourally identical to [`flip_group`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidGroupLength`] if `group` is empty or longer
/// than 64 elements.
pub fn flip_group_scalar(
    group: &[i8],
    target_zero_columns: u32,
    encoding: Encoding,
) -> Result<FlipOutcome, CoreError> {
    if group.is_empty() || group.len() > 64 {
        return Err(CoreError::InvalidGroupLength(group.len()));
    }
    let target = target_zero_columns.min(WORD_BITS as u32);
    let current = zero_column_count(group, encoding);
    if current >= target {
        return Ok(FlipOutcome {
            flipped: group.to_vec(),
            distance: 0.0,
            achieved_zero_columns: current,
        });
    }

    let allowed_nonzero = WORD_BITS as u32 - target;
    let mut best: Option<(Vec<i8>, f64)> = None;
    for mask in 0u16..=0xFF {
        let mask = mask as u8;
        if mask.count_ones() != allowed_nonzero {
            continue;
        }
        let candidate = project_group(group, mask, encoding);
        let cost = squared_distance(group, &candidate);
        match &best {
            Some((_, best_cost)) if *best_cost <= cost => {}
            _ => best = Some((candidate, cost)),
        }
    }
    let (flipped, cost) =
        best.expect("at least one mask with the requested popcount always exists");
    let achieved = zero_column_count(&flipped, encoding);
    debug_assert!(achieved >= target);
    Ok(FlipOutcome {
        distance: cost.sqrt(),
        achieved_zero_columns: achieved,
        flipped,
    })
}

/// Per-mask projection tables: the values reachable using only the allowed
/// columns, pre-computed once per candidate mask instead of once per
/// element.
enum ColumnProjection {
    /// Sign-magnitude: sorted representable magnitudes plus whether the sign
    /// column is allowed.
    SignMagnitude {
        magnitudes: Vec<u8>,
        sign_allowed: bool,
    },
    /// Two's complement: sorted representable values.
    TwosComplement { values: Vec<i8> },
}

impl ColumnProjection {
    fn new(mask: u8, encoding: Encoding) -> Self {
        match encoding {
            Encoding::SignMagnitude => ColumnProjection::SignMagnitude {
                magnitudes: representable_magnitudes(mask & 0x7F),
                sign_allowed: mask & 0x80 != 0,
            },
            Encoding::TwosComplement => ColumnProjection::TwosComplement {
                values: representable_twos_complement(mask),
            },
        }
    }

    /// Nearest representable value — the same selection (including
    /// tie-breaking) as [`project_group`] applies per element.
    #[inline]
    fn nearest(&self, value: i8) -> i8 {
        match self {
            ColumnProjection::SignMagnitude {
                magnitudes,
                sign_allowed,
            } => nearest_sign_magnitude(value, magnitudes, *sign_allowed),
            ColumnProjection::TwosComplement { values } => nearest_value(value, values),
        }
    }
}

/// Projects every weight of `group` onto the nearest value whose encoding
/// uses only the columns allowed by `mask`.
fn project_group(group: &[i8], mask: u8, encoding: Encoding) -> Vec<i8> {
    match encoding {
        Encoding::SignMagnitude => {
            let magnitudes = representable_magnitudes(mask & 0x7F);
            let sign_allowed = mask & 0x80 != 0;
            group
                .iter()
                .map(|&w| nearest_sign_magnitude(w, &magnitudes, sign_allowed))
                .collect()
        }
        Encoding::TwosComplement => {
            let values = representable_twos_complement(mask);
            group.iter().map(|&w| nearest_value(w, &values)).collect()
        }
    }
}

/// All magnitudes expressible using only the allowed magnitude bits, sorted
/// ascending.
fn representable_magnitudes(allowed: u8) -> Vec<u8> {
    let mut out = Vec::new();
    // Iterate over all submasks of `allowed` (including 0).
    let mut sub = allowed;
    loop {
        out.push(sub);
        if sub == 0 {
            break;
        }
        sub = (sub - 1) & allowed;
    }
    out.sort_unstable();
    out
}

/// All two's-complement byte values whose set bits are within `allowed`,
/// decoded to `i8` and sorted.
fn representable_twos_complement(allowed: u8) -> Vec<i8> {
    let mut out = Vec::new();
    let mut sub = allowed;
    loop {
        out.push(sub as i8);
        if sub == 0 {
            break;
        }
        sub = (sub - 1) & allowed;
    }
    out.sort_unstable();
    out
}

fn nearest_sign_magnitude(value: i8, magnitudes: &[u8], sign_allowed: bool) -> i8 {
    let target_magnitude = i16::from(value).unsigned_abs() as u8;
    let nearest_mag = nearest_in_sorted_u8(target_magnitude, magnitudes);
    if value >= 0 {
        nearest_mag as i8
    } else if sign_allowed {
        -(i16::from(nearest_mag)) as i8
    } else {
        // Sign column must stay zero: the best non-negative replacement of a
        // negative value is the smallest representable magnitude (including 0).
        magnitudes[0] as i8
    }
}

fn nearest_in_sorted_u8(target: u8, sorted: &[u8]) -> u8 {
    debug_assert!(!sorted.is_empty());
    let mut best = sorted[0];
    let mut best_dist = i16::from(best).abs_diff(i16::from(target));
    for &m in sorted {
        let d = i16::from(m).abs_diff(i16::from(target));
        if d < best_dist {
            best = m;
            best_dist = d;
        }
    }
    best
}

fn nearest_value(value: i8, sorted: &[i8]) -> i8 {
    debug_assert!(!sorted.is_empty());
    let mut best = sorted[0];
    let mut best_dist = (i16::from(best) - i16::from(value)).unsigned_abs();
    for &v in sorted {
        let d = (i16::from(v) - i16::from(value)).unsigned_abs();
        if d < best_dist {
            best = v;
            best_dist = d;
        }
    }
    best
}

fn squared_distance(a: &[i8], b: &[i8]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum()
}

/// Flips every group of a flat weight slice.  Returns the flipped weights and
/// aggregate statistics.
///
/// # Errors
///
/// Returns [`CoreError::InvalidGroupLength`] for group sizes outside `1..=64`.
pub fn flip_slice(
    weights: &[i8],
    group_size: GroupSize,
    target_zero_columns: u32,
    encoding: Encoding,
) -> Result<(Vec<i8>, FlipStats), CoreError> {
    let g = group_size.len();
    let mut out = Vec::with_capacity(weights.len());
    let mut stats = FlipStats::default();
    let mut squared_sum = 0.0f64;
    let mut zero_cols = 0u64;
    for chunk in weights.chunks(g) {
        let outcome = flip_group(chunk, target_zero_columns, encoding)?;
        stats.groups += 1;
        if outcome.distance > 0.0 {
            stats.groups_modified += 1;
        }
        squared_sum += outcome.distance * outcome.distance;
        zero_cols += u64::from(outcome.achieved_zero_columns);
        out.extend_from_slice(&outcome.flipped[..chunk.len()]);
    }
    if stats.groups > 0 && !weights.is_empty() {
        stats.rms_perturbation = (squared_sum / weights.len() as f64).sqrt();
        stats.mean_zero_columns = zero_cols as f64 / stats.groups as f64;
    }
    Ok((out, stats))
}

/// Flips a whole weight tensor, grouping along the input-channel axis exactly
/// as [`extract_groups`] does, and returns the flipped tensor plus stats.
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedRank`] for ungroupable tensors and
/// [`CoreError::InvalidGroupLength`] for group sizes outside `1..=64`.
pub fn flip_tensor(
    tensor: &QuantTensor,
    group_size: GroupSize,
    target_zero_columns: u32,
    encoding: Encoding,
) -> Result<(QuantTensor, FlipStats), CoreError> {
    let mut groups = extract_groups(tensor, group_size)?;
    let mut stats = FlipStats::default();
    let mut squared_sum = 0.0f64;
    let mut zero_cols = 0u64;
    for group in groups.iter_mut() {
        let outcome = flip_group(group, target_zero_columns, encoding)?;
        stats.groups += 1;
        if outcome.distance > 0.0 {
            stats.groups_modified += 1;
        }
        squared_sum += outcome.distance * outcome.distance;
        zero_cols += u64::from(outcome.achieved_zero_columns);
        group.copy_from_slice(&outcome.flipped);
    }
    let flipped = reassemble_tensor(tensor, &groups)?;
    if stats.groups > 0 {
        let n = tensor.data().len().max(1) as f64;
        stats.rms_perturbation = (squared_sum / n).sqrt();
        stats.mean_zero_columns = zero_cols as f64 / stats.groups as f64;
    }
    // The distance accounting above includes padded elements, which are zero
    // in both the original and flipped groups, so the RMS is exact.
    let exact_distance = euclidean_distance_i8(tensor.data(), flipped.data());
    stats.rms_perturbation = exact_distance / (tensor.data().len().max(1) as f64).sqrt();
    Ok((flipped, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_tensor::prelude::*;
    use bitwave_tensor::quant::QuantParams;
    use proptest::prelude::*;

    #[test]
    fn already_sparse_group_is_untouched() {
        let group = [0i8, 1, 0, 1];
        let out = flip_group(&group, 4, Encoding::SignMagnitude).unwrap();
        assert_eq!(out.flipped, group);
        assert_eq!(out.distance, 0.0);
    }

    #[test]
    fn paper_example_minus_three_flips_to_minus_four() {
        // Fig. 4(c): targeting five zero columns tunes -3 to -4 at distance 1.
        // Build a group whose other elements already only use bit 2 and the sign.
        let group = [-3i8, 4, -4, 4];
        let out = flip_group(&group, 6, Encoding::SignMagnitude).unwrap();
        assert_eq!(out.flipped, vec![-4, 4, -4, 4]);
        assert_eq!(out.distance, 1.0);
        assert!(out.achieved_zero_columns >= 6);
    }

    #[test]
    fn target_eight_zero_columns_forces_all_zero() {
        let group = [13i8, -77, 3, 120];
        let out = flip_group(&group, 8, Encoding::SignMagnitude).unwrap();
        assert!(out.flipped.iter().all(|&v| v == 0));
        assert_eq!(out.achieved_zero_columns, 8);
    }

    #[test]
    fn target_zero_never_changes_anything() {
        let group = [13i8, -77, 3, 120];
        let out = flip_group(&group, 0, Encoding::SignMagnitude).unwrap();
        assert_eq!(out.flipped, group);
    }

    #[test]
    fn twos_complement_flipping_also_satisfies_constraint() {
        let group = [-3i8, 5, -7, 2, 9, -1, 0, 4];
        for target in 1..=6u32 {
            let out = flip_group(&group, target, Encoding::TwosComplement).unwrap();
            assert!(
                out.achieved_zero_columns >= target,
                "target {target} not met: {:?}",
                out.flipped
            );
        }
    }

    #[test]
    fn distance_grows_monotonically_with_target() {
        let group = [33i8, -75, 14, -2, 91, -60, 7, 8];
        let mut last = 0.0;
        for target in 0..=8u32 {
            let out = flip_group(&group, target, Encoding::SignMagnitude).unwrap();
            assert!(
                out.distance >= last - 1e-9,
                "distance should not decrease with a stricter target"
            );
            last = out.distance;
        }
    }

    #[test]
    fn flip_slice_statistics() {
        let weights: Vec<i8> = (0..64).map(|i| ((i * 7) % 23 - 11) as i8).collect();
        let (flipped, stats) =
            flip_slice(&weights, GroupSize::G8, 5, Encoding::SignMagnitude).unwrap();
        assert_eq!(flipped.len(), weights.len());
        assert_eq!(stats.groups, 8);
        assert!(stats.mean_zero_columns >= 5.0);
        assert!(stats.rms_perturbation > 0.0);
        assert!(stats.groups_modified > 0);
    }

    #[test]
    fn flip_tensor_respects_grouping_axis() {
        let gen = WeightGenerator::new(WeightDistribution::Gaussian { std: 0.05 }, 9);
        let w = gen.generate(Shape::conv_weight(4, 16, 3, 3));
        let q = quantize_per_tensor(&w, 8).unwrap();
        let (flipped, stats) = flip_tensor(&q, GroupSize::G16, 4, Encoding::SignMagnitude).unwrap();
        assert_eq!(flipped.shape(), q.shape());
        assert!(stats.mean_zero_columns >= 4.0);
        // The flipped tensor must reach the column-sparsity target for every group.
        let groups = extract_groups(&flipped, GroupSize::G16).unwrap();
        for g in groups.iter() {
            assert!(zero_column_count(g, Encoding::SignMagnitude) >= 4);
        }
    }

    #[test]
    fn flipping_preserves_quant_params_and_shape() {
        let q = QuantTensor::new(
            Shape::d2(2, 8),
            (0..16).map(|i| (i as i8) - 8).collect(),
            QuantParams::symmetric(0.02, 8),
        )
        .unwrap();
        let (flipped, _) = flip_tensor(&q, GroupSize::G8, 3, Encoding::SignMagnitude).unwrap();
        assert_eq!(flipped.params(), q.params());
        assert_eq!(flipped.shape(), q.shape());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn constraint_always_satisfied(
            group in proptest::collection::vec(-127i8..=127, 1..=32),
            target in 0u32..=8,
        ) {
            let out = flip_group(&group, target, Encoding::SignMagnitude).unwrap();
            prop_assert!(out.achieved_zero_columns >= target.min(8));
            prop_assert_eq!(out.flipped.len(), group.len());
        }

        #[test]
        fn flip_is_idempotent(
            group in proptest::collection::vec(-127i8..=127, 1..=16),
            target in 0u32..=7,
        ) {
            let once = flip_group(&group, target, Encoding::SignMagnitude).unwrap();
            let twice = flip_group(&once.flipped, target, Encoding::SignMagnitude).unwrap();
            prop_assert_eq!(&twice.flipped, &once.flipped);
            prop_assert_eq!(twice.distance, 0.0);
        }

        #[test]
        fn distance_bounded_by_zeroing_everything(
            group in proptest::collection::vec(-127i8..=127, 1..=16),
            target in 0u32..=8,
        ) {
            // Zeroing the whole group always satisfies any target, so the optimal
            // distance can never exceed the norm of the group.
            let out = flip_group(&group, target, Encoding::SignMagnitude).unwrap();
            let norm = group.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>().sqrt();
            prop_assert!(out.distance <= norm + 1e-9);
        }

        #[test]
        fn bitplane_flip_equals_scalar(
            group in proptest::collection::vec(-127i8..=127, 1..=32),
            target in 0u32..=8,
        ) {
            // The word-parallel search must reproduce the exhaustive scalar
            // search bit for bit: same flipped values, same (exact) distance.
            for encoding in [Encoding::TwosComplement, Encoding::SignMagnitude] {
                let fast = flip_group(&group, target, encoding).unwrap();
                let scalar = flip_group_scalar(&group, target, encoding).unwrap();
                prop_assert_eq!(&fast.flipped, &scalar.flipped);
                prop_assert_eq!(fast.distance, scalar.distance);
                prop_assert_eq!(fast.achieved_zero_columns, scalar.achieved_zero_columns);
            }
        }
    }
}
