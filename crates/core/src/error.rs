//! Error type of the algorithmic core.
//!
//! Written by hand rather than with `thiserror` because the build
//! environment is offline; the shape (one variant per failure mode,
//! `Display` + `std::error::Error` + `From` impls) matches what
//! `#[derive(Error)]` would generate.

use bitwave_tensor::TensorError;
use std::fmt;

/// Errors produced by grouping, statistics, compression and Bit-Flip
/// routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A weight tensor rank that cannot be grouped along an input-channel
    /// axis (only ranks 1, 2 and 4 occur in the evaluated networks).
    UnsupportedRank(
        /// The rejected tensor rank.
        usize,
    ),
    /// A weight group whose length the Bit-Flip search cannot handle (must
    /// be `1..=64`).
    InvalidGroupLength(
        /// The rejected group length.
        usize,
    ),
    /// An underlying tensor error.
    Tensor(
        /// The propagated tensor error.
        TensorError,
    ),
    /// A value failed to serialize while computing a content digest
    /// ([`crate::digest::Digest::of_value`]).
    Serialization {
        /// Human-readable serializer error.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedRank(rank) => {
                write!(
                    f,
                    "unsupported weight tensor rank {rank} for grouping (expected 1, 2 or 4)"
                )
            }
            CoreError::InvalidGroupLength(len) => {
                write!(
                    f,
                    "weight group length {len} outside the supported range 1..=64"
                )
            }
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Serialization { message } => {
                write!(f, "serialization error: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::UnsupportedRank(3).to_string().contains("rank 3"));
        assert!(CoreError::InvalidGroupLength(0).to_string().contains("0"));
        let e = CoreError::from(TensorError::Empty);
        assert!(e.to_string().contains("tensor error"));
        let e = CoreError::Serialization {
            message: "boom".to_string(),
        };
        assert!(e.to_string().contains("serialization error: boom"));
    }

    #[test]
    fn source_chains_to_tensor_error() {
        use std::error::Error;
        let e = CoreError::from(TensorError::InvalidBitWidth(12));
        assert!(e.source().is_some());
        assert!(CoreError::UnsupportedRank(3).source().is_none());
    }
}
