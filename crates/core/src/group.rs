//! Weight grouping for bit-column analysis.
//!
//! BitWave groups `G` weights taken from **consecutive input channels of one
//! kernel position** (Section III-A: "groups of 4 weight elements from
//! consecutive input channels of one kernel") and then inspects the bit
//! columns of the group.  The hardware supports layer-wise tunable group
//! sizes of 8, 16 and 32 (Section III-C).
//!
//! For a conv weight tensor `[K, C, FY, FX]` the grouping axis is `C` for a
//! fixed `(k, fy, fx)`; for a linear weight `[Out, In]` it is `In`; a rank-1
//! tensor is chunked directly.  When the grouped axis is not a multiple of
//! `G` the trailing group is zero-padded, exactly as the hardware pads the
//! last channel group.

use crate::error::CoreError;
use bitwave_tensor::bitplane::BitplaneTensor;
use bitwave_tensor::{QuantTensor, Shape};
use serde::{Deserialize, Serialize};

/// The hardware-supported group (bit-column) sizes, plus arbitrary sizes for
/// the design-space sweeps of Fig. 5 (G = 1..64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupSize {
    /// 8 weights per group (hardware supported).
    G8,
    /// 16 weights per group (hardware supported).
    G16,
    /// 32 weights per group (hardware supported).
    G32,
    /// An arbitrary group size, used only for analysis sweeps.
    Custom(
        /// Number of weights per group (must be ≥ 1).
        usize,
    ),
}

impl GroupSize {
    /// Number of weights per group.
    pub fn len(self) -> usize {
        match self {
            GroupSize::G8 => 8,
            GroupSize::G16 => 16,
            GroupSize::G32 => 32,
            GroupSize::Custom(n) => n,
        }
    }

    /// Always false: a group size of zero is rejected at construction.
    pub fn is_empty(self) -> bool {
        false
    }

    /// The three group sizes the BitWave hardware supports per layer.
    pub fn hardware_supported() -> [GroupSize; 3] {
        [GroupSize::G8, GroupSize::G16, GroupSize::G32]
    }

    /// Builds a group size from a raw length, mapping 8/16/32 onto the
    /// hardware variants.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn from_len(len: usize) -> Self {
        assert!(len > 0, "group size must be at least 1");
        match len {
            8 => GroupSize::G8,
            16 => GroupSize::G16,
            32 => GroupSize::G32,
            other => GroupSize::Custom(other),
        }
    }
}

impl std::fmt::Display for GroupSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "G{}", self.len())
    }
}

/// The groups extracted from a weight tensor, preserving enough layout
/// information to reassemble the tensor after Bit-Flip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Groups {
    group_size: usize,
    /// Length of the grouped (input-channel) axis before padding.
    axis_len: usize,
    /// Number of independent "rows" (e.g. `K*FY*FX` for a conv weight).
    rows: usize,
    data: Vec<i8>,
}

impl Groups {
    /// Group size in elements.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.data.len() / self.group_size
    }

    /// Iterates over the groups as fixed-size slices.
    pub fn iter(&self) -> impl Iterator<Item = &[i8]> {
        self.data.chunks_exact(self.group_size)
    }

    /// Iterates mutably over the groups.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut [i8]> {
        self.data.chunks_exact_mut(self.group_size)
    }

    /// Total number of stored (padded) elements.
    pub fn padded_len(&self) -> usize {
        self.data.len()
    }

    /// Packs the (padded) group data into a [`BitplaneTensor`] whose group
    /// windows coincide with these groups: window `i` of every plane holds
    /// bit column `b` of group `i`.  This is the one packing step the
    /// pipeline performs per layer; statistics, BCS sizing, the accelerator
    /// profile and Bit-Flip all share the result.
    ///
    /// # Panics
    ///
    /// Panics if the group size exceeds 64 (a group window must fit one
    /// plane word); callers sweeping arbitrary custom sizes must keep to the
    /// scalar kernels above that limit.
    pub fn to_bitplanes(&self) -> BitplaneTensor {
        BitplaneTensor::from_slice(&self.data, self.group_size)
    }

    /// Reassembles the original tensor layout (dropping the padding) into a
    /// flat `Vec<i8>` of `rows * axis_len` elements in the original row-major
    /// order.
    pub fn to_flat(&self) -> Vec<i8> {
        let groups_per_row = div_ceil(self.axis_len, self.group_size);
        let padded_axis = groups_per_row * self.group_size;
        let mut out = Vec::with_capacity(self.rows * self.axis_len);
        for row in 0..self.rows {
            let start = row * padded_axis;
            out.extend_from_slice(&self.data[start..start + self.axis_len]);
        }
        out
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Extracts weight groups from a quantised tensor along its input-channel
/// axis (see module docs for the per-rank convention).
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedRank`] if the tensor rank is not 1, 2 or 4
/// (rank-3 weights do not occur in the evaluated networks).
pub fn extract_groups(tensor: &QuantTensor, group_size: GroupSize) -> Result<Groups, CoreError> {
    let g = group_size.len();
    let shape = tensor.shape();
    let data = tensor.data();
    match shape.rank() {
        1 => Ok(group_rows(data, shape.dim(0), 1, g)),
        2 => Ok(group_rows(data, shape.dim(1), shape.dim(0), g)),
        4 => {
            // [K, C, FY, FX]: the grouped axis is C, but it is not the
            // innermost axis, so gather per (k, fy, fx) first.
            let (k, c, fy, fx) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
            let mut reordered = Vec::with_capacity(k * c * fy * fx);
            for ki in 0..k {
                for yi in 0..fy {
                    for xi in 0..fx {
                        for ci in 0..c {
                            reordered.push(data[shape.offset(&[ki, ci, yi, xi])]);
                        }
                    }
                }
            }
            Ok(group_rows(&reordered, c, k * fy * fx, g))
        }
        rank => Err(CoreError::UnsupportedRank(rank)),
    }
}

/// Groups a flat buffer organised as `rows` rows of `axis_len` contiguous
/// elements, padding each row's tail group with zeros.
fn group_rows(data: &[i8], axis_len: usize, rows: usize, g: usize) -> Groups {
    assert_eq!(data.len(), rows * axis_len, "row layout mismatch");
    let groups_per_row = div_ceil(axis_len, g);
    let padded_axis = groups_per_row * g;
    let mut out = vec![0i8; rows * padded_axis];
    for row in 0..rows {
        let src = &data[row * axis_len..(row + 1) * axis_len];
        out[row * padded_axis..row * padded_axis + axis_len].copy_from_slice(src);
    }
    Groups {
        group_size: g,
        axis_len,
        rows,
        data: out,
    }
}

/// Writes grouped (possibly Bit-Flipped) values back into a tensor with the
/// same shape as `original`, reversing [`extract_groups`].
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedRank`] for ungroupable ranks and
/// [`CoreError::Tensor`] if `groups` was not produced from a tensor of the
/// same shape.
pub fn reassemble_tensor(
    original: &QuantTensor,
    groups: &Groups,
) -> Result<QuantTensor, CoreError> {
    let shape = original.shape();
    let flat = groups.to_flat();
    let data = match shape.rank() {
        1 | 2 => flat,
        4 => {
            let (k, c, fy, fx) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
            if flat.len() != k * c * fy * fx {
                return Err(CoreError::Tensor(
                    bitwave_tensor::TensorError::ShapeMismatch {
                        expected: k * c * fy * fx,
                        actual: flat.len(),
                    },
                ));
            }
            let mut out = vec![0i8; flat.len()];
            let mut idx = 0usize;
            for ki in 0..k {
                for yi in 0..fy {
                    for xi in 0..fx {
                        for ci in 0..c {
                            out[shape.offset(&[ki, ci, yi, xi])] = flat[idx];
                            idx += 1;
                        }
                    }
                }
            }
            out
        }
        rank => return Err(CoreError::UnsupportedRank(rank)),
    };
    Ok(QuantTensor::new(shape, data, original.params())?)
}

/// Convenience: groups a plain slice (used by codecs operating on already
/// flattened weight streams).
pub fn group_slice(data: &[i8], group_size: GroupSize) -> Groups {
    group_rows(data, data.len(), 1, group_size.len())
}

/// Returns the number of groups a tensor of `shape` produces at `group_size`
/// without materialising them (used by the analytical models).
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedRank`] for ungroupable ranks.
pub fn group_count_for_shape(shape: Shape, group_size: GroupSize) -> Result<usize, CoreError> {
    let g = group_size.len();
    match shape.rank() {
        1 => Ok(div_ceil(shape.dim(0), g)),
        2 => Ok(shape.dim(0) * div_ceil(shape.dim(1), g)),
        4 => Ok(shape.dim(0) * shape.dim(2) * shape.dim(3) * div_ceil(shape.dim(1), g)),
        rank => Err(CoreError::UnsupportedRank(rank)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_tensor::quant::QuantParams;

    fn conv_tensor() -> QuantTensor {
        // [K=2, C=3, FY=2, FX=2]
        let shape = Shape::conv_weight(2, 3, 2, 2);
        let data: Vec<i8> = (0..shape.num_elements()).map(|i| i as i8).collect();
        QuantTensor::new(shape, data, QuantParams::unit()).unwrap()
    }

    #[test]
    fn group_size_lengths() {
        assert_eq!(GroupSize::G8.len(), 8);
        assert_eq!(GroupSize::G16.len(), 16);
        assert_eq!(GroupSize::G32.len(), 32);
        assert_eq!(GroupSize::Custom(5).len(), 5);
        assert_eq!(GroupSize::from_len(16), GroupSize::G16);
        assert_eq!(GroupSize::from_len(7), GroupSize::Custom(7));
        assert_eq!(GroupSize::G8.to_string(), "G8");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_group_size_rejected() {
        GroupSize::from_len(0);
    }

    #[test]
    fn conv_grouping_gathers_input_channels() {
        let t = conv_tensor();
        let groups = extract_groups(&t, GroupSize::Custom(3)).unwrap();
        // One group per (k, fy, fx) position: 2*2*2 = 8 groups of C=3.
        assert_eq!(groups.num_groups(), 8);
        // First group: k=0, fy=0, fx=0, c=0..3 -> offsets 0, 4, 8 -> values 0,4,8.
        let first: Vec<i8> = groups.iter().next().unwrap().to_vec();
        assert_eq!(first, vec![0, 4, 8]);
    }

    #[test]
    fn conv_grouping_pads_when_c_not_multiple_of_g() {
        let t = conv_tensor();
        let groups = extract_groups(&t, GroupSize::Custom(4)).unwrap();
        assert_eq!(groups.group_size(), 4);
        assert_eq!(groups.num_groups(), 8);
        let first: Vec<i8> = groups.iter().next().unwrap().to_vec();
        assert_eq!(first, vec![0, 4, 8, 0], "tail is zero padded");
    }

    #[test]
    fn roundtrip_through_reassemble() {
        let t = conv_tensor();
        for g in [1usize, 2, 3, 4, 8] {
            let groups = extract_groups(&t, GroupSize::from_len(g)).unwrap();
            let back = reassemble_tensor(&t, &groups).unwrap();
            assert_eq!(back.data(), t.data(), "roundtrip failed for G={g}");
        }
    }

    #[test]
    fn linear_grouping_chunks_input_axis() {
        let shape = Shape::d2(2, 6);
        let data: Vec<i8> = (0..12).map(|i| i as i8).collect();
        let t = QuantTensor::new(shape, data, QuantParams::unit()).unwrap();
        let groups = extract_groups(&t, GroupSize::Custom(4)).unwrap();
        assert_eq!(groups.num_groups(), 4);
        let all: Vec<Vec<i8>> = groups.iter().map(|s| s.to_vec()).collect();
        assert_eq!(all[0], vec![0, 1, 2, 3]);
        assert_eq!(all[1], vec![4, 5, 0, 0]);
        assert_eq!(all[2], vec![6, 7, 8, 9]);
        let back = reassemble_tensor(&t, &groups).unwrap();
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn group_count_matches_extraction() {
        let t = conv_tensor();
        for g in [1usize, 2, 3, 4, 8, 16] {
            let gs = GroupSize::from_len(g);
            assert_eq!(
                group_count_for_shape(t.shape(), gs).unwrap(),
                extract_groups(&t, gs).unwrap().num_groups(),
                "mismatch at G={g}"
            );
        }
    }

    #[test]
    fn group_slice_is_single_row() {
        let data: Vec<i8> = (0..10).map(|i| i as i8).collect();
        let groups = group_slice(&data, GroupSize::Custom(4));
        assert_eq!(groups.num_groups(), 3);
        assert_eq!(groups.to_flat(), data);
    }

    #[test]
    fn mutation_through_iter_mut_roundtrips() {
        let t = conv_tensor();
        let mut groups = extract_groups(&t, GroupSize::Custom(3)).unwrap();
        for g in groups.iter_mut() {
            for v in g.iter_mut() {
                *v = v.saturating_add(1);
            }
        }
        let back = reassemble_tensor(&t, &groups).unwrap();
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(*a, b + 1);
        }
    }
}
