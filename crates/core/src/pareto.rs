//! Compression-ratio / accuracy Pareto fronts (Fig. 6e–h).
//!
//! The network-wide Bit-Flip optimisation produces a set of candidate
//! configurations, each with a compression ratio and a model quality.  The
//! paper reports the Pareto-optimal subset: points for which no other point
//! has both a higher compression ratio and a higher accuracy.

use serde::{Deserialize, Serialize};

/// One candidate operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Weight compression ratio (higher is better).
    pub compression_ratio: f64,
    /// Model quality: accuracy, F1 or PESQ, depending on the network
    /// (higher is better).
    pub accuracy: f64,
    /// Free-form label describing the configuration (e.g. "SM+BF z=5 G=16").
    pub label: String,
}

impl ParetoPoint {
    /// Creates a point.
    pub fn new(compression_ratio: f64, accuracy: f64, label: impl Into<String>) -> Self {
        Self {
            compression_ratio,
            accuracy,
            label: label.into(),
        }
    }

    /// True when `self` dominates `other` (at least as good on both axes and
    /// strictly better on at least one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let ge =
            self.compression_ratio >= other.compression_ratio && self.accuracy >= other.accuracy;
        let gt = self.compression_ratio > other.compression_ratio || self.accuracy > other.accuracy;
        ge && gt
    }
}

/// Extracts the Pareto-optimal subset of `points`, sorted by ascending
/// compression ratio.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = points
        .iter()
        .filter(|candidate| !points.iter().any(|other| other.dominates(candidate)))
        .cloned()
        .collect();
    front.sort_by(|a, b| {
        a.compression_ratio
            .partial_cmp(&b.compression_ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front.dedup_by(|a, b| a.compression_ratio == b.compression_ratio && a.accuracy == b.accuracy);
    front
}

/// Picks, from a set of points, the one with the highest compression ratio
/// whose accuracy is at least `min_accuracy` (the operating point the paper
/// quotes, e.g. "2.04× CR with < 0.5 % accuracy drop").
pub fn best_under_accuracy_floor(points: &[ParetoPoint], min_accuracy: f64) -> Option<ParetoPoint> {
    points
        .iter()
        .filter(|p| p.accuracy >= min_accuracy)
        .max_by(|a, b| {
            a.compression_ratio
                .partial_cmp(&b.compression_ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<ParetoPoint> {
        vec![
            ParetoPoint::new(1.0, 70.0, "baseline"),
            ParetoPoint::new(1.5, 69.8, "a"),
            ParetoPoint::new(1.5, 69.0, "dominated by a"),
            ParetoPoint::new(2.0, 69.5, "b"),
            ParetoPoint::new(2.5, 68.0, "c"),
            ParetoPoint::new(2.4, 67.0, "dominated by c"),
        ]
    }

    #[test]
    fn dominance_relation() {
        let a = ParetoPoint::new(2.0, 70.0, "a");
        let b = ParetoPoint::new(1.5, 69.0, "b");
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "a point does not dominate itself");
    }

    #[test]
    fn front_excludes_dominated_points() {
        let front = pareto_front(&points());
        let labels: Vec<&str> = front.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["baseline", "a", "b", "c"]);
        // Sorted by compression ratio.
        assert!(front
            .windows(2)
            .all(|w| w[0].compression_ratio <= w[1].compression_ratio));
    }

    #[test]
    fn best_under_floor_matches_paper_style_query() {
        let best = best_under_accuracy_floor(&points(), 69.4).unwrap();
        assert_eq!(best.label, "b");
        assert!(best_under_accuracy_floor(&points(), 99.0).is_none());
    }

    #[test]
    fn empty_input_gives_empty_front() {
        assert!(pareto_front(&[]).is_empty());
        assert!(best_under_accuracy_floor(&[], 0.0).is_none());
    }

    #[test]
    fn equal_points_are_deduplicated() {
        let pts = vec![
            ParetoPoint::new(1.0, 50.0, "x"),
            ParetoPoint::new(1.0, 50.0, "y"),
        ];
        assert_eq!(pareto_front(&pts).len(), 1);
    }
}
