//! Multi-objective Pareto fronts.
//!
//! Two consumers share this module.  The network-wide Bit-Flip optimisation
//! (Fig. 6e–h) reports the compression-ratio/accuracy Pareto front via the
//! original two-metric [`ParetoPoint`].  The dataflow design-space explorer
//! (`bitwave-dse`) prunes candidate mappings on **N objectives** — cycles,
//! energy, EDP, utilisation — via the generalised [`ParetoPointN`] /
//! [`pareto_front_n`] / [`pareto_front_indices`] API, with a per-axis
//! [`Direction`] stating whether larger or smaller values win.
//!
//! [`ParetoPoint`] is kept as a thin wrapper over `ParetoPointN<2>` with
//! both axes maximised, so its observable behaviour (filtering, ordering,
//! deduplication) is unchanged.

use serde::{Deserialize, Serialize};

/// Whether larger or smaller values of one objective are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values dominate (compression ratio, accuracy, utilisation).
    Maximize,
    /// Smaller values dominate (cycles, energy, EDP).
    Minimize,
}

impl Direction {
    /// True when `a` is at least as good as `b` on this axis.
    fn at_least(self, a: f64, b: f64) -> bool {
        match self {
            Direction::Maximize => a >= b,
            Direction::Minimize => a <= b,
        }
    }

    /// True when `a` is strictly better than `b` on this axis.
    fn better(self, a: f64, b: f64) -> bool {
        match self {
            Direction::Maximize => a > b,
            Direction::Minimize => a < b,
        }
    }
}

/// One candidate operating point with `N` objective values.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPointN<const N: usize> {
    /// The objective values, one per axis (interpreted via a `[Direction; N]`
    /// at dominance-checking time).
    pub metrics: [f64; N],
    /// Free-form label describing the configuration.
    pub label: String,
}

impl<const N: usize> ParetoPointN<N> {
    /// Creates a point.
    pub fn new(metrics: [f64; N], label: impl Into<String>) -> Self {
        Self {
            metrics,
            label: label.into(),
        }
    }

    /// True when `self` dominates `other` under `directions`: at least as
    /// good on every axis and strictly better on at least one.
    pub fn dominates(&self, other: &Self, directions: &[Direction; N]) -> bool {
        dominates(&self.metrics, &other.metrics, directions)
    }
}

/// Raw dominance check over two metric vectors.
fn dominates<const N: usize>(a: &[f64; N], b: &[f64; N], directions: &[Direction; N]) -> bool {
    let ge = directions
        .iter()
        .zip(a.iter().zip(b))
        .all(|(d, (x, y))| d.at_least(*x, *y));
    let gt = directions
        .iter()
        .zip(a.iter().zip(b))
        .any(|(d, (x, y))| d.better(*x, *y));
    ge && gt
}

/// Indices (in input order) of the metric vectors not dominated by any other
/// vector.  Exact duplicates all survive — callers that need deduplication
/// do it on the materialised points, where the policy is visible.
pub fn pareto_front_indices<const N: usize>(
    metrics: &[[f64; N]],
    directions: &[Direction; N],
) -> Vec<usize> {
    (0..metrics.len())
        .filter(|&i| {
            !metrics
                .iter()
                .any(|other| dominates(other, &metrics[i], directions))
        })
        .collect()
}

/// Extracts the Pareto-optimal subset of `points` under `directions`, sorted
/// by ascending first metric (stable, so equal first metrics keep input
/// order) with consecutive exact-duplicate metric vectors deduplicated.
pub fn pareto_front_n<const N: usize>(
    points: &[ParetoPointN<N>],
    directions: &[Direction; N],
) -> Vec<ParetoPointN<N>> {
    let metrics: Vec<[f64; N]> = points.iter().map(|p| p.metrics).collect();
    let mut front: Vec<ParetoPointN<N>> = pareto_front_indices(&metrics, directions)
        .into_iter()
        .map(|i| points[i].clone())
        .collect();
    front.sort_by(|a, b| {
        a.metrics[0]
            .partial_cmp(&b.metrics[0])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front.dedup_by(|a, b| a.metrics == b.metrics);
    front
}

/// An incrementally maintained non-dominated set over `N` objectives.
///
/// The sharded hardware sweep streams partial Pareto fronts as worker
/// results land, so it cannot afford to re-run [`pareto_front_indices`]
/// over the full result set on every arrival.  The accumulator keeps only
/// the currently non-dominated points: an [`insert`](Self::insert) either
/// rejects a dominated newcomer or admits it and evicts everything it
/// dominates.
///
/// Dominance is order-independent, so after inserting every point of a set
/// (in **any** order, each tagged with its identifying index) the surviving
/// index set equals `pareto_front_indices` over the whole set — exact
/// metric duplicates all survive, matching the batch function.
#[derive(Debug, Clone)]
pub struct FrontAccumulator<const N: usize> {
    directions: [Direction; N],
    entries: Vec<([f64; N], usize)>,
}

impl<const N: usize> FrontAccumulator<N> {
    /// Creates an empty accumulator with one [`Direction`] per axis.
    pub fn new(directions: [Direction; N]) -> Self {
        Self {
            directions,
            entries: Vec::new(),
        }
    }

    /// Offers a point (its metrics plus a caller-meaningful index).  Returns
    /// `true` when the point joins the front, `false` when an existing
    /// member dominates it.  Admission may evict existing members.
    pub fn insert(&mut self, metrics: [f64; N], index: usize) -> bool {
        if self
            .entries
            .iter()
            .any(|(m, _)| dominates(m, &metrics, &self.directions))
        {
            return false;
        }
        self.entries
            .retain(|(m, _)| !dominates(&metrics, m, &self.directions));
        self.entries.push((metrics, index));
        true
    }

    /// The surviving indices, ascending — a canonical order independent of
    /// insertion history.
    pub fn indices(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.entries.iter().map(|&(_, i)| i).collect();
        out.sort_unstable();
        out
    }

    /// The surviving `(metrics, index)` pairs, ascending by index.
    pub fn entries(&self) -> Vec<([f64; N], usize)> {
        let mut out = self.entries.clone();
        out.sort_unstable_by_key(|&(_, i)| i);
        out
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One candidate operating point of the Bit-Flip trade-off (both axes
/// maximised) — the original two-metric API, now a thin wrapper over
/// [`ParetoPointN<2>`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Weight compression ratio (higher is better).
    pub compression_ratio: f64,
    /// Model quality: accuracy, F1 or PESQ, depending on the network
    /// (higher is better).
    pub accuracy: f64,
    /// Free-form label describing the configuration (e.g. "SM+BF z=5 G=16").
    pub label: String,
}

/// Both of the classic axes are maximised.
const CLASSIC_DIRECTIONS: [Direction; 2] = [Direction::Maximize, Direction::Maximize];

impl ParetoPoint {
    /// Creates a point.
    pub fn new(compression_ratio: f64, accuracy: f64, label: impl Into<String>) -> Self {
        Self {
            compression_ratio,
            accuracy,
            label: label.into(),
        }
    }

    /// The generalised view of this point: `[compression_ratio, accuracy]`.
    pub fn as_n(&self) -> ParetoPointN<2> {
        ParetoPointN::new([self.compression_ratio, self.accuracy], self.label.clone())
    }

    fn from_n(point: ParetoPointN<2>) -> Self {
        Self {
            compression_ratio: point.metrics[0],
            accuracy: point.metrics[1],
            label: point.label,
        }
    }

    /// True when `self` dominates `other` (at least as good on both axes and
    /// strictly better on at least one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.as_n().dominates(&other.as_n(), &CLASSIC_DIRECTIONS)
    }
}

/// Extracts the Pareto-optimal subset of `points`, sorted by ascending
/// compression ratio.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let generalized: Vec<ParetoPointN<2>> = points.iter().map(ParetoPoint::as_n).collect();
    pareto_front_n(&generalized, &CLASSIC_DIRECTIONS)
        .into_iter()
        .map(ParetoPoint::from_n)
        .collect()
}

/// Picks, from a set of points, the one with the highest compression ratio
/// whose accuracy is at least `min_accuracy` (the operating point the paper
/// quotes, e.g. "2.04× CR with < 0.5 % accuracy drop").
pub fn best_under_accuracy_floor(points: &[ParetoPoint], min_accuracy: f64) -> Option<ParetoPoint> {
    points
        .iter()
        .filter(|p| p.accuracy >= min_accuracy)
        .max_by(|a, b| {
            a.compression_ratio
                .partial_cmp(&b.compression_ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn points() -> Vec<ParetoPoint> {
        vec![
            ParetoPoint::new(1.0, 70.0, "baseline"),
            ParetoPoint::new(1.5, 69.8, "a"),
            ParetoPoint::new(1.5, 69.0, "dominated by a"),
            ParetoPoint::new(2.0, 69.5, "b"),
            ParetoPoint::new(2.5, 68.0, "c"),
            ParetoPoint::new(2.4, 67.0, "dominated by c"),
        ]
    }

    #[test]
    fn dominance_relation() {
        let a = ParetoPoint::new(2.0, 70.0, "a");
        let b = ParetoPoint::new(1.5, 69.0, "b");
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "a point does not dominate itself");
    }

    #[test]
    fn front_excludes_dominated_points() {
        let front = pareto_front(&points());
        let labels: Vec<&str> = front.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["baseline", "a", "b", "c"]);
        // Sorted by compression ratio.
        assert!(front
            .windows(2)
            .all(|w| w[0].compression_ratio <= w[1].compression_ratio));
    }

    #[test]
    fn best_under_floor_matches_paper_style_query() {
        let best = best_under_accuracy_floor(&points(), 69.4).unwrap();
        assert_eq!(best.label, "b");
        assert!(best_under_accuracy_floor(&points(), 99.0).is_none());
    }

    #[test]
    fn empty_input_gives_empty_front() {
        assert!(pareto_front(&[]).is_empty());
        assert!(best_under_accuracy_floor(&[], 0.0).is_none());
        assert!(pareto_front_indices::<3>(&[], &[Direction::Minimize; 3]).is_empty());
    }

    #[test]
    fn equal_points_are_deduplicated() {
        let pts = vec![
            ParetoPoint::new(1.0, 50.0, "x"),
            ParetoPoint::new(1.0, 50.0, "y"),
        ];
        assert_eq!(pareto_front(&pts).len(), 1);
    }

    #[test]
    fn mixed_direction_dominance() {
        // [cycles (min), energy (min), utilisation (max)].
        let dirs = [
            Direction::Minimize,
            Direction::Minimize,
            Direction::Maximize,
        ];
        let fast = ParetoPointN::new([100.0, 5.0, 0.9], "fast");
        let slow = ParetoPointN::new([200.0, 5.0, 0.9], "slow");
        let frugal = ParetoPointN::new([200.0, 1.0, 0.2], "frugal");
        assert!(fast.dominates(&slow, &dirs));
        assert!(!slow.dominates(&fast, &dirs));
        assert!(!fast.dominates(&frugal, &dirs), "frugal wins on energy");
        assert!(!frugal.dominates(&fast, &dirs));
        let front = pareto_front_n(&[fast.clone(), slow, frugal.clone()], &dirs);
        let labels: Vec<&str> = front.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["fast", "frugal"]);
    }

    #[test]
    fn indices_preserve_input_order_and_keep_duplicates() {
        let dirs = [Direction::Minimize, Direction::Minimize];
        let metrics = [[2.0, 2.0], [1.0, 3.0], [1.0, 3.0], [3.0, 3.0]];
        assert_eq!(pareto_front_indices(&metrics, &dirs), vec![0, 1, 2]);
    }

    #[test]
    fn accumulator_admits_evicts_and_rejects() {
        let mut acc = FrontAccumulator::new([Direction::Minimize, Direction::Minimize]);
        assert!(acc.is_empty());
        assert!(acc.insert([2.0, 2.0], 0));
        assert!(acc.insert([1.0, 3.0], 1), "trade-off joins the front");
        assert!(!acc.insert([3.0, 3.0], 2), "dominated newcomer is rejected");
        assert!(acc.insert([1.0, 1.0], 3), "dominator evicts both members");
        assert_eq!(acc.indices(), vec![3]);
        assert!(acc.insert([1.0, 1.0], 4), "exact duplicates all survive");
        assert_eq!(acc.indices(), vec![3, 4]);
        assert_eq!(acc.len(), 2);
    }

    /// Random-point strategies for the property tests: small integer-derived
    /// metrics maximise the chance of ties and duplicates.
    fn metric(raw: u8) -> f64 {
        f64::from(raw % 8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The generalised front is mutually non-dominating.
        #[test]
        fn front_is_mutually_non_dominating(
            raw in proptest::collection::vec(proptest::strategy::any::<u8>(), 0..40),
            dir_bits in proptest::strategy::any::<u8>(),
        ) {
            let dirs = [
                if dir_bits & 1 == 0 { Direction::Minimize } else { Direction::Maximize },
                if dir_bits & 2 == 0 { Direction::Minimize } else { Direction::Maximize },
                if dir_bits & 4 == 0 { Direction::Minimize } else { Direction::Maximize },
            ];
            let points: Vec<ParetoPointN<3>> = raw
                .chunks_exact(3)
                .enumerate()
                .map(|(i, c)| {
                    ParetoPointN::new([metric(c[0]), metric(c[1]), metric(c[2])], format!("p{i}"))
                })
                .collect();
            let front = pareto_front_n(&points, &dirs);
            for a in &front {
                for b in &front {
                    prop_assert!(!a.dominates(b, &dirs), "{} dominates {}", a.label, b.label);
                }
            }
            // Every input point is dominated by or metric-equal to a front member.
            for p in &points {
                prop_assert!(front.iter().any(|f| f.metrics == p.metrics
                    || f.dominates(p, &dirs)));
            }
        }

        /// The front's metric set is invariant under input permutation.
        #[test]
        fn front_is_invariant_under_input_order(
            raw in proptest::collection::vec(proptest::strategy::any::<u8>(), 0..40),
            rot in proptest::strategy::any::<usize>(),
        ) {
            let dirs = [Direction::Minimize, Direction::Maximize];
            let points: Vec<ParetoPointN<2>> = raw
                .chunks_exact(2)
                .enumerate()
                .map(|(i, c)| ParetoPointN::new([metric(c[0]), metric(c[1])], format!("p{i}")))
                .collect();
            let mut rotated = points.clone();
            if !rotated.is_empty() {
                let mid = rot % rotated.len();
                rotated.rotate_left(mid);
            }
            let front = |pts: &[ParetoPointN<2>]| -> Vec<[f64; 2]> {
                pareto_front_n(pts, &dirs).iter().map(|p| p.metrics).collect()
            };
            prop_assert_eq!(front(&points), front(&rotated));
        }

        /// The accumulator reproduces the batch front regardless of the
        /// order points arrive in — the invariant the sharded sweep's
        /// streamed partial fronts rely on.
        #[test]
        fn accumulator_matches_batch_front_under_any_arrival_order(
            raw in proptest::collection::vec(proptest::strategy::any::<u8>(), 0..60),
            rot in proptest::strategy::any::<usize>(),
        ) {
            let dirs = [Direction::Minimize, Direction::Minimize, Direction::Maximize];
            let metrics: Vec<[f64; 3]> = raw
                .chunks_exact(3)
                .map(|c| [metric(c[0]), metric(c[1]), metric(c[2])])
                .collect();
            let mut order: Vec<usize> = (0..metrics.len()).collect();
            if !order.is_empty() {
                let mid = rot % order.len();
                order.rotate_left(mid);
            }
            let mut acc = FrontAccumulator::new(dirs);
            for &i in &order {
                acc.insert(metrics[i], i);
            }
            prop_assert_eq!(acc.indices(), pareto_front_indices(&metrics, &dirs));
        }

        /// The classic two-metric wrapper agrees with the generalised front.
        #[test]
        fn classic_wrapper_matches_generalised_front(
            raw in proptest::collection::vec(proptest::strategy::any::<u8>(), 0..40),
        ) {
            let points: Vec<ParetoPoint> = raw
                .chunks_exact(2)
                .enumerate()
                .map(|(i, c)| ParetoPoint::new(metric(c[0]), metric(c[1]), format!("p{i}")))
                .collect();
            let classic = pareto_front(&points);
            let generalised = pareto_front_n(
                &points.iter().map(ParetoPoint::as_n).collect::<Vec<_>>(),
                &[Direction::Maximize, Direction::Maximize],
            );
            prop_assert_eq!(classic.len(), generalised.len());
            for (c, g) in classic.iter().zip(&generalised) {
                prop_assert_eq!([c.compression_ratio, c.accuracy], g.metrics);
                prop_assert_eq!(&c.label, &g.label);
            }
        }
    }
}
