//! Stable content digests over serializable values.
//!
//! Several subsystems address computed artefacts by a digest of the inputs
//! that produced them: the evaluation service (`bitwave-serve`) caches
//! serialized `ModelReport`s under a digest of the normalised request, and
//! the dataflow design-space explorer (`bitwave-dse`) memoizes per-layer
//! search results under a digest of (layer shape, sparsity profile,
//! accelerator spec, search space).  The digest must be **stable** — the
//! same logical value always hashes to the same digest, across processes and
//! runs — so it cannot use [`std::hash::Hash`] (whose hasher is randomised
//! and whose byte layout is unspecified).  Instead a value is first rendered
//! to canonical compact JSON (the vendored serde preserves struct-field
//! declaration order, so the rendering is deterministic) and the JSON bytes
//! are hashed with FNV-1a/128.
//!
//! Digests are formatted as 32 lowercase hex characters, e.g.
//! `"5e1b40b4a3fe5bd0a35b1a2f2f9e5a6c"`.  The facade crate re-exports this
//! module as `bitwave::digest` together with the request-level key types.

use crate::error::CoreError;
use serde::Serialize;
use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a/128 over a byte slice.
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut hash = FNV128_OFFSET;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(FNV128_PRIME);
    }
    hash
}

/// A stable 128-bit content digest, displayed as 32 lowercase hex chars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(u128);

impl Digest {
    /// Digest of raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Digest(fnv1a128(bytes))
    }

    /// Digest of a serializable value via its canonical compact JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serialization`] when the value fails to
    /// serialize.
    pub fn of_value<T: Serialize + ?Sized>(value: &T) -> Result<Self, CoreError> {
        let json = serde_json::to_string(value).map_err(|e| CoreError::Serialization {
            message: e.to_string(),
        })?;
        Ok(Self::of_bytes(json.as_bytes()))
    }

    /// Parses the 32-hex-char form back into a digest.  Returns `None` for
    /// anything that is not exactly 32 lowercase/uppercase hex characters.
    pub fn parse(text: &str) -> Option<Self> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Digest)
    }

    /// The 32-lowercase-hex-char string form.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// The raw 128-bit value (e.g. for shard selection in content-addressed
    /// stores).
    pub fn raw(self) -> u128 {
        self.0
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_calls_and_formats() {
        let a = Digest::of_bytes(b"bitwave");
        let b = Digest::of_bytes(b"bitwave");
        assert_eq!(a, b);
        assert_ne!(a, Digest::of_bytes(b"bitwavf"));
        let hex = a.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest::parse(&hex), Some(a));
        assert_eq!(hex, a.to_string());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a/128 of the empty input is the offset basis.
        assert_eq!(fnv1a128(b""), FNV128_OFFSET);
        // One-byte avalanche: 'a' XORed into the basis then multiplied once.
        let expected = (FNV128_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV128_PRIME);
        assert_eq!(fnv1a128(b"a"), expected);
    }

    #[test]
    fn parse_rejects_malformed_digests() {
        assert!(Digest::parse("").is_none());
        assert!(Digest::parse("xyz").is_none());
        assert!(Digest::parse(&"0".repeat(31)).is_none());
        assert!(Digest::parse(&"g".repeat(32)).is_none());
        assert!(Digest::parse(&"0".repeat(33)).is_none());
    }

    #[test]
    fn value_digest_tracks_field_changes() {
        #[derive(Serialize)]
        struct Probe {
            a: u64,
            b: usize,
        }
        let x = Digest::of_value(&Probe { a: 42, b: 16 }).unwrap();
        let y = Digest::of_value(&Probe { a: 42, b: 16 }).unwrap();
        assert_eq!(x, y);
        let z = Digest::of_value(&Probe { a: 43, b: 16 }).unwrap();
        assert_ne!(x, z);
    }
}
