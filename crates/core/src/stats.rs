//! Sparsity statistics (Figs. 1 and 4 of the paper).
//!
//! Three granularities matter to BitWave and its baselines:
//!
//! * **value sparsity** `Sw` — fraction of weights equal to zero (what SCNN
//!   exploits);
//! * **bit sparsity** `Sw,b` — fraction of zero *bits* over all weight bits,
//!   in two's complement (Stripes/Pragmatic/Bitlet) or sign-magnitude;
//! * **bit-column sparsity (BCS)** — fraction of zero *bit columns* over all
//!   columns when the weights are grouped `G` at a time (BitWave).
//!
//! Fig. 1 reports the ratio `SR = bit sparsity / value sparsity` as the
//! potential computational speedup of bit-level over value-level skipping.

use crate::error::CoreError;
use crate::group::{extract_groups, GroupSize};
use bitwave_tensor::bitplane::{BitplaneTensor, WORD_LEN};
use bitwave_tensor::bits::{nonzero_column_count, Encoding, WORD_BITS};
use bitwave_tensor::sm;
use bitwave_tensor::QuantTensor;
use serde::{Deserialize, Serialize};

/// Sparsity statistics of one weight tensor (one layer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSparsityStats {
    /// Number of weights analysed.
    pub num_weights: usize,
    /// Fraction of zero-valued weights (`Sw`).
    pub value_sparsity: f64,
    /// Fraction of zero bits in two's-complement encoding.
    pub bit_sparsity_twos_complement: f64,
    /// Fraction of zero bits in sign-magnitude encoding.
    pub bit_sparsity_sign_magnitude: f64,
    /// Fraction of zero bit-columns at the analysed group size,
    /// two's-complement encoding.
    pub column_sparsity_twos_complement: f64,
    /// Fraction of zero bit-columns at the analysed group size,
    /// sign-magnitude encoding.
    pub column_sparsity_sign_magnitude: f64,
    /// The group size used for the column statistics.
    pub group_size: usize,
}

impl LayerSparsityStats {
    /// Analyses a weight tensor at the given group size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedRank`] for tensors that cannot be
    /// grouped along an input-channel axis.
    pub fn analyze(tensor: &QuantTensor, group_size: GroupSize) -> Result<Self, CoreError> {
        let groups = extract_groups(tensor, group_size)?;
        Ok(Self::from_tensor_and_groups(tensor, &groups))
    }

    /// Analyses a weight tensor whose groups were **already extracted** —
    /// the single-pass path used by the pipeline, where one
    /// [`extract_groups`] call feeds statistics, BCS compression and the
    /// accelerator sparsity profile alike.  `groups` must come from
    /// [`extract_groups`] on the same tensor; the result is identical to
    /// [`LayerSparsityStats::analyze`].
    ///
    /// Group sizes fitting a 64-bit plane word run on the bitplane kernels;
    /// larger custom sweep sizes fall back to
    /// [`LayerSparsityStats::from_tensor_and_groups_scalar`].
    pub fn from_tensor_and_groups(tensor: &QuantTensor, groups: &crate::group::Groups) -> Self {
        if groups.group_size() <= WORD_LEN {
            Self::from_tensor_and_planes(tensor, &groups.to_bitplanes())
        } else {
            Self::from_tensor_and_groups_scalar(tensor, groups)
        }
    }

    /// Analyses a weight tensor from its **bitplane-packed** representation:
    /// every density is a plane popcount and every column statistic a window
    /// mask, with no per-element bit walking.  `planes` must be packed from
    /// the extracted groups of the same tensor
    /// ([`crate::group::Groups::to_bitplanes`]); the padding a group
    /// extraction appends is all-zero and therefore invisible to every count.
    ///
    /// The result is bit-identical to the scalar analysis: all counts are
    /// exact integers, and the final divisions are performed in the same
    /// order on the same values.
    pub fn from_tensor_and_planes(tensor: &QuantTensor, planes: &BitplaneTensor) -> Self {
        let num_weights = tensor.data().len();
        let zeros = num_weights - planes.nonzero_elements() as usize;
        let value_sparsity = if num_weights == 0 {
            0.0
        } else {
            zeros as f64 / num_weights as f64
        };
        // Mirrors `1.0 - sm::bit_density_*`: identical integer counts,
        // identical operation order.
        let bit_density = |ones: u64| {
            if num_weights == 0 {
                0.0
            } else {
                ones as f64 / (num_weights as f64 * 8.0)
            }
        };
        let bit_sparsity_twos_complement =
            1.0 - bit_density(planes.count_ones(Encoding::TwosComplement));
        let bit_sparsity_sign_magnitude =
            1.0 - bit_density(planes.count_ones(Encoding::SignMagnitude));

        // Mirrors `column_sparsity_of_groups`.
        let column_sparsity = |encoding: Encoding| {
            let total_columns = planes.num_groups() * WORD_BITS;
            if total_columns == 0 {
                0.0
            } else {
                let nonzero = planes.total_nonzero_columns(encoding) as usize;
                1.0 - nonzero as f64 / total_columns as f64
            }
        };
        let column_sparsity_twos_complement = column_sparsity(Encoding::TwosComplement);
        let column_sparsity_sign_magnitude = column_sparsity(Encoding::SignMagnitude);

        Self {
            num_weights,
            value_sparsity,
            bit_sparsity_twos_complement,
            bit_sparsity_sign_magnitude,
            column_sparsity_twos_complement,
            column_sparsity_sign_magnitude,
            group_size: planes.group_size(),
        }
    }

    /// The pre-bitplane scalar analysis, kept as the reference
    /// implementation for the equivalence tests, the `bench_sparsity`
    /// speedup gate, and group sizes beyond a plane word.
    pub fn from_tensor_and_groups_scalar(
        tensor: &QuantTensor,
        groups: &crate::group::Groups,
    ) -> Self {
        let data = tensor.data();
        let num_weights = data.len();
        let zeros = data.iter().filter(|&&v| v == 0).count();
        let value_sparsity = if num_weights == 0 {
            0.0
        } else {
            zeros as f64 / num_weights as f64
        };
        let bit_sparsity_twos_complement = 1.0 - sm::bit_density_twos_complement(data);
        let bit_sparsity_sign_magnitude = 1.0 - sm::bit_density_sign_magnitude(data);

        let column_sparsity_twos_complement =
            column_sparsity_of_groups(groups.iter(), Encoding::TwosComplement);
        let column_sparsity_sign_magnitude =
            column_sparsity_of_groups(groups.iter(), Encoding::SignMagnitude);

        Self {
            num_weights,
            value_sparsity,
            bit_sparsity_twos_complement,
            bit_sparsity_sign_magnitude,
            column_sparsity_twos_complement,
            column_sparsity_sign_magnitude,
            group_size: groups.group_size(),
        }
    }

    /// Sparsity ratio `SR = bit sparsity / value sparsity` (two's complement),
    /// Fig. 1's measure of the advantage of bit-level over value-level
    /// skipping.  Returns `f64::INFINITY` when the tensor has no zero values
    /// but does have zero bits.
    pub fn speedup_ratio_twos_complement(&self) -> f64 {
        ratio(self.bit_sparsity_twos_complement, self.value_sparsity)
    }

    /// Sparsity ratio for the sign-magnitude encoding.
    pub fn speedup_ratio_sign_magnitude(&self) -> f64 {
        ratio(self.bit_sparsity_sign_magnitude, self.value_sparsity)
    }

    /// Column sparsity under the chosen encoding.
    pub fn column_sparsity(&self, encoding: Encoding) -> f64 {
        match encoding {
            Encoding::TwosComplement => self.column_sparsity_twos_complement,
            Encoding::SignMagnitude => self.column_sparsity_sign_magnitude,
        }
    }
}

fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator == 0.0 {
        if numerator == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        numerator / denominator
    }
}

/// Fraction of zero bit-columns across an iterator of groups.
pub fn column_sparsity_of_groups<'a, I>(groups: I, encoding: Encoding) -> f64
where
    I: Iterator<Item = &'a [i8]>,
{
    let mut total_columns = 0usize;
    let mut nonzero_columns = 0usize;
    for group in groups {
        total_columns += WORD_BITS;
        nonzero_columns += nonzero_column_count(group, encoding) as usize;
    }
    if total_columns == 0 {
        0.0
    } else {
        1.0 - nonzero_columns as f64 / total_columns as f64
    }
}

/// Average number of *non-zero* bit columns per group — the quantity that
/// directly sets BitWave's compute cycle count per group (each non-zero
/// column costs one BCE cycle).
pub fn mean_nonzero_columns<'a, I>(groups: I, encoding: Encoding) -> f64
where
    I: Iterator<Item = &'a [i8]>,
{
    let mut count = 0usize;
    let mut total = 0u64;
    for group in groups {
        count += 1;
        total += u64::from(nonzero_column_count(group, encoding));
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// Aggregated sparsity statistics over a whole network (weighted by element
/// count), the per-network bars of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SparsitySummary {
    /// Total number of weights across the aggregated layers.
    pub num_weights: usize,
    /// Element-weighted mean value sparsity.
    pub value_sparsity: f64,
    /// Element-weighted mean two's-complement bit sparsity.
    pub bit_sparsity_twos_complement: f64,
    /// Element-weighted mean sign-magnitude bit sparsity.
    pub bit_sparsity_sign_magnitude: f64,
    /// Element-weighted mean two's-complement column sparsity.
    pub column_sparsity_twos_complement: f64,
    /// Element-weighted mean sign-magnitude column sparsity.
    pub column_sparsity_sign_magnitude: f64,
}

impl SparsitySummary {
    /// Aggregates per-layer statistics, weighting each layer by its number of
    /// weights.
    pub fn aggregate<'a, I>(layers: I) -> Self
    where
        I: IntoIterator<Item = &'a LayerSparsityStats>,
    {
        let mut out = SparsitySummary::default();
        let mut weight_total = 0usize;
        for layer in layers {
            let w = layer.num_weights;
            weight_total += w;
            let wf = w as f64;
            out.value_sparsity += layer.value_sparsity * wf;
            out.bit_sparsity_twos_complement += layer.bit_sparsity_twos_complement * wf;
            out.bit_sparsity_sign_magnitude += layer.bit_sparsity_sign_magnitude * wf;
            out.column_sparsity_twos_complement += layer.column_sparsity_twos_complement * wf;
            out.column_sparsity_sign_magnitude += layer.column_sparsity_sign_magnitude * wf;
        }
        if weight_total > 0 {
            let n = weight_total as f64;
            out.value_sparsity /= n;
            out.bit_sparsity_twos_complement /= n;
            out.bit_sparsity_sign_magnitude /= n;
            out.column_sparsity_twos_complement /= n;
            out.column_sparsity_sign_magnitude /= n;
        }
        out.num_weights = weight_total;
        out
    }

    /// Fig. 1's `SR` ratio (two's-complement bit sparsity over value
    /// sparsity).
    pub fn speedup_ratio_twos_complement(&self) -> f64 {
        ratio(self.bit_sparsity_twos_complement, self.value_sparsity)
    }

    /// Fig. 1's `SR` ratio for sign-magnitude.
    pub fn speedup_ratio_sign_magnitude(&self) -> f64 {
        ratio(self.bit_sparsity_sign_magnitude, self.value_sparsity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_slice;
    use bitwave_tensor::prelude::*;
    use bitwave_tensor::quant::QuantParams;

    fn tensor_from(values: Vec<i8>) -> QuantTensor {
        let len = values.len();
        QuantTensor::new(Shape::d1(len), values, QuantParams::unit()).unwrap()
    }

    #[test]
    fn all_zero_tensor_is_fully_sparse() {
        let t = tensor_from(vec![0i8; 32]);
        let s = LayerSparsityStats::analyze(&t, GroupSize::G8).unwrap();
        assert_eq!(s.value_sparsity, 1.0);
        assert_eq!(s.bit_sparsity_twos_complement, 1.0);
        assert_eq!(s.column_sparsity_sign_magnitude, 1.0);
    }

    #[test]
    fn dense_tensor_has_low_bit_sparsity_in_twos_complement() {
        // -1 in two's complement is all ones.
        let t = tensor_from(vec![-1i8; 32]);
        let s = LayerSparsityStats::analyze(&t, GroupSize::G8).unwrap();
        assert_eq!(s.value_sparsity, 0.0);
        assert_eq!(s.bit_sparsity_twos_complement, 0.0);
        // In sign-magnitude, -1 is 0b1000_0001: 6 of 8 bits are zero.
        assert!((s.bit_sparsity_sign_magnitude - 0.75).abs() < 1e-12);
        assert!(s.column_sparsity_sign_magnitude > s.column_sparsity_twos_complement);
    }

    #[test]
    fn speedup_ratio_matches_figure1_order_of_magnitude() {
        // Small-magnitude Gaussian weights: value sparsity is low but bit
        // sparsity is high, so SR should be large (Fig. 1 reports 5.67x-32.5x).
        let gen = WeightGenerator::new(WeightDistribution::Laplacian { scale: 0.02 }, 1);
        let w = gen.generate(Shape::conv_weight(32, 32, 3, 3));
        let q = quantize_per_tensor(&w, 8).unwrap();
        let s = LayerSparsityStats::analyze(&q, GroupSize::G8).unwrap();
        let sr_tc = s.speedup_ratio_twos_complement();
        let sr_sm = s.speedup_ratio_sign_magnitude();
        assert!(sr_tc > 2.0, "SR (2's complement) too low: {sr_tc}");
        assert!(
            sr_sm > sr_tc,
            "sign-magnitude SR ({sr_sm}) should exceed two's complement ({sr_tc})"
        );
    }

    #[test]
    fn sign_magnitude_raises_column_sparsity_like_figure4() {
        // Mimic Fig. 4: weights dominated by small negative values.
        let gen = WeightGenerator::new(WeightDistribution::Laplacian { scale: 0.015 }, 7);
        let w = gen.generate(Shape::conv_weight(64, 64, 3, 3));
        let q = quantize_per_tensor(&w, 8).unwrap();
        let s = LayerSparsityStats::analyze(&q, GroupSize::Custom(4)).unwrap();
        assert!(
            s.column_sparsity_sign_magnitude > 2.0 * s.column_sparsity_twos_complement,
            "expected SM column sparsity ({}) to be well above TC ({})",
            s.column_sparsity_sign_magnitude,
            s.column_sparsity_twos_complement
        );
    }

    #[test]
    fn column_sparsity_decreases_with_group_size() {
        let gen = WeightGenerator::new(WeightDistribution::Laplacian { scale: 0.02 }, 3);
        let w = gen.generate(Shape::conv_weight(16, 64, 3, 3));
        let q = quantize_per_tensor(&w, 8).unwrap();
        let mut last = f64::INFINITY;
        for g in [1usize, 2, 4, 8, 16, 32, 64] {
            let s = LayerSparsityStats::analyze(&q, GroupSize::from_len(g)).unwrap();
            assert!(
                s.column_sparsity_sign_magnitude <= last + 1e-9,
                "column sparsity should not increase with G (G={g})"
            );
            last = s.column_sparsity_sign_magnitude;
        }
    }

    #[test]
    fn mean_nonzero_columns_consistent_with_sparsity() {
        let data: Vec<i8> = (0..64).map(|i| (i % 5) as i8).collect();
        let groups = group_slice(&data, GroupSize::G8);
        let sparsity = column_sparsity_of_groups(groups.iter(), Encoding::SignMagnitude);
        let mean_nz = mean_nonzero_columns(groups.iter(), Encoding::SignMagnitude);
        assert!((mean_nz / 8.0 + sparsity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_weights_by_layer_size() {
        let small = LayerSparsityStats::analyze(&tensor_from(vec![0i8; 8]), GroupSize::G8).unwrap();
        let large =
            LayerSparsityStats::analyze(&tensor_from(vec![-1i8; 24]), GroupSize::G8).unwrap();
        let agg = SparsitySummary::aggregate([&small, &large]);
        assert_eq!(agg.num_weights, 32);
        assert!((agg.value_sparsity - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratio_conventions() {
        let stats = LayerSparsityStats {
            num_weights: 10,
            value_sparsity: 0.0,
            bit_sparsity_twos_complement: 0.5,
            bit_sparsity_sign_magnitude: 0.6,
            column_sparsity_twos_complement: 0.1,
            column_sparsity_sign_magnitude: 0.2,
            group_size: 8,
        };
        assert_eq!(stats.speedup_ratio_twos_complement(), f64::INFINITY);
        assert_eq!(stats.column_sparsity(Encoding::SignMagnitude), 0.2);
    }

    #[test]
    fn empty_group_iterator_yields_zero() {
        let empty: Vec<&[i8]> = vec![];
        assert_eq!(
            column_sparsity_of_groups(empty.clone().into_iter(), Encoding::SignMagnitude),
            0.0
        );
        assert_eq!(
            mean_nonzero_columns(empty.into_iter(), Encoding::SignMagnitude),
            0.0
        );
    }
}
