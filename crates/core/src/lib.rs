//! # bitwave-core
//!
//! The algorithmic contribution of the BitWave paper (HPCA 2024), Section III:
//!
//! * [`group`] — weight grouping along the input-channel dimension and the
//!   layer-wise tunable group (column) size `G ∈ {8, 16, 32}`.
//! * [`stats`] — value sparsity, bit-level sparsity and **bit-column
//!   sparsity (BCS)** statistics in two's-complement and sign-magnitude
//!   encodings (Figs. 1 and 4).
//! * [`compress`] — the lossless BCS compression format (non-zero bit
//!   columns + 8-bit zero-column index per group) together with the
//!   value-sparsity baselines ZRE (zero run-length encoding) and CSR used in
//!   Fig. 5.
//! * [`bitflip`] — the one-shot, training-free **Bit-Flip** weight
//!   perturbation that forces a target number of zero columns per group while
//!   minimising the Euclidean distance to the original group (Fig. 4c).
//! * [`search`] — the greedy layer-wise search of Algorithm 1.
//! * [`pareto`] — multi-objective Pareto fronts: the compression-ratio/
//!   accuracy front of Fig. 6 plus the N-objective generalisation the
//!   dataflow design-space explorer prunes with.
//! * [`digest`] — stable FNV-1a/128 content digests over canonical JSON
//!   (cache/memo addressing for `bitwave-serve` and `bitwave-dse`).
//!
//! The crate deliberately knows nothing about networks, dataflows or
//! hardware; those live in `bitwave-dnn`, `bitwave-dataflow`,
//! `bitwave-accel` and `bitwave-sim`.
//!
//! # Example
//!
//! ```
//! use bitwave_core::prelude::*;
//! use bitwave_tensor::bits::Encoding;
//!
//! // Group four Int8 weights and inspect their bit-column sparsity.
//! let group = [5i8, -3, 9, 1];
//! let tc = zero_column_count(&group, Encoding::TwosComplement);
//! let sm = zero_column_count(&group, Encoding::SignMagnitude);
//! assert!(sm >= tc, "sign-magnitude never has fewer zero columns here");
//!
//! // Compress a weight slice with BCS at group size 8 and decompress it.
//! let weights: Vec<i8> = (0..64).map(|i| ((i % 7) - 3) as i8).collect();
//! let compressed = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude).compress(&weights);
//! assert_eq!(compressed.decompress(), weights);
//! assert!(compressed.compression_ratio_with_index() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitflip;
pub mod compress;
pub mod digest;
pub mod error;
pub mod group;
pub mod pareto;
pub mod search;
pub mod stats;

pub use bitwave_tensor::bits::{zero_column_count, Encoding};
pub use error::CoreError;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::bitflip::{flip_group, flip_slice, FlipOutcome};
    pub use crate::compress::{
        BcsCodec, CompressedTensor, CompressionReport, CsrCodec, WeightCodec, ZreCodec,
    };
    pub use crate::digest::{fnv1a128, Digest};
    pub use crate::error::CoreError;
    pub use crate::group::{extract_groups, GroupSize, Groups};
    pub use crate::pareto::{
        pareto_front, pareto_front_indices, pareto_front_n, Direction, ParetoPoint, ParetoPointN,
    };
    pub use crate::search::{greedy_bitflip_search, FlipStrategy, SearchConfig, SearchOutcome};
    pub use crate::stats::{LayerSparsityStats, SparsitySummary};
    pub use bitwave_tensor::bits::{nonzero_column_count, zero_column_count, Encoding};
}
