//! Greedy layer-wise Bit-Flip search (Algorithm 1 of the paper).
//!
//! The search operates on a *strategy* `S[layer][G] = z`: for every layer and
//! every hardware-supported group size, the number of zero columns the layer
//! is flipped to.  Starting from an initial strategy it repeatedly tries to
//! increment one `(layer, G)` entry, keeps the move with the best resulting
//! model quality, and stops as soon as the best achievable quality falls
//! below the minimum-accuracy constraint.
//!
//! The crate stays agnostic of what "accuracy" means: the caller supplies an
//! evaluation closure (in the reproduction, `bitwave-dnn`'s accuracy proxy;
//! in the paper, dataset accuracy / F1 / PESQ).

use crate::error::CoreError;
use crate::group::GroupSize;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The per-layer, per-group-size zero-column targets ("strategy `S`" in
/// Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlipStrategy {
    entries: BTreeMap<String, BTreeMap<usize, u32>>,
}

impl FlipStrategy {
    /// An empty strategy (no layer is flipped).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the zero-column target of `(layer, group_size)`.
    pub fn set(&mut self, layer: &str, group_size: GroupSize, zero_columns: u32) {
        self.entries
            .entry(layer.to_string())
            .or_default()
            .insert(group_size.len(), zero_columns.min(8));
    }

    /// Returns the zero-column target of `(layer, group_size)` (0 if unset).
    pub fn get(&self, layer: &str, group_size: GroupSize) -> u32 {
        self.entries
            .get(layer)
            .and_then(|m| m.get(&group_size.len()))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates over all `(layer, group_size, zero_columns)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, GroupSize, u32)> + '_ {
        self.entries.iter().flat_map(|(layer, per_g)| {
            per_g
                .iter()
                .map(move |(&g, &z)| (layer.as_str(), GroupSize::from_len(g), z))
        })
    }

    /// For a layer, the `(group_size, zero_columns)` choice with the largest
    /// zero-column target — the setting the hardware mapping ultimately uses.
    pub fn best_for_layer(&self, layer: &str) -> Option<(GroupSize, u32)> {
        self.entries.get(layer).and_then(|per_g| {
            per_g
                .iter()
                .max_by_key(|(_, &z)| z)
                .map(|(&g, &z)| (GroupSize::from_len(g), z))
        })
    }

    /// Number of layers with at least one non-zero target.
    pub fn flipped_layer_count(&self) -> usize {
        self.entries
            .values()
            .filter(|per_g| per_g.values().any(|&z| z > 0))
            .count()
    }
}

/// Configuration of the greedy search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Minimum acceptable model quality (`macc` in Algorithm 1); the search
    /// stops when no move keeps quality at or above this value.
    pub min_accuracy: f64,
    /// Group sizes explored per layer (the paper uses 8, 16 and 32).
    pub group_sizes: Vec<GroupSize>,
    /// Upper bound on the zero-column target per entry (7 in the paper — the
    /// 8th column would zero the whole group).
    pub max_zero_columns: u32,
    /// Safety bound on the number of greedy moves (the paper has no explicit
    /// bound; ours prevents run-away loops in degenerate configurations).
    pub max_iterations: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            min_accuracy: 0.0,
            group_sizes: GroupSize::hardware_supported().to_vec(),
            max_zero_columns: 7,
            max_iterations: 256,
        }
    }
}

/// One accepted greedy move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchStep {
    /// Layer whose target was incremented.
    pub layer: String,
    /// Group size of the incremented entry.
    pub group_size: usize,
    /// The new zero-column target after the move.
    pub zero_columns: u32,
    /// Model quality after applying the move.
    pub accuracy: f64,
}

/// Result of the greedy search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The final strategy (the last strategy whose quality met the
    /// constraint).
    pub strategy: FlipStrategy,
    /// Quality of the final strategy.
    pub final_accuracy: f64,
    /// The accepted moves in order.
    pub history: Vec<SearchStep>,
    /// Number of candidate evaluations performed.
    pub evaluations: usize,
}

/// Runs Algorithm 1: greedy layer-wise Bit-Flip strategy search.
///
/// `evaluate` receives a candidate strategy and returns the resulting model
/// quality (higher is better); it is called once per `(layer, group size)`
/// candidate per iteration, exactly as the pseudo-code's
/// `Inference(BitFlip(M, Stmp), D)`.  Evaluator failures (e.g. an
/// ungroupable tensor) abort the search and propagate.
///
/// # Errors
///
/// Propagates the first [`CoreError`] the evaluator returns.
pub fn greedy_bitflip_search<F>(
    layers: &[String],
    initial: FlipStrategy,
    config: &SearchConfig,
    mut evaluate: F,
) -> Result<SearchOutcome, CoreError>
where
    F: FnMut(&FlipStrategy) -> Result<f64, CoreError>,
{
    let mut strategy = initial;
    let mut history = Vec::new();
    let mut evaluations = 0usize;
    let mut final_accuracy = {
        evaluations += 1;
        evaluate(&strategy)?
    };

    for _ in 0..config.max_iterations {
        let mut best_accuracy = f64::NEG_INFINITY;
        let mut next_move: Option<(String, GroupSize, u32)> = None;

        for layer in layers {
            for &gs in &config.group_sizes {
                let current = strategy.get(layer, gs);
                if current >= config.max_zero_columns {
                    continue;
                }
                let mut candidate = strategy.clone();
                candidate.set(layer, gs, current + 1);
                evaluations += 1;
                let accuracy = evaluate(&candidate)?;
                if accuracy > best_accuracy {
                    best_accuracy = accuracy;
                    next_move = Some((layer.clone(), gs, current + 1));
                }
            }
        }

        let Some((layer, gs, z)) = next_move else {
            break; // every entry is saturated
        };
        if best_accuracy < config.min_accuracy {
            break; // Algorithm 1: stop when the best move violates macc
        }
        strategy.set(&layer, gs, z);
        final_accuracy = best_accuracy;
        history.push(SearchStep {
            layer,
            group_size: gs.len(),
            zero_columns: z,
            accuracy: best_accuracy,
        });
    }

    Ok(SearchOutcome {
        strategy,
        final_accuracy,
        history,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layers() -> Vec<String> {
        vec!["conv1".to_string(), "conv2".to_string(), "fc".to_string()]
    }

    /// A toy quality model: each layer has a per-zero-column accuracy cost,
    /// "conv1" being the most sensitive (mirrors the paper's observation that
    /// early, weight-light layers are more sensitive).
    fn toy_accuracy(strategy: &FlipStrategy) -> Result<f64, CoreError> {
        let mut acc = 100.0;
        for (layer, _g, z) in strategy.iter() {
            let cost = match layer {
                "conv1" => 1.5,
                "conv2" => 0.3,
                _ => 0.1,
            };
            acc -= cost * f64::from(z);
        }
        Ok(acc)
    }

    #[test]
    fn greedy_prefers_insensitive_layers() {
        let config = SearchConfig {
            min_accuracy: 99.0,
            max_zero_columns: 7,
            ..SearchConfig::default()
        };
        let outcome =
            greedy_bitflip_search(&layers(), FlipStrategy::new(), &config, toy_accuracy).unwrap();
        assert!(outcome.final_accuracy >= 99.0);
        // The insensitive fc layer should be pushed harder than conv1.
        let fc = outcome
            .strategy
            .best_for_layer("fc")
            .map(|(_, z)| z)
            .unwrap_or(0);
        let conv1 = outcome
            .strategy
            .best_for_layer("conv1")
            .map(|(_, z)| z)
            .unwrap_or(0);
        assert!(fc > conv1, "fc={fc} should exceed conv1={conv1}");
        assert!(!outcome.history.is_empty());
    }

    #[test]
    fn search_stops_at_accuracy_floor() {
        let config = SearchConfig {
            min_accuracy: 99.9,
            ..SearchConfig::default()
        };
        let outcome =
            greedy_bitflip_search(&layers(), FlipStrategy::new(), &config, toy_accuracy).unwrap();
        assert!(outcome.final_accuracy >= 99.9);
        // With a 0.1 cost per column on fc only a couple of moves fit.
        assert!(outcome.history.len() <= 3);
    }

    #[test]
    fn search_saturates_at_max_zero_columns() {
        let config = SearchConfig {
            min_accuracy: 0.0,
            max_zero_columns: 2,
            group_sizes: vec![GroupSize::G8],
            max_iterations: 1000,
        };
        let outcome =
            greedy_bitflip_search(&layers(), FlipStrategy::new(), &config, toy_accuracy).unwrap();
        for (_, _, z) in outcome.strategy.iter() {
            assert!(z <= 2);
        }
        // All entries saturated: 3 layers * 1 group size * 2 columns = 6 moves.
        assert_eq!(outcome.history.len(), 6);
    }

    #[test]
    fn initial_strategy_is_respected() {
        let mut initial = FlipStrategy::new();
        initial.set("fc", GroupSize::G16, 4);
        let config = SearchConfig {
            min_accuracy: 99.0,
            ..SearchConfig::default()
        };
        let outcome = greedy_bitflip_search(&layers(), initial, &config, toy_accuracy).unwrap();
        assert!(outcome.strategy.get("fc", GroupSize::G16) >= 4);
    }

    #[test]
    fn strategy_accessors() {
        let mut s = FlipStrategy::new();
        s.set("a", GroupSize::G8, 3);
        s.set("a", GroupSize::G32, 5);
        s.set("b", GroupSize::G8, 0);
        assert_eq!(s.get("a", GroupSize::G8), 3);
        assert_eq!(s.get("a", GroupSize::G16), 0);
        assert_eq!(s.best_for_layer("a"), Some((GroupSize::G32, 5)));
        assert_eq!(s.flipped_layer_count(), 1);
        assert_eq!(s.iter().count(), 3);
        // Values above 8 are clamped.
        s.set("c", GroupSize::G8, 12);
        assert_eq!(s.get("c", GroupSize::G8), 8);
    }

    #[test]
    fn evaluation_count_is_tracked() {
        let config = SearchConfig {
            min_accuracy: 99.99,
            ..SearchConfig::default()
        };
        let outcome =
            greedy_bitflip_search(&layers(), FlipStrategy::new(), &config, toy_accuracy).unwrap();
        // 1 initial + at least one sweep over 3 layers x 3 group sizes.
        assert!(outcome.evaluations >= 10);
    }

    #[test]
    fn evaluator_errors_propagate() {
        let config = SearchConfig::default();
        let result = greedy_bitflip_search(&layers(), FlipStrategy::new(), &config, |_| {
            Err(CoreError::UnsupportedRank(3))
        });
        assert_eq!(result.unwrap_err(), CoreError::UnsupportedRank(3));
    }
}
