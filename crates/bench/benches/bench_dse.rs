//! Harness for the `bitwave-dse` dataflow design-space exploration engine.
//!
//! Two invariants are **asserted** (not just timed) before the criterion
//! loops, so `cargo bench --bench bench_dse` doubles as the CI gate:
//!
//! 1. the searched mapping policy beats (or at worst ties) the Fig. 9
//!    heuristic on end-to-end EDP for the ResNet-style model on the BitWave
//!    accelerator — measured on full pipeline reports, not the search's own
//!    cost estimates;
//! 2. a memoized re-search of an already-seen network is ≥ 10× faster than
//!    the cold search that populated the cache, and returns exactly the
//!    same result.

use bitwave::context::ExperimentContext;
use bitwave::dataflow::mapping::MappingPolicy;
use bitwave::dse::DseEngine;
use bitwave::pipeline::{ModelReport, Pipeline};
use bitwave_accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave_accel::LayerSparsityProfile;
use bitwave_bench::{print_header, write_bench_json};
use bitwave_dnn::models::resnet18;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const SAMPLE_CAP: usize = 4_000;

/// The `BENCH_dse.json` trajectory record, matching the
/// `BENCH_serve.json`/`BENCH_sparsity.json` convention.
#[derive(Serialize)]
struct DseBenchReport {
    sample_cap: usize,
    heuristic_edp: f64,
    searched_edp: f64,
    searched_over_heuristic_gain: f64,
    memo_cold_ms: f64,
    memo_warm_ms: f64,
    memo_speedup: f64,
    memo_speedup_gate: f64,
    /// Process-wide mapping-space enumerations answered by the shared
    /// space cache during this harness run.
    space_reuse_total: u64,
}

fn ctx() -> ExperimentContext {
    ExperimentContext::default().with_sample_cap(SAMPLE_CAP)
}

fn edp(report: &ModelReport) -> f64 {
    report.total_cycles * report.energy.total_pj()
}

/// Gate 1: `MappingPolicy::Searched` must not lose to the heuristic on EDP
/// for ResNet18 on the fully optimised BitWave configuration.  Returns
/// `(heuristic_edp, searched_edp)` for the trajectory record.
fn assert_searched_beats_heuristic_edp() -> (f64, f64) {
    print_header(
        "dse_edp",
        "searched vs heuristic mapping EDP on ResNet18/BitWave (gate: searched <= heuristic)",
    );
    let net = resnet18();
    let heuristic = Pipeline::new(ctx()).run_model(&net).expect("heuristic run");
    let searched = Pipeline::new(ctx().with_mapping_policy(MappingPolicy::Searched))
        .run_model(&net)
        .expect("searched run");
    let (h, s) = (edp(&heuristic), edp(&searched));
    println!(
        "heuristic EDP: {h:.4e}   searched EDP: {s:.4e}   gain: {:.3}x   \
         (cycles {:.4e} -> {:.4e}, energy {:.4e} -> {:.4e} pJ)",
        h / s,
        heuristic.total_cycles,
        searched.total_cycles,
        heuristic.energy.total_pj(),
        searched.energy.total_pj(),
    );
    assert!(
        s <= h,
        "searched EDP {s:.4e} must not exceed heuristic EDP {h:.4e}"
    );
    (h, s)
}

/// Gate 2: re-searching an already-seen network must be ≥ 10× faster than
/// the cold search, with bit-identical results.  Returns
/// `(cold_ms, warm_ms, target)` for the trajectory record.
fn assert_memoized_research_speedup() -> (f64, f64, f64) {
    const TARGET: f64 = 10.0;
    print_header(
        "dse_memo",
        "cold vs memoized network search (gate: warm >= 10x faster, identical results)",
    );
    let context = ctx();
    let net = resnet18();
    let weights = context.weights(&net);
    let accel = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
    let pipeline = Pipeline::new(context.clone());
    let prepared = pipeline
        .prepare_with_weights(&net, &weights)
        .expect("prepared layers");
    let profiles: Vec<LayerSparsityProfile> = prepared
        .iter()
        .map(|layer| *layer.analysis.profile_for(&accel))
        .collect();

    // A private cache so the cold path is genuinely cold.
    let engine = DseEngine::new(context.memory, context.energy);
    let t0 = Instant::now();
    let cold = engine
        .search_network(&accel, &net, &profiles)
        .expect("cold search");
    let cold_time = t0.elapsed();
    let t1 = Instant::now();
    let warm = engine
        .search_network(&accel, &net, &profiles)
        .expect("warm search");
    let warm_time = t1.elapsed();
    assert_eq!(cold, warm, "memoized results must equal cold results");

    let ratio = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(f64::MIN_POSITIVE);
    let stats = engine.cache().stats();
    println!(
        "cold: {:.1} ms   warm: {:.3} ms   speedup: {ratio:.1}x   \
         (target: >={TARGET}x; memo hits {} misses {})",
        cold_time.as_secs_f64() * 1e3,
        warm_time.as_secs_f64() * 1e3,
        stats.hits(),
        stats.misses(),
    );
    assert!(
        stats.hits() >= net.layers.len() as u64,
        "the warm sweep must hit the memo for every layer (hits: {})",
        stats.hits()
    );
    assert!(
        ratio >= TARGET,
        "memoized re-search speedup {ratio:.1}x is below the {TARGET}x gate"
    );
    (
        cold_time.as_secs_f64() * 1e3,
        warm_time.as_secs_f64() * 1e3,
        TARGET,
    )
}

fn bench(c: &mut Criterion) {
    let (heuristic_edp, searched_edp) = assert_searched_beats_heuristic_edp();
    let (memo_cold_ms, memo_warm_ms, memo_speedup_gate) = assert_memoized_research_speedup();
    write_bench_json(
        "BENCH_dse.json",
        &DseBenchReport {
            sample_cap: SAMPLE_CAP,
            heuristic_edp,
            searched_edp,
            searched_over_heuristic_gain: heuristic_edp / searched_edp.max(f64::MIN_POSITIVE),
            memo_cold_ms,
            memo_warm_ms,
            memo_speedup: memo_cold_ms / memo_warm_ms.max(f64::MIN_POSITIVE),
            memo_speedup_gate,
            space_reuse_total: bitwave::dse::space_reuse_total(),
        },
    );

    // Steady-state criterion loops.
    let context = ctx();
    let net = resnet18();
    let accel = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
    let weights = context.weights(&net);
    let pipeline = Pipeline::new(context.clone());
    let prepared = pipeline
        .prepare_with_weights(&net, &weights)
        .expect("prepare");
    let profiles: Vec<LayerSparsityProfile> = prepared
        .iter()
        .map(|layer| *layer.analysis.profile_for(&accel))
        .collect();

    let cold_engine_layer = net.layers[10].clone();
    c.bench_function("dse/search_one_layer_cold", |b| {
        b.iter(|| {
            // A fresh private cache per iteration keeps this the cold path.
            let engine = DseEngine::new(context.memory, context.energy);
            black_box(
                engine
                    .search_layer(
                        black_box(&accel),
                        black_box(&cold_engine_layer),
                        black_box(&profiles[10]),
                    )
                    .expect("search"),
            )
        })
    });

    let warm_engine = DseEngine::new(context.memory, context.energy);
    warm_engine
        .search_network(&accel, &net, &profiles)
        .expect("warm-up");
    c.bench_function("dse/search_resnet18_memoized", |b| {
        b.iter(|| {
            black_box(
                warm_engine
                    .search_network(black_box(&accel), black_box(&net), black_box(&profiles))
                    .expect("memoized search"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
