//! Harness for the `bitwave-sweep` whole-accelerator design-space sweep.
//!
//! Invariants are **asserted** (not just timed) before the criterion loops,
//! so `cargo bench --bench bench_sweep` doubles as the CI gate:
//!
//! 1. at least one searched spec on the Pareto front **strictly dominates**
//!    the paper's Table I BitWave configuration (4096 lanes, sync 8,
//!    2×256 KiB SRAM, Table-I menu) on portfolio EDP;
//! 2. a warm re-sweep over a populated store root re-evaluates **0**
//!    points (everything replays from the content-addressed result set);
//! 3. amortization: the factored evaluation path (compute groups factored
//!    once, memory re-priced per point) beats the full per-candidate path
//!    by ≥ 1.5× sequentially on **any** machine — the win is algorithmic,
//!    not parallel — and reproduces its report byte for byte;
//! 4. in-process parallelism: with ≥ 4 cores, a 4-thread fan-out of the
//!    full path is ≥ 2.5× faster than its sequential run, and the combined
//!    throughput configuration (factored + 4 threads) is ≥ 5× faster than
//!    the sequential full path.  Both byte-identical.  On smaller machines
//!    the timing halves are vacuous (there is no parallelism to win), so
//!    they degrade to the byte-identity half and print a skip notice —
//!    `scaling_gate_enforced`/`throughput_gate_enforced` record which
//!    halves actually ran;
//! 5. multi-process sharding: same ≥ 2.5× gate for a 4-worker sharded
//!    sweep, same core-count guard, same byte-identity fallback.

use bitwave_bench::{print_header, write_bench_json};
use bitwave_sweep::{
    build_portfolio, evaluate_point, evaluate_point_factored, global_eval_engine, run_sharded,
    run_with_progress_opts, run_worker, EvalMode, EvalOptions, SweepConfig, SweepLedger,
};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const SCALING_TARGET: f64 = 2.5;
const SCALING_WORKERS: usize = 4;
/// In-process fan-out width for the parallel gates.
const IN_PROCESS_THREADS: usize = 4;
/// Unconditional floor on the sequential factored-vs-full speedup: the
/// amortization is algorithmic (6 compute groups price 24 points on the
/// small preset), so it must win even on one core.  Typical measured
/// speedup is ~2×; 1.5× leaves headroom for noisy shared runners.
const AMORTIZED_FLOOR: f64 = 1.5;
/// Repetitions for the best-of-N timing runs backing the unconditional
/// floor — the minimum is the least noise-inflated estimate of true cost.
const TIMING_REPS: usize = 3;
/// Combined gate: factored + threads vs the sequential full path.
const THROUGHPUT_TARGET: f64 = 5.0;
/// Sharding-overhead ceiling for the degraded (< 4 cores) gate: claim-file
/// traffic and polling may cost something, but never double the sweep.
const OVERHEAD_CEILING: f64 = 2.0;

#[derive(Serialize)]
struct SweepBenchReport {
    space: &'static str,
    total_points: usize,
    /// Sequential full per-candidate evaluation — the pre-amortization
    /// reference cost (also recorded as `sequential_secs` historically).
    full_eval_secs: f64,
    sequential_secs: f64,
    /// Sequential factored evaluation, cold compute-group cache.
    amortized_secs: f64,
    amortized_speedup: f64,
    amortized_floor: f64,
    /// Full path fanned out across `in_process_threads` scoped threads.
    parallel_secs: f64,
    in_process_threads: usize,
    in_process_scaling: f64,
    in_process_scaling_target: f64,
    /// Factored + threads vs sequential full — the shipped configuration.
    throughput_secs: f64,
    throughput_speedup: f64,
    throughput_target: f64,
    /// Whether the ≥ 4-core timing gates were enforced on this machine
    /// (the byte-identity halves always run).
    scaling_gate_enforced: bool,
    throughput_gate_enforced: bool,
    sharded_secs: f64,
    sharded_workers: usize,
    scaling: f64,
    scaling_target: f64,
    available_cores: usize,
    warm_reevaluated: usize,
    warm_reused: usize,
    baseline_label: String,
    baseline_edp: f64,
    best_edp: f64,
    best_label: String,
    edp_gain_over_table1: f64,
}

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("bitwave-bench-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn opts(threads: usize, mode: EvalMode) -> EvalOptions {
    EvalOptions { threads, mode }
}

/// One timed in-memory run of the sweep under `opts`; returns the elapsed
/// seconds and the report JSON.
fn timed_run(config: &SweepConfig, o: EvalOptions) -> (f64, String) {
    let t = Instant::now();
    let (report, _) = run_with_progress_opts(config, None, o, |_| {}).expect("sweep runs");
    let secs = t.elapsed().as_secs_f64();
    (secs, serde_json::to_string(&report).expect("report"))
}

/// Best-of-[`TIMING_REPS`] timing: `prep` re-establishes the measured
/// state before every repetition (e.g. clears the compute-group cache so a
/// "cold" run stays cold), and the minimum elapsed time is kept — the
/// least noise-inflated estimate of the true cost on a shared runner.
/// Every repetition must produce the same bytes.
fn timed_best(config: &SweepConfig, o: EvalOptions, prep: impl Fn()) -> (f64, String) {
    let mut best: Option<(f64, String)> = None;
    for _ in 0..TIMING_REPS {
        prep();
        let (secs, json) = timed_run(config, o);
        if let Some((best_secs, best_json)) = &best {
            assert_eq!(
                &json, best_json,
                "timed repetitions must agree byte for byte"
            );
            if secs >= *best_secs {
                continue;
            }
        }
        best = Some((secs, json));
    }
    best.expect("at least one timing repetition")
}

fn bench(c: &mut Criterion) {
    let config = SweepConfig::small();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    print_header(
        "sweep_gates",
        "whole-accelerator DSE sweep: Table-I dominance, warm replay, amortized/factored \
         evaluation, in-process parallel fan-out, sharded scaling",
    );

    // Untimed warm-up: build the portfolio (shared by every run below) and
    // warm the process-wide enumeration-space cache, so the timed runs
    // compare evaluation strategies rather than one-time setup.
    let portfolio = build_portfolio(&config).expect("portfolio");
    let (_, reference) = timed_run(&config, opts(1, EvalMode::Full));
    let sequential_report: bitwave_sweep::FrontReport = {
        // Re-run to keep a structured copy for the dominance gate (cheap:
        // everything relevant is warm).
        let (report, _) =
            run_with_progress_opts(&config, None, opts(1, EvalMode::Full), |_| {}).expect("sweep");
        report
    };

    // Gate 1: some front member strictly dominates the paper's Table I
    // BitWave configuration on portfolio EDP.  That configuration is a
    // point *inside* the small space, so its exact portfolio EDP comes out
    // of the same report.
    let is_table1 = |pt: &bitwave_sweep::CandidatePoint| {
        pt.lanes == 4096
            && pt.sync_lanes == 8
            && pt.weight_sram_kb == 256
            && pt.activation_sram_kb == 256
            && pt.menu.name() == "table1"
    };
    let baseline = sequential_report
        .front
        .iter()
        .find(|p| is_table1(&p.point))
        .map(|p| (p.label.clone(), p.edp));
    let (baseline_label, baseline_edp) = baseline.unwrap_or_else(|| {
        // The Table I point was dominated clean off the front; recover its
        // EDP by evaluating it directly.
        let point = bitwave_sweep::enumerate(&config)
            .into_iter()
            .find(is_table1)
            .expect("Table I point is inside the small space");
        let result = evaluate_point(&point, &config, &portfolio);
        (result.label, result.edp)
    });
    let best = sequential_report
        .front
        .iter()
        .filter(|p| p.feasible)
        .min_by(|a, b| a.edp.total_cmp(&b.edp))
        .expect("a feasible front member");
    let (best_label, best_edp) = (best.label.clone(), best.edp);
    println!(
        "Table I baseline {baseline_label}: EDP {baseline_edp:.4e}   best searched {best_label}: \
         EDP {best_edp:.4e}   gain {:.3}x",
        baseline_edp / best_edp
    );
    assert!(
        best_edp < baseline_edp,
        "no searched spec dominates Table I on EDP ({best_edp:.4e} vs {baseline_edp:.4e})"
    );

    // Timed sequential full path — the pre-amortization reference.
    let (full_eval_secs, full_json) = timed_best(&config, opts(1, EvalMode::Full), || {});
    assert_eq!(full_json, reference, "full path must be deterministic");

    // Gate 3: sequential factored path, cold compute-group cache (cleared
    // before every repetition).  The floor is unconditional — the
    // amortization is algorithmic, not a parallelism artifact.
    let (amortized_secs, amortized_json) = timed_best(&config, opts(1, EvalMode::Factored), || {
        global_eval_engine().clear();
    });
    assert_eq!(
        amortized_json, reference,
        "factored evaluation must reproduce the full report byte for byte"
    );
    let amortized_speedup = full_eval_secs / amortized_secs.max(f64::MIN_POSITIVE);
    println!(
        "sequential full: {full_eval_secs:.3}s   sequential factored (cold): \
         {amortized_secs:.3}s   amortized speedup: {amortized_speedup:.2}x   \
         (floor: >={AMORTIZED_FLOOR}x, unconditional)"
    );
    assert!(
        amortized_speedup >= AMORTIZED_FLOOR,
        "factored evaluation speedup {amortized_speedup:.2}x is below the \
         unconditional {AMORTIZED_FLOOR}x floor"
    );

    // Gate 4a: in-process fan-out of the full path.
    let (parallel_secs, parallel_json) =
        timed_best(&config, opts(IN_PROCESS_THREADS, EvalMode::Full), || {});
    assert_eq!(
        parallel_json, reference,
        "in-process parallel fan-out must reproduce the report byte for byte"
    );
    let in_process_scaling = full_eval_secs / parallel_secs.max(f64::MIN_POSITIVE);
    let scaling_gate_enforced = cores >= IN_PROCESS_THREADS;

    // Gate 4b: the shipped throughput configuration — factored + threads —
    // against the sequential full path, compute-group cache cold again
    // before every repetition.
    let (throughput_secs, throughput_json) = timed_best(
        &config,
        opts(IN_PROCESS_THREADS, EvalMode::Factored),
        || {
            global_eval_engine().clear();
        },
    );
    assert_eq!(
        throughput_json, reference,
        "factored + parallel evaluation must reproduce the report byte for byte"
    );
    let throughput_speedup = full_eval_secs / throughput_secs.max(f64::MIN_POSITIVE);
    let throughput_gate_enforced = cores >= IN_PROCESS_THREADS;
    println!(
        "{IN_PROCESS_THREADS}-thread full: {parallel_secs:.3}s ({in_process_scaling:.2}x)   \
         {IN_PROCESS_THREADS}-thread factored: {throughput_secs:.3}s \
         ({throughput_speedup:.2}x vs sequential full)   (cores: {cores})"
    );
    if scaling_gate_enforced {
        assert!(
            in_process_scaling >= SCALING_TARGET,
            "{IN_PROCESS_THREADS}-thread in-process scaling {in_process_scaling:.2}x is below \
             the {SCALING_TARGET}x gate"
        );
        assert!(
            throughput_speedup >= THROUGHPUT_TARGET,
            "factored + {IN_PROCESS_THREADS}-thread throughput {throughput_speedup:.2}x is \
             below the {THROUGHPUT_TARGET}x gate"
        );
    } else {
        println!(
            "SKIP: in-process timing gates need >= {IN_PROCESS_THREADS} cores (have {cores}); \
             byte-identity halves enforced above"
        );
    }

    // Gate 5: multi-process sharded cold run over a shared store root
    // (compute-group cache cold again, like the sequential factored run it
    // is compared against).
    global_eval_engine().clear();
    let root = temp_root("cold");
    let t1 = Instant::now();
    let stats = run_sharded(&config, &root, SCALING_WORKERS).expect("sharded sweep");
    let sharded_secs = t1.elapsed().as_secs_f64();
    let evaluated: usize = stats.iter().map(|s| s.evaluated).sum();
    assert_eq!(
        evaluated,
        config.total_points(),
        "the sharded workers together evaluate every point exactly once"
    );
    let ledger = SweepLedger::open(&config, Some(&root)).expect("ledger");
    let sharded_report =
        bitwave_sweep::assemble_report(&config, &ledger).expect("complete sharded result set");
    assert_eq!(
        serde_json::to_string(&sharded_report).expect("report"),
        reference,
        "sharded and sequential sweeps must produce byte-identical reports"
    );

    // Gate 2: a warm re-sweep over the populated root re-evaluates nothing.
    let warm = run_worker(&config, &root).expect("warm re-sweep");
    println!(
        "warm re-sweep: evaluated {} reused {} (gate: evaluated == 0)",
        warm.evaluated, warm.reused
    );
    assert_eq!(warm.evaluated, 0, "warm re-sweep must replay every point");
    assert_eq!(warm.reused, config.total_points());

    // Multi-process scaling, enforced only where there are cores to scale
    // onto.  The sharded run uses the default (factored) path, so it is
    // compared against the sequential factored time.
    let scaling = amortized_secs / sharded_secs.max(f64::MIN_POSITIVE);
    println!(
        "sequential factored: {amortized_secs:.2}s   {SCALING_WORKERS}-worker sharded: \
         {sharded_secs:.2}s   scaling: {scaling:.2}x   (cores: {cores})"
    );
    if scaling_gate_enforced {
        assert!(
            scaling >= SCALING_TARGET,
            "{SCALING_WORKERS}-worker scaling {scaling:.2}x is below the {SCALING_TARGET}x gate"
        );
    } else {
        println!(
            "SKIP: multi-process scaling gate needs >= {SCALING_WORKERS} cores (have {cores}); \
             enforcing the overhead ceiling instead"
        );
        assert!(
            sharded_secs <= amortized_secs * OVERHEAD_CEILING,
            "sharding overhead {sharded_secs:.2}s exceeds {OVERHEAD_CEILING}x \
             the sequential {amortized_secs:.2}s on a serial machine"
        );
    }

    write_bench_json(
        "BENCH_sweep.json",
        &SweepBenchReport {
            space: "small",
            total_points: config.total_points(),
            full_eval_secs,
            sequential_secs: full_eval_secs,
            amortized_secs,
            amortized_speedup,
            amortized_floor: AMORTIZED_FLOOR,
            parallel_secs,
            in_process_threads: IN_PROCESS_THREADS,
            in_process_scaling,
            in_process_scaling_target: SCALING_TARGET,
            throughput_secs,
            throughput_speedup,
            throughput_target: THROUGHPUT_TARGET,
            scaling_gate_enforced,
            throughput_gate_enforced,
            sharded_secs,
            sharded_workers: SCALING_WORKERS,
            scaling,
            scaling_target: SCALING_TARGET,
            available_cores: cores,
            warm_reevaluated: warm.evaluated,
            warm_reused: warm.reused,
            baseline_label,
            baseline_edp,
            best_edp,
            best_label,
            edp_gain_over_table1: baseline_edp / best_edp,
        },
    );
    let _ = std::fs::remove_dir_all(&root);

    // Steady-state criterion loops.
    let points = bitwave_sweep::enumerate(&config);
    c.bench_function("sweep/evaluate_one_point_full", |b| {
        b.iter(|| {
            black_box(evaluate_point(
                black_box(&points[0]),
                black_box(&config),
                black_box(&portfolio),
            ))
        })
    });
    c.bench_function("sweep/evaluate_one_point_factored", |b| {
        b.iter(|| {
            black_box(evaluate_point_factored(
                black_box(&points[0]),
                black_box(&config),
                black_box(&portfolio),
            ))
        })
    });

    let warm_root = temp_root("warm");
    run_worker(&config, &warm_root).expect("populate warm root");
    c.bench_function("sweep/warm_resweep_small", |b| {
        b.iter(|| black_box(run_worker(black_box(&config), black_box(&warm_root)).expect("warm")))
    });
    let _ = std::fs::remove_dir_all(&warm_root);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
