//! Harness for the `bitwave-sweep` whole-accelerator design-space sweep.
//!
//! Three invariants are **asserted** (not just timed) before the criterion
//! loops, so `cargo bench --bench bench_sweep` doubles as the CI gate:
//!
//! 1. at least one searched spec on the Pareto front **strictly dominates**
//!    the paper's Table I BitWave configuration (4096 lanes, sync 8,
//!    2×256 KiB SRAM, Table-I menu) on portfolio EDP;
//! 2. a warm re-sweep over a populated store root re-evaluates **0**
//!    points (everything replays from the content-addressed result set);
//! 3. sharding: on a machine with ≥ 4 cores, a 4-worker sharded sweep is
//!    ≥ 2.5× faster wall-clock than the 1-worker sequential run of the
//!    same space.  On smaller machines that gate is vacuous (there is no
//!    parallelism to win), so it degrades to the correctness half —
//!    sharded and sequential sweeps must produce byte-identical reports,
//!    and sharding overhead must stay bounded — and prints a skip notice.

use bitwave_bench::{print_header, write_bench_json};
use bitwave_sweep::{
    build_portfolio, evaluate_point, run_sharded, run_with_progress, run_worker, SweepConfig,
    SweepLedger,
};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const SCALING_TARGET: f64 = 2.5;
const SCALING_WORKERS: usize = 4;
/// Sharding-overhead ceiling for the degraded (< 4 cores) gate: claim-file
/// traffic and polling may cost something, but never double the sweep.
const OVERHEAD_CEILING: f64 = 2.0;

#[derive(Serialize)]
struct SweepBenchReport {
    space: &'static str,
    total_points: usize,
    sequential_secs: f64,
    sharded_secs: f64,
    sharded_workers: usize,
    scaling: f64,
    scaling_target: f64,
    scaling_gate_enforced: bool,
    available_cores: usize,
    warm_reevaluated: usize,
    warm_reused: usize,
    baseline_label: String,
    baseline_edp: f64,
    best_edp: f64,
    best_label: String,
    edp_gain_over_table1: f64,
}

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("bitwave-bench-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn bench(c: &mut Criterion) {
    let config = SweepConfig::small();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    print_header(
        "sweep_gates",
        "whole-accelerator DSE sweep: Table-I dominance, warm replay, sharded scaling",
    );

    // Sequential (1-worker, in-memory) reference run.
    let t0 = Instant::now();
    let (sequential_report, _) =
        run_with_progress(&config, None, |_| {}).expect("sequential sweep");
    let sequential_secs = t0.elapsed().as_secs_f64();

    // Gate 1: some front member strictly dominates the paper's Table I
    // BitWave configuration on portfolio EDP.  That configuration is a
    // point *inside* the small space, so its exact portfolio EDP comes out
    // of the same report.
    let baseline = sequential_report
        .front
        .iter()
        .map(|p| (p, &p.point))
        .find(|(_, pt)| {
            pt.lanes == 4096
                && pt.sync_lanes == 8
                && pt.weight_sram_kb == 256
                && pt.activation_sram_kb == 256
                && pt.menu.name() == "table1"
        })
        .map(|(p, _)| (p.label.clone(), p.edp));
    let (baseline_label, baseline_edp) = baseline.unwrap_or_else(|| {
        // The Table I point was dominated clean off the front; recover its
        // EDP by evaluating it directly.
        let portfolio = build_portfolio(&config).expect("portfolio");
        let point = bitwave_sweep::enumerate(&config)
            .into_iter()
            .find(|pt| {
                pt.lanes == 4096
                    && pt.sync_lanes == 8
                    && pt.weight_sram_kb == 256
                    && pt.activation_sram_kb == 256
                    && pt.menu.name() == "table1"
            })
            .expect("Table I point is inside the small space");
        let result = evaluate_point(&point, &config, &portfolio);
        (result.label, result.edp)
    });
    let best = sequential_report
        .front
        .iter()
        .filter(|p| p.feasible)
        .min_by(|a, b| a.edp.total_cmp(&b.edp))
        .expect("a feasible front member");
    let (best_label, best_edp) = (best.label.clone(), best.edp);
    println!(
        "Table I baseline {baseline_label}: EDP {baseline_edp:.4e}   best searched {best_label}: \
         EDP {best_edp:.4e}   gain {:.3}x",
        baseline_edp / best_edp
    );
    assert!(
        best_edp < baseline_edp,
        "no searched spec dominates Table I on EDP ({best_edp:.4e} vs {baseline_edp:.4e})"
    );

    // Sharded cold run over a shared store root.
    let root = temp_root("cold");
    let t1 = Instant::now();
    let stats = run_sharded(&config, &root, SCALING_WORKERS).expect("sharded sweep");
    let sharded_secs = t1.elapsed().as_secs_f64();
    let evaluated: usize = stats.iter().map(|s| s.evaluated).sum();
    assert_eq!(
        evaluated,
        config.total_points(),
        "the sharded workers together evaluate every point exactly once"
    );
    let ledger = SweepLedger::open(&config, Some(&root)).expect("ledger");
    let sharded_report =
        bitwave_sweep::assemble_report(&config, &ledger).expect("complete sharded result set");
    assert_eq!(
        serde_json::to_string(&sharded_report).expect("report"),
        serde_json::to_string(&sequential_report).expect("report"),
        "sharded and sequential sweeps must produce byte-identical reports"
    );

    // Gate 2: a warm re-sweep over the populated root re-evaluates nothing.
    let warm = run_worker(&config, &root).expect("warm re-sweep");
    println!(
        "warm re-sweep: evaluated {} reused {} (gate: evaluated == 0)",
        warm.evaluated, warm.reused
    );
    assert_eq!(warm.evaluated, 0, "warm re-sweep must replay every point");
    assert_eq!(warm.reused, config.total_points());

    // Gate 3: scaling, enforced only where there are cores to scale onto.
    let scaling = sequential_secs / sharded_secs.max(f64::MIN_POSITIVE);
    let scaling_gate_enforced = cores >= SCALING_WORKERS;
    println!(
        "sequential: {sequential_secs:.2}s   {SCALING_WORKERS}-worker sharded: \
         {sharded_secs:.2}s   scaling: {scaling:.2}x   (cores: {cores})"
    );
    if scaling_gate_enforced {
        assert!(
            scaling >= SCALING_TARGET,
            "{SCALING_WORKERS}-worker scaling {scaling:.2}x is below the {SCALING_TARGET}x gate"
        );
    } else {
        println!(
            "SKIP: scaling gate needs >= {SCALING_WORKERS} cores (have {cores}); \
             enforcing the overhead ceiling instead"
        );
        assert!(
            sharded_secs <= sequential_secs * OVERHEAD_CEILING,
            "sharding overhead {sharded_secs:.2}s exceeds {OVERHEAD_CEILING}x \
             the sequential {sequential_secs:.2}s on a serial machine"
        );
    }

    write_bench_json(
        "BENCH_sweep.json",
        &SweepBenchReport {
            space: "small",
            total_points: config.total_points(),
            sequential_secs,
            sharded_secs,
            sharded_workers: SCALING_WORKERS,
            scaling,
            scaling_target: SCALING_TARGET,
            scaling_gate_enforced,
            available_cores: cores,
            warm_reevaluated: warm.evaluated,
            warm_reused: warm.reused,
            baseline_label,
            baseline_edp,
            best_edp,
            best_label,
            edp_gain_over_table1: baseline_edp / best_edp,
        },
    );
    let _ = std::fs::remove_dir_all(&root);

    // Steady-state criterion loops.
    let portfolio = build_portfolio(&config).expect("portfolio");
    let points = bitwave_sweep::enumerate(&config);
    c.bench_function("sweep/evaluate_one_point", |b| {
        b.iter(|| {
            black_box(evaluate_point(
                black_box(&points[0]),
                black_box(&config),
                black_box(&portfolio),
            ))
        })
    });

    let warm_root = temp_root("warm");
    run_worker(&config, &warm_root).expect("populate warm root");
    c.bench_function("sweep/warm_resweep_small", |b| {
        b.iter(|| black_box(run_worker(black_box(&config), black_box(&warm_root)).expect("warm")))
    });
    let _ = std::fs::remove_dir_all(&warm_root);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
