//! Load harness for the `bitwave-serve` evaluation service: N client
//! threads hammer an in-process server over real sockets.
//!
//! Two invariants are **asserted** (not just timed) before the criterion
//! loops, so `cargo bench --bench bench_serve` doubles as the CI gate:
//!
//! 1. serving K concurrent evaluations of one model performs **zero**
//!    weight-tensor deep copies beyond the cold run (the shared
//!    `Arc<NetworkWeights>` store + `WeightHandle` planning path);
//! 2. cache-hit request throughput is ≥ 10× cold-path request throughput —
//!    replaying stored bytes must be an order of magnitude cheaper than
//!    running the pipeline.

use bitwave_bench::{print_header, write_bench_json};
use bitwave_serve::client::Client;
use bitwave_serve::server::{start, ServeConfig, ServerHandle};
use bitwave_tensor::copy_metrics::CopyCounter;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// The machine-readable record `bench_serve` writes to the workspace root:
/// the cold-path `/v1/evaluate` numbers and the cache-hit ratio the 10×
/// gate just asserted.
#[derive(Debug, Serialize)]
struct ServeBenchReport {
    /// Wall time of the very first (cold) `/v1/evaluate`, milliseconds.
    cold_evaluate_ms: f64,
    /// Cold-path throughput (8 never-seen digests), requests/second.
    cold_rps: f64,
    /// Cache-hit throughput (same digests replayed), requests/second.
    hit_rps: f64,
    /// `hit_rps / cold_rps`.
    hit_over_cold: f64,
    /// The gate the ratio passed.
    hit_over_cold_gate: f64,
    /// Client threads used for the throughput runs.
    client_threads: usize,
    /// Per-request sample cap of the evaluated model.
    sample_cap: usize,
}

const SAMPLE_CAP: usize = 1_500;
const CLIENT_THREADS: usize = 4;

fn bench_server() -> ServerHandle {
    start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("bench server starts")
}

fn evaluate_body(seed: u64) -> String {
    format!(
        r#"{{"model":"resnet18","accelerator":"bitwave","sample_cap":{SAMPLE_CAP},"seed":{seed}}}"#
    )
}

/// Gate 1: K concurrent evaluations of one model — distinct accelerators,
/// one shared weight set — must deep-copy **zero** tensors beyond the cold
/// run that populated the store.
fn assert_zero_copy_concurrent_serving(handle: &ServerHandle) -> f64 {
    print_header(
        "serve_zero_copy",
        "K concurrent evaluations of one model share weights (copy-count gate)",
    );
    let addr = handle.local_addr();
    // Cold run generates the weight set for (resnet18, seed 1, cap); its
    // wall time is the cold-evaluate latency recorded in BENCH_serve.json.
    let mut client = Client::new(addr);
    let t0 = Instant::now();
    let cold = client
        .post_json("/v1/evaluate", &evaluate_body(1))
        .expect("cold evaluate");
    let cold_evaluate_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.status, 200, "cold run: {:?}", cold.text());
    println!("cold /v1/evaluate: {cold_evaluate_ms:.1} ms");

    let counter = CopyCounter::snapshot();
    let accelerators = ["dense", "scnn", "stripes", "pragmatic", "bitlet", "huaa"];
    let threads: Vec<_> = accelerators
        .into_iter()
        .map(|accelerator| {
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let body = format!(
                    r#"{{"model":"resnet18","accelerator":"{accelerator}","sample_cap":{SAMPLE_CAP},"seed":1}}"#
                );
                let response = client.post_json("/v1/evaluate", &body).expect("evaluate");
                assert_eq!(response.status, 200, "{accelerator}: {:?}", response.text());
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("client thread");
    }
    let copies = counter.delta();
    println!(
        "concurrent evaluations: {}   weight generations: {}   tensor deep copies: {copies}",
        accelerators.len(),
        handle.state().store.generations(),
    );
    assert_eq!(
        handle.state().store.generations(),
        1,
        "all accelerator evaluations must share the one generated weight set"
    );
    assert_eq!(
        copies, 0,
        "serving concurrent evaluations must not deep-copy weight tensors"
    );
    cold_evaluate_ms
}

/// Requests-per-second of `n_requests` POSTs spread over [`CLIENT_THREADS`]
/// keep-alive clients, each thread issuing its share sequentially.
fn measure_rps(addr: std::net::SocketAddr, bodies: &[String]) -> f64 {
    let bodies = Arc::new(bodies.to_vec());
    let t0 = Instant::now();
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                for body in bodies.iter().skip(t).step_by(CLIENT_THREADS) {
                    let response = client.post_json("/v1/evaluate", body).expect("evaluate");
                    assert_eq!(response.status, 200, "{body}: {:?}", response.text());
                    black_box(response.body.len());
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("load thread");
    }
    bodies.len() as f64 / t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE)
}

/// Gate 2: cache-hit throughput ≥ 10× cold-path throughput.  Returns
/// `(cold_rps, hit_rps, gate)` for the bench report.
fn assert_hit_throughput_gate(handle: &ServerHandle) -> (f64, f64, f64) {
    const TARGET: f64 = 10.0;
    print_header(
        "serve_throughput",
        "cache-hit vs cold-path request throughput (>=10x gate)",
    );
    let addr = handle.local_addr();

    // Cold path: 8 never-seen digests (distinct seeds → fresh weights +
    // fresh pipeline runs), hammered by the client pool.
    let cold_bodies: Vec<String> = (100..108).map(evaluate_body).collect();
    let cold_rps = measure_rps(addr, &cold_bodies);

    // Hit path: the same 8 digests again, many times over — every request
    // replays stored bytes.
    let hit_bodies: Vec<String> = (0..400)
        .map(|i| evaluate_body(100 + (i % 8) as u64))
        .collect();
    let hit_rps = measure_rps(addr, &hit_bodies);

    let ratio = hit_rps / cold_rps.max(f64::MIN_POSITIVE);
    let stats = handle.state().cache.stats(bitwave_serve::CacheOp::Evaluate);
    println!(
        "cold: {cold_rps:.1} req/s   hits: {hit_rps:.1} req/s   ratio: {ratio:.1}x   \
         (target: >={TARGET}x; cache hits {} misses {})",
        stats.hits(),
        stats.misses(),
    );
    assert!(
        stats.hits() >= 400,
        "hit phase must actually hit the cache (hits: {})",
        stats.hits()
    );
    assert!(
        ratio >= TARGET,
        "cache-hit throughput {hit_rps:.1} req/s is below {TARGET}x the cold path ({cold_rps:.1} req/s)"
    );
    (cold_rps, hit_rps, TARGET)
}

fn bench(c: &mut Criterion) {
    let handle = bench_server();
    let cold_evaluate_ms = assert_zero_copy_concurrent_serving(&handle);
    let (cold_rps, hit_rps, gate) = assert_hit_throughput_gate(&handle);
    write_bench_json(
        "BENCH_serve.json",
        &ServeBenchReport {
            cold_evaluate_ms,
            cold_rps,
            hit_rps,
            hit_over_cold: hit_rps / cold_rps.max(f64::MIN_POSITIVE),
            hit_over_cold_gate: gate,
            client_threads: CLIENT_THREADS,
            sample_cap: SAMPLE_CAP,
        },
    );

    // Steady-state criterion loops over the warm server.
    let addr = handle.local_addr();
    let mut client = Client::new(addr);
    let warm_body = evaluate_body(100);
    c.bench_function("serve/evaluate_cache_hit", |b| {
        b.iter(|| {
            let response = client
                .post_json("/v1/evaluate", black_box(&warm_body))
                .expect("hit");
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });
    let digest = client
        .post_json("/v1/evaluate", &warm_body)
        .expect("warm")
        .header("x-bitwave-digest")
        .expect("digest header")
        .to_string();
    let report_path = format!("/v1/reports/{digest}");
    c.bench_function("serve/report_replay", |b| {
        b.iter(|| {
            let response = client.get(black_box(&report_path)).expect("replay");
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });
    c.bench_function("serve/healthz", |b| {
        b.iter(|| {
            let response = client.get(black_box("/healthz")).expect("healthz");
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });

    drop(client);
    handle.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
