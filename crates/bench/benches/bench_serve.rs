//! Load harness for the `bitwave-serve` evaluation service: N client
//! threads hammer an in-process server over real sockets.
//!
//! Four invariants are **asserted** (not just timed) before the criterion
//! loops, so `cargo bench --bench bench_serve` doubles as the CI gate:
//!
//! 1. serving K concurrent evaluations of one model performs **zero**
//!    weight-tensor deep copies beyond the cold run (the shared
//!    `Arc<NetworkWeights>` store + `WeightHandle` planning path);
//! 2. cache-hit request throughput is ≥ 10× cold-path request throughput —
//!    replaying stored bytes must be an order of magnitude cheaper than
//!    running the pipeline;
//! 3. the poll-driven loop holds ≥ 10× more open connections than the
//!    compute-worker pool at a bounded request p99 (the old
//!    thread-per-connection pool capped connections at the worker count);
//! 4. cross-request batching: a burst of compatible evaluations achieves
//!    ≥ 2× the goodput of the same burst in slot-per-request
//!    (`--no-batching`) mode under the same `max_inflight` budget.

use bitwave_bench::{print_header, write_bench_json};
use bitwave_serve::client::Client;
use bitwave_serve::server::{start, ServeConfig, ServerHandle};
use bitwave_tensor::copy_metrics::CopyCounter;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The machine-readable record `bench_serve` writes to the workspace root:
/// the cold-path `/v1/evaluate` numbers and the cache-hit ratio the 10×
/// gate just asserted.
#[derive(Debug, Serialize)]
struct ServeBenchReport {
    /// Wall time of the very first (cold) `/v1/evaluate`, milliseconds.
    cold_evaluate_ms: f64,
    /// Cold-path throughput (8 never-seen digests), requests/second.
    cold_rps: f64,
    /// Cache-hit throughput (same digests replayed), requests/second.
    hit_rps: f64,
    /// `hit_rps / cold_rps`.
    hit_over_cold: f64,
    /// The gate the ratio passed.
    hit_over_cold_gate: f64,
    /// Client threads used for the throughput runs.
    client_threads: usize,
    /// Per-request sample cap of the evaluated model.
    sample_cap: usize,
    /// Open connections held during the p99 gate (parked + active).
    open_connections: usize,
    /// `/healthz` p99 with only the active clients connected, milliseconds.
    p99_baseline_ms: f64,
    /// `/healthz` p99 with [`Self::open_connections`] open, milliseconds.
    p99_loaded_ms: f64,
    /// Goodput of the compatible burst with batching on, requests/second.
    batched_rps: f64,
    /// Goodput of the identical burst in slot-per-request mode.
    unbatched_rps: f64,
    /// `batched_rps / unbatched_rps`.
    batched_over_unbatched: f64,
    /// The gate the batching ratio passed.
    batched_over_unbatched_gate: f64,
}

const SAMPLE_CAP: usize = 1_500;
const CLIENT_THREADS: usize = 4;
const BENCH_WORKERS: usize = 4;

fn bench_server() -> ServerHandle {
    start(ServeConfig {
        workers: BENCH_WORKERS,
        ..ServeConfig::default()
    })
    .expect("bench server starts")
}

fn evaluate_body(seed: u64) -> String {
    format!(
        r#"{{"model":"resnet18","accelerator":"bitwave","sample_cap":{SAMPLE_CAP},"seed":{seed}}}"#
    )
}

/// Gate 1: K concurrent evaluations of one model — distinct accelerators,
/// one shared weight set — must deep-copy **zero** tensors beyond the cold
/// run that populated the store.
fn assert_zero_copy_concurrent_serving(handle: &ServerHandle) -> f64 {
    print_header(
        "serve_zero_copy",
        "K concurrent evaluations of one model share weights (copy-count gate)",
    );
    let addr = handle.local_addr();
    // Cold run generates the weight set for (resnet18, seed 1, cap); its
    // wall time is the cold-evaluate latency recorded in BENCH_serve.json.
    let mut client = Client::new(addr);
    let t0 = Instant::now();
    let cold = client
        .post_json("/v1/evaluate", &evaluate_body(1))
        .expect("cold evaluate");
    let cold_evaluate_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.status, 200, "cold run: {:?}", cold.text());
    println!("cold /v1/evaluate: {cold_evaluate_ms:.1} ms");

    let counter = CopyCounter::snapshot();
    let accelerators = ["dense", "scnn", "stripes", "pragmatic", "bitlet", "huaa"];
    let threads: Vec<_> = accelerators
        .into_iter()
        .map(|accelerator| {
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let body = format!(
                    r#"{{"model":"resnet18","accelerator":"{accelerator}","sample_cap":{SAMPLE_CAP},"seed":1}}"#
                );
                let response = client.post_json("/v1/evaluate", &body).expect("evaluate");
                assert_eq!(response.status, 200, "{accelerator}: {:?}", response.text());
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("client thread");
    }
    let copies = counter.delta();
    println!(
        "concurrent evaluations: {}   weight generations: {}   tensor deep copies: {copies}",
        accelerators.len(),
        handle.state().store.generations(),
    );
    assert_eq!(
        handle.state().store.generations(),
        1,
        "all accelerator evaluations must share the one generated weight set"
    );
    assert_eq!(
        copies, 0,
        "serving concurrent evaluations must not deep-copy weight tensors"
    );
    cold_evaluate_ms
}

/// Requests-per-second of `n_requests` POSTs spread over [`CLIENT_THREADS`]
/// keep-alive clients, each thread issuing its share sequentially.
fn measure_rps(addr: std::net::SocketAddr, bodies: &[String]) -> f64 {
    let bodies = Arc::new(bodies.to_vec());
    let t0 = Instant::now();
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                for body in bodies.iter().skip(t).step_by(CLIENT_THREADS) {
                    let response = client.post_json("/v1/evaluate", body).expect("evaluate");
                    assert_eq!(response.status, 200, "{body}: {:?}", response.text());
                    black_box(response.body.len());
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("load thread");
    }
    bodies.len() as f64 / t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE)
}

/// Gate 2: cache-hit throughput ≥ 10× cold-path throughput.  Returns
/// `(cold_rps, hit_rps, gate)` for the bench report.
fn assert_hit_throughput_gate(handle: &ServerHandle) -> (f64, f64, f64) {
    const TARGET: f64 = 10.0;
    print_header(
        "serve_throughput",
        "cache-hit vs cold-path request throughput (>=10x gate)",
    );
    let addr = handle.local_addr();

    // Cold path: 8 never-seen digests (distinct seeds → fresh weights +
    // fresh pipeline runs), hammered by the client pool.
    let cold_bodies: Vec<String> = (100..108).map(evaluate_body).collect();
    let cold_rps = measure_rps(addr, &cold_bodies);

    // Hit path: the same 8 digests again, many times over — every request
    // replays stored bytes.
    let hit_bodies: Vec<String> = (0..400)
        .map(|i| evaluate_body(100 + (i % 8) as u64))
        .collect();
    let hit_rps = measure_rps(addr, &hit_bodies);

    let ratio = hit_rps / cold_rps.max(f64::MIN_POSITIVE);
    let stats = handle.state().cache.stats(bitwave_serve::CacheOp::Evaluate);
    println!(
        "cold: {cold_rps:.1} req/s   hits: {hit_rps:.1} req/s   ratio: {ratio:.1}x   \
         (target: >={TARGET}x; cache hits {} misses {})",
        stats.hits(),
        stats.misses(),
    );
    assert!(
        stats.hits() >= 400,
        "hit phase must actually hit the cache (hits: {})",
        stats.hits()
    );
    assert!(
        ratio >= TARGET,
        "cache-hit throughput {hit_rps:.1} req/s is below {TARGET}x the cold path ({cold_rps:.1} req/s)"
    );
    (cold_rps, hit_rps, TARGET)
}

/// Idle keep-alive connections parked on the loop during the p99 gate.
const PARKED_CONNS: usize = 92;
/// `/healthz` samples per active client when measuring p99.
const HEALTH_SAMPLES: usize = 100;

fn percentile_ms(mut samples: Vec<f64>, pct: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let rank = ((samples.len() as f64) * pct).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// p99 of `/healthz` round-trips over [`CLIENT_THREADS`] keep-alive clients.
fn measure_healthz_p99(addr: std::net::SocketAddr) -> f64 {
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                (0..HEALTH_SAMPLES)
                    .map(|_| {
                        let t0 = Instant::now();
                        let response = client.get("/healthz").expect("healthz");
                        assert_eq!(response.status, 200);
                        t0.elapsed().as_secs_f64() * 1e3
                    })
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    let samples: Vec<f64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("latency client"))
        .collect();
    percentile_ms(samples, 0.99)
}

/// Gate 3: with 10× more connections open than the compute-worker pool,
/// request p99 must stay bounded.  The pre-event-loop server dedicated a
/// pool thread to each connection, so its concurrency ceiling *was* the
/// worker count.
fn assert_connection_scaling_gate(handle: &ServerHandle) -> (usize, f64, f64) {
    print_header(
        "serve_connections",
        "10x worker-count open connections at bounded /healthz p99",
    );
    let addr = handle.local_addr();
    let p99_baseline = measure_healthz_p99(addr);

    let parked: Vec<TcpStream> = (0..PARKED_CONNS)
        .map(|_| TcpStream::connect(addr).expect("parked connection"))
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let open = handle
        .state()
        .metrics
        .connections_open
        .load(Ordering::Relaxed) as usize;
    let p99_loaded = measure_healthz_p99(addr);
    let total = PARKED_CONNS + CLIENT_THREADS;
    println!(
        "open connections: {open} (gate: >={PARKED_CONNS})   p99 base: {p99_baseline:.3} ms   \
         p99 @{total} conns: {p99_loaded:.3} ms"
    );
    assert!(
        open >= PARKED_CONNS,
        "the loop must hold all parked connections open concurrently (open: {open})"
    );
    assert!(
        total >= 10 * BENCH_WORKERS,
        "gate misconfigured: {total} connections is not 10x the {BENCH_WORKERS}-worker pool"
    );
    let bound = (3.0 * p99_baseline).max(5.0);
    assert!(
        p99_loaded <= bound,
        "p99 with {total} open connections ({p99_loaded:.3} ms) exceeds {bound:.3} ms"
    );
    drop(parked);
    (total, p99_baseline, p99_loaded)
}

/// Accelerators × duplicates making up the compatible burst: six distinct
/// digests, all sharing one `(model, seed, sample_cap)` weight set.
const BATCH_ACCELERATORS: [&str; 6] = ["dense", "scnn", "stripes", "pragmatic", "bitlet", "huaa"];
const BATCH_DUPLICATES: usize = 16;
/// Heavy enough that in-flight slots stay occupied for the whole burst.
const BATCH_SAMPLE_CAP: usize = 30_000;
const BATCH_MAX_INFLIGHT: usize = 8;

/// Fires the compatible burst at a fresh server and returns
/// `(goodput_rps, served_200, shed_503)`.
fn burst_goodput(batching: bool) -> (f64, usize, usize) {
    let handle = start(ServeConfig {
        workers: BENCH_WORKERS,
        max_inflight: BATCH_MAX_INFLIGHT,
        batching,
        ..ServeConfig::default()
    })
    .expect("burst server starts");
    let addr = handle.local_addr();
    let total = BATCH_ACCELERATORS.len() * BATCH_DUPLICATES;
    let barrier = Arc::new(Barrier::new(total + 1));
    let threads: Vec<_> = (0..total)
        .map(|i| {
            let accelerator = BATCH_ACCELERATORS[i / BATCH_DUPLICATES];
            let body = format!(
                r#"{{"model":"resnet18","accelerator":"{accelerator}","sample_cap":{BATCH_SAMPLE_CAP},"seed":9}}"#
            );
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                barrier.wait();
                client.post_json("/v1/evaluate", &body).expect("evaluate").status
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let statuses: Vec<u16> = threads
        .into_iter()
        .map(|t| t.join().expect("burst client"))
        .collect();
    let elapsed = t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    handle.shutdown();
    let served = statuses.iter().filter(|s| **s == 200).count();
    let shed = statuses.iter().filter(|s| **s == 503).count();
    (served as f64 / elapsed, served, shed)
}

/// Gate 4: the same compatible burst, batched vs slot-per-request, under
/// one `max_inflight` budget — coalescing must at least double goodput.
fn assert_batching_goodput_gate() -> (f64, f64, f64) {
    const TARGET: f64 = 2.0;
    print_header(
        "serve_batching",
        "compatible-burst goodput, batched vs slot-per-request (>=2x gate)",
    );
    let total = BATCH_ACCELERATORS.len() * BATCH_DUPLICATES;
    let (unbatched_rps, unbatched_served, unbatched_shed) = burst_goodput(false);
    let (batched_rps, batched_served, batched_shed) = burst_goodput(true);
    let ratio = batched_rps / unbatched_rps.max(f64::MIN_POSITIVE);
    println!(
        "batched: {batched_rps:.1} ok/s ({batched_served}/{total} served, {batched_shed} shed)   \
         unbatched: {unbatched_rps:.1} ok/s ({unbatched_served}/{total} served, {unbatched_shed} shed)   \
         ratio: {ratio:.1}x (target: >={TARGET}x)"
    );
    assert_eq!(
        batched_served, total,
        "batching must serve the entire compatible burst without shedding"
    );
    assert_eq!(
        batched_shed, 0,
        "no compatible request may be shed when batching"
    );
    assert!(
        unbatched_shed > 0,
        "slot-per-request mode must shed under the same burst, or the gate is vacuous"
    );
    assert!(
        ratio >= TARGET,
        "batched goodput {batched_rps:.1} ok/s is below {TARGET}x unbatched ({unbatched_rps:.1} ok/s)"
    );
    (unbatched_rps, batched_rps, TARGET)
}

fn bench(c: &mut Criterion) {
    let handle = bench_server();
    let cold_evaluate_ms = assert_zero_copy_concurrent_serving(&handle);
    let (cold_rps, hit_rps, gate) = assert_hit_throughput_gate(&handle);
    let (open_connections, p99_baseline_ms, p99_loaded_ms) =
        assert_connection_scaling_gate(&handle);
    let (unbatched_rps, batched_rps, batched_gate) = assert_batching_goodput_gate();
    write_bench_json(
        "BENCH_serve.json",
        &ServeBenchReport {
            cold_evaluate_ms,
            cold_rps,
            hit_rps,
            hit_over_cold: hit_rps / cold_rps.max(f64::MIN_POSITIVE),
            hit_over_cold_gate: gate,
            client_threads: CLIENT_THREADS,
            sample_cap: SAMPLE_CAP,
            open_connections,
            p99_baseline_ms,
            p99_loaded_ms,
            batched_rps,
            unbatched_rps,
            batched_over_unbatched: batched_rps / unbatched_rps.max(f64::MIN_POSITIVE),
            batched_over_unbatched_gate: batched_gate,
        },
    );

    // Steady-state criterion loops over the warm server.
    let addr = handle.local_addr();
    let mut client = Client::new(addr);
    let warm_body = evaluate_body(100);
    c.bench_function("serve/evaluate_cache_hit", |b| {
        b.iter(|| {
            let response = client
                .post_json("/v1/evaluate", black_box(&warm_body))
                .expect("hit");
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });
    let digest = client
        .post_json("/v1/evaluate", &warm_body)
        .expect("warm")
        .header("x-bitwave-digest")
        .expect("digest header")
        .to_string();
    let report_path = format!("/v1/reports/{digest}");
    c.bench_function("serve/report_replay", |b| {
        b.iter(|| {
            let response = client.get(black_box(&report_path)).expect("replay");
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });
    c.bench_function("serve/healthz", |b| {
        b.iter(|| {
            let response = client.get(black_box("/healthz")).expect("healthz");
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });

    drop(client);
    handle.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
